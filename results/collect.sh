#!/bin/sh
# Regenerate all recorded experiment outputs (run from the repo root).
set -e
cargo run --release --bin nfv-bench | tee results/full_run.txt
cargo run --release --bin nfv-bench -- ablations coop | tee results/ablations.txt
