//! End-to-end backpressure behaviour: selective early discard, hysteresis,
//! cross-chain selectivity, local (TX-ring) backpressure and ECN marking.

use nfvnice::{BackpressureConfig, Duration, NfSpec, NfvniceConfig, Policy, SimConfig, Simulation};

fn cfg(cores: usize, variant: NfvniceConfig) -> SimConfig {
    let mut c = SimConfig::default();
    c.platform.nf_cores = cores;
    c.platform.policy = Policy::CfsBatch;
    c.nfvnice = variant;
    c
}

/// Backpressure eliminates wasted work on an overloaded chain without
/// reducing delivered throughput.
#[test]
fn wasted_work_eliminated_throughput_kept() {
    let build = |variant| {
        let mut sim = Simulation::new(cfg(1, variant));
        let a = sim.add_nf(NfSpec::new("a", 0, 120));
        let b = sim.add_nf(NfSpec::new("b", 0, 550));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp(chain, 14_880_000.0, 64);
        sim.run(Duration::from_millis(500))
    };
    let d = build(NfvniceConfig::off());
    let n = build(NfvniceConfig::backpressure_only());
    assert!(d.total_wasted_drops > 100_000);
    assert!(n.total_wasted_drops * 100 < d.total_wasted_drops);
    assert!(n.total_delivered_pps >= d.total_delivered_pps * 0.95);
    assert!(n.entry_drops > 0);
    assert!(n.throttle_events > 0);
}

/// Fig 5's selectivity: a chain that avoids the bottleneck NF is not
/// penalized when a sibling chain through the bottleneck is throttled.
#[test]
fn unrelated_chain_unaffected_by_throttle() {
    let mut sim = Simulation::new(cfg(2, NfvniceConfig::full()));
    let shared = sim.add_nf(NfSpec::new("shared", 0, 200));
    let bottleneck = sim.add_nf(NfSpec::new("bneck", 1, 20_000)); // 130 kpps
    let clean = sim.add_chain(&[shared]);
    let congested = sim.add_chain(&[shared, bottleneck]);
    sim.add_udp(clean, 2_000_000.0, 64);
    sim.add_udp(congested, 2_000_000.0, 64);
    let r = sim.run(Duration::from_millis(500));
    // clean flow loses nothing; congested flow is capped at the bottleneck
    assert!(
        r.flows[0].delivered_pps > 1_900_000.0,
        "clean flow {}",
        r.flows[0].delivered_pps
    );
    assert!((100_000.0..180_000.0).contains(&r.flows[1].delivered_pps));
    assert!(r.chains[1].entry_drops > 0);
    assert_eq!(r.chains[0].entry_drops, 0);
}

/// Hysteresis: with the queuing-time threshold set very high, throttling
/// never engages even under overload (both gates must fire).
#[test]
fn qtime_threshold_gates_throttling() {
    let mut variant = NfvniceConfig::full();
    variant.bp = BackpressureConfig {
        qtime_threshold: Duration::from_secs(100),
        ..BackpressureConfig::default()
    };
    let mut sim = Simulation::new(cfg(1, variant));
    let a = sim.add_nf(NfSpec::new("a", 0, 120));
    let b = sim.add_nf(NfSpec::new("b", 0, 550));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 14_880_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    assert_eq!(r.throttle_events, 0);
    assert_eq!(r.entry_drops, 0);
}

/// Local backpressure: a tiny TX ring throttles the producer without
/// losing processed packets (they wait in the outbox, never dropped).
#[test]
fn tx_ring_local_backpressure_is_lossless() {
    let mut sim = Simulation::new(cfg(1, NfvniceConfig::off()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100).with_rings(16_384, 64));
    let b = sim.add_nf(NfSpec::new("b", 0, 100));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 1_000_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    // Throughput flows despite the 64-slot TX ring, and no packet that NF a
    // processed is ever dropped between a's outbox and b's (large) ring.
    assert!(
        r.flows[0].delivered_pps > 800_000.0,
        "{}",
        r.flows[0].delivered_pps
    );
    assert_eq!(r.nfs[0].wasted_drops, 0);
}

/// ECN: a congested queue CE-marks ECT(0) TCP traffic, and the source
/// halves its window instead of overflowing the ring.
#[test]
fn ecn_marks_and_tcp_responds() {
    let mut sim = Simulation::new(cfg(1, NfvniceConfig::full()));
    // Slow NF: 2600 cycles → 1 Mpps capacity; TCP will try to exceed it.
    let nf = sim.add_nf(NfSpec::new("slow", 0, 2_600).with_rings(512, 512));
    let entry = sim.add_nf(NfSpec::new("entry", 0, 100).with_rings(512, 512));
    let chain = sim.add_chain(&[entry, nf]);
    let flow = sim.add_tcp_with(chain, 1500, Duration::from_micros(200), |t| t.with_ecn());
    let r = sim.run(Duration::from_millis(500));
    assert!(r.ecn_marks > 0, "no CE marks applied");
    let src = sim.tcp_source(flow);
    assert!(src.ecn_cuts > 0, "TCP never reacted to CE");
}
