//! Determinism differential: every example scenario, run twice with the
//! same seed, must produce bit-identical event traces. The trace digest
//! (FNV-1a over every `(time, event)` pair, see `nfv_des::Sanitizer`) is
//! compared via `Report::trace_digest`, so any divergence anywhere in the
//! event stream — ordering, timing, or payload — fails the property.
//!
//! The scenarios mirror the six example binaries (`examples/*.rs`) with
//! durations compressed for debug-mode test runs.

use nfvnice::{
    Duration, IoMode, NfAction, NfIoSpec, NfSpec, NfvniceConfig, Packet, PacketHandler, Policy,
    SimConfig, SimTime, Simulation,
};
use proptest::prelude::*;

fn base_cfg(seed: u64, cores: usize, policy: Policy) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = cores;
    cfg.platform.policy = policy;
    cfg.nfvnice = NfvniceConfig::full();
    cfg.seed = seed;
    cfg
}

/// `examples/quickstart.rs`: heterogeneous 3-NF chain on one core at line
/// rate.
fn quickstart(seed: u64) -> u64 {
    let mut sim = Simulation::new(base_cfg(seed, 1, Policy::CfsBatch));
    let low = sim.add_nf(NfSpec::new("firewall-low", 0, 120));
    let med = sim.add_nf(NfSpec::new("nat-med", 0, 270));
    let high = sim.add_nf(NfSpec::new("dpi-high", 0, 550));
    let chain = sim.add_chain(&[low, med, high]);
    sim.add_udp(chain, 14_880_000.0, 64);
    sim.run(Duration::from_millis(15)).trace_digest
}

struct SamplingFirewall {
    seen: u64,
}

impl PacketHandler for SamplingFirewall {
    fn handle(&mut self, _pkt: &mut Packet, _now: SimTime) -> NfAction {
        self.seen += 1;
        if self.seen.is_multiple_of(100) {
            NfAction::Drop
        } else {
            NfAction::Forward
        }
    }
}

/// `examples/service_chain_backpressure.rs`: growing-cost chain, one NF per
/// core, with a custom handler in the middle.
fn service_chain_backpressure(seed: u64) -> u64 {
    let mut sim = Simulation::new(base_cfg(seed, 3, Policy::CfsNormal));
    let nf1 = sim.add_nf(NfSpec::new("classifier", 0, 550));
    let nf2 = sim.add_nf_with_handler(
        NfSpec::new("firewall", 1, 2200),
        Box::new(SamplingFirewall { seen: 0 }),
    );
    let nf3 = sim.add_nf(NfSpec::new("dpi", 2, 4500));
    let chain = sim.add_chain(&[nf1, nf2, nf3]);
    sim.add_udp(chain, 14_880_000.0, 64);
    sim.run(Duration::from_millis(15)).trace_digest
}

/// `examples/performance_isolation.rs`: a TCP flow sharing two NFs with
/// windowed UDP blasts whose chain ends at a remote bottleneck.
fn performance_isolation(seed: u64) -> u64 {
    let mut sim = Simulation::new(base_cfg(seed, 2, Policy::CfsBatch));
    let nf1 = sim.add_nf(NfSpec::new("NF1-low", 0, 120));
    let nf2 = sim.add_nf(NfSpec::new("NF2-med", 0, 270));
    let nf3 = sim.add_nf(NfSpec::new("NF3-heavy", 1, 4753));
    let tcp_chain = sim.add_chain(&[nf1, nf2]);
    sim.add_tcp_with(tcp_chain, 1500, Duration::from_micros(100), |t| {
        t.with_max_cwnd(33.0)
    });
    for _ in 0..4 {
        let chain = sim.add_chain(&[nf1, nf2, nf3]);
        sim.add_udp_with(chain, 800_000.0, 64, |f| {
            f.window(SimTime::from_millis(30), SimTime::from_millis(80))
        });
    }
    sim.run(Duration::from_millis(110)).trace_digest
}

/// `examples/io_bound_nf.rs`: async logger with double buffering; one of
/// two flows is logged to the simulated device.
fn io_bound_nf(seed: u64) -> u64 {
    let mut sim = Simulation::new(base_cfg(seed, 1, Policy::CfsBatch));
    let fwd = sim.add_nf(NfSpec::new("forwarder", 0, 250));
    let logger = sim.add_nf(NfSpec::new("pkt-logger", 0, 300).with_io(NfIoSpec {
        bytes_per_packet: 256,
        mode: IoMode::Async {
            buf_size: 64 * 1024,
        },
    }));
    let c1 = sim.add_chain(&[fwd, logger]);
    let c2 = sim.add_chain(&[fwd, logger]);
    let logged = sim.add_udp(c1, 2_000_000.0, 256);
    sim.add_udp(c2, 2_000_000.0, 256);
    sim.mark_io_flow(logged);
    sim.run(Duration::from_millis(60)).trace_digest
}

/// `examples/enterprise_chain.rs`: policer → firewall → NAT → monitor with
/// functional `nfv-apps` handlers and three tenant flows.
fn enterprise_chain(seed: u64) -> u64 {
    use nfv_apps::{Firewall, FlowMonitor, Nat, Rule, TokenBucket, Verdict};
    let mut sim = Simulation::new(base_cfg(seed, 1, Policy::CfsBatch));
    let policer = sim.add_nf_with_handler(
        NfSpec::new("policer", 0, 150),
        Box::new(TokenBucket::new(200_000.0, 1_000)),
    );
    let firewall = sim.add_nf_with_handler(
        NfSpec::new("firewall", 0, 300),
        Box::new(Firewall::new(
            vec![Rule {
                dst_port: nfv_apps::Match::Is(9),
                ..Rule::any(Verdict::Allow)
            }],
            Verdict::Deny,
        )),
    );
    let nat = sim.add_nf_with_handler(NfSpec::new("nat", 0, 250), Box::new(Nat::new(0xc0a8_0001)));
    let monitor =
        sim.add_nf_with_handler(NfSpec::new("monitor", 0, 100), Box::new(FlowMonitor::new()));
    let chain = sim.add_chain(&[policer, firewall, nat, monitor]);
    for rate in [150_000.0, 100_000.0, 50_000.0] {
        sim.add_udp(chain, rate, 128);
    }
    sim.run(Duration::from_millis(80)).trace_digest
}

/// `examples/multicore_domains.rs`: four NFs pinned one-per-core, two
/// chains crossing core boundaries through a shared entry NF, with the
/// deep chain bottlenecked on its last hop. Exercises the engine's
/// per-core domains (independent `CoreRun`/`BatchDone` streams per core)
/// under cross-core backpressure.
fn multicore_domains(seed: u64) -> u64 {
    multicore_domains_sim(seed)
        .run(Duration::from_millis(25))
        .trace_digest
}

fn multicore_domains_sim(seed: u64) -> Simulation {
    let mut sim = Simulation::new(base_cfg(seed, 4, Policy::CfsBatch));
    let entry = sim.add_nf(NfSpec::new("classifier", 0, 200));
    let nat = sim.add_nf(NfSpec::new("nat", 1, 300));
    let shaper = sim.add_nf(NfSpec::new("shaper", 2, 450));
    let dpi = sim.add_nf(NfSpec::new("dpi", 3, 8_000));
    let clean = sim.add_chain(&[entry, nat]);
    let deep = sim.add_chain(&[entry, shaper, dpi]);
    sim.add_udp(clean, 2_000_000.0, 64);
    sim.add_udp(deep, 2_000_000.0, 64);
    sim
}

/// A named scenario builder: seed in, trace digest out.
type Scenario = (&'static str, fn(u64) -> u64);

const SCENARIOS: [Scenario; 6] = [
    ("quickstart", quickstart),
    ("service_chain_backpressure", service_chain_backpressure),
    ("performance_isolation", performance_isolation),
    ("io_bound_nf", io_bound_nf),
    ("enterprise_chain", enterprise_chain),
    ("multicore_domains", multicore_domains),
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Property: for any seed, each example scenario replays to the exact
    /// same event trace.
    #[test]
    fn same_seed_same_trace(seed in 0u64..10_000) {
        for (name, scenario) in SCENARIOS {
            let a = scenario(seed);
            let b = scenario(seed);
            prop_assert_eq!(a, b, "{} diverged for seed {}", name, seed);
            prop_assert!(a != 0, "{} produced an empty trace", name);
        }
    }
}

/// Four-core differential: two same-seed runs of the multicore scenario
/// must agree not only on the trace digest but on the *entire report* —
/// per-NF counters, per-flow latencies, per-core CPU series. Guards the
/// engine's per-core domain bookkeeping (activity flags, CPU snapshots,
/// weight scratch) against any per-run state leaking across cores.
#[test]
fn multicore_same_seed_identical_reports() {
    let run = |seed| {
        let mut sim = multicore_domains_sim(seed);
        let r = sim.run(Duration::from_millis(25));
        (r.trace_digest, format!("{r:?}"))
    };
    let (da, ra) = run(42);
    let (db, rb) = run(42);
    assert_eq!(da, db, "trace digests diverged on 4 cores");
    assert_eq!(ra, rb, "reports diverged on 4 cores");
    assert_ne!(da, 0, "empty trace");
}

/// Poisson arrivals consume `SimRng`, so the digest must react to the seed
/// — a digest that ignores the seed would pass `same_seed_same_trace`
/// vacuously.
#[test]
fn digest_is_seed_sensitive_with_randomized_arrivals() {
    let run = |seed| {
        let mut sim = Simulation::new(base_cfg(seed, 1, Policy::CfsBatch));
        let nf = sim.add_nf(NfSpec::new("nf", 0, 300));
        let chain = sim.add_chain(&[nf]);
        sim.add_udp_with(chain, 500_000.0, 64, |f| f.poisson());
        sim.run(Duration::from_millis(40)).trace_digest
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}
