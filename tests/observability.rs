//! Observability integration: recording must be a pure observer.
//!
//! Three properties pin the layer down:
//!
//! 1. **Digest invariance** — turning tracing/metrics on must not change
//!    the event-trace digest: recording never feeds back into any
//!    scheduling, admission or marking decision.
//! 2. **Byte determinism** — two runs of the same scenario with the same
//!    seed render byte-identical metrics JSON and trace JSONL.
//! 3. **Consistency** — trace event counts agree with the independently
//!    maintained `Report` counters (throttles, ECN marks, cgroup writes,
//!    entry drops).

use nfvnice::{
    trace_to_csv, trace_to_jsonl, Duration, NfSpec, NfvniceConfig, ObsConfig, Policy, Report,
    SimConfig, Simulation, TraceEvent, TraceKind,
};

fn congested_cfg(obs: ObsConfig) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = Policy::CfsBatch;
    cfg.nfvnice = NfvniceConfig::full();
    cfg.obs = obs;
    cfg
}

/// A 10× overloaded two-NF chain plus an ECN-capable TCP flow: exercises
/// throttling, entry discard, share writes, ECN marks, sleeps and wakes.
fn run_congested(obs: ObsConfig) -> (Simulation, Report) {
    let mut sim = Simulation::new(congested_cfg(obs));
    let a = sim.add_nf(NfSpec::new("light", 0, 120));
    let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 1_000_000.0, 64);
    let tcp_chain = sim.add_chain(&[a, b]);
    sim.add_tcp_with(tcp_chain, 1500, Duration::from_micros(100), |t| {
        t.with_ecn()
    });
    let r = sim.run(Duration::from_millis(120));
    (sim, r)
}

#[test]
fn recording_does_not_perturb_the_trace_digest() {
    let (_, base) = run_congested(ObsConfig::default());
    let (_, observed) = run_congested(ObsConfig::all());
    assert_eq!(
        base.trace_digest, observed.trace_digest,
        "observability changed simulation behavior"
    );
    assert_eq!(base.total_delivered_pps, observed.total_delivered_pps);
    assert_eq!(base.throttle_events, observed.throttle_events);
}

#[test]
fn metrics_json_and_trace_jsonl_are_byte_deterministic() {
    let (mut s1, _) = run_congested(ObsConfig::all());
    let (mut s2, _) = run_congested(ObsConfig::all());
    let m1 = s1.take_metrics().to_json();
    let m2 = s2.take_metrics().to_json();
    assert!(!m1.is_empty());
    assert_eq!(m1, m2, "metrics JSON diverged between identical runs");
    let t1 = trace_to_jsonl(&s1.take_trace());
    let t2 = trace_to_jsonl(&s2.take_trace());
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "trace JSONL diverged between identical runs");
}

#[test]
fn trace_counts_match_report_counters() {
    let (sim, r) = run_congested(ObsConfig::all());
    let events: Vec<TraceEvent> = sim.take_trace();
    let count =
        |pred: fn(&TraceKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count() as u64;
    assert_eq!(
        count(|k| matches!(k, TraceKind::ThrottleEnter { .. })),
        r.throttle_events,
        "throttle events"
    );
    assert_eq!(
        count(|k| matches!(k, TraceKind::EcnMark { .. })),
        r.ecn_marks,
        "ecn marks"
    );
    assert_eq!(
        count(|k| matches!(k, TraceKind::ShareWrite { .. })),
        r.cgroup_writes,
        "cgroup writes"
    );
    assert_eq!(
        count(|k| matches!(
            k,
            TraceKind::PacketDrop {
                cause: nfvnice::DropCause::EntryThrottle,
                ..
            }
        )),
        r.entry_drops,
        "entry drops"
    );
    // The congested scenario must actually exercise the interesting paths.
    assert!(r.throttle_events > 0, "no throttling happened");
    assert!(r.cgroup_writes > 0, "no share writes happened");
    assert!(r.entry_drops > 0, "no entry discard happened");
}

#[test]
fn metrics_sampling_follows_the_monitor_tick() {
    let (mut sim, r) = run_congested(ObsConfig::all());
    let m = sim.take_metrics();
    // 120 ms at a 1 ms sample period → 120 ticks (first at t=1ms).
    assert_eq!(m.samples(), 120);
    assert_eq!(m.nfs.len(), 2);
    assert_eq!(m.chains.len(), 2);
    assert_eq!(m.nfs[0].name, "light");
    // Columns stay aligned across every series.
    for nf in &m.nfs {
        assert_eq!(nf.qlen.len(), m.samples());
        assert_eq!(nf.shares.len(), m.samples());
        assert_eq!(nf.lambda_pps.len(), m.samples());
    }
    // The heavy NF was throttled at some sampled tick.
    assert!(
        m.nfs[1].throttled.contains(&1),
        "bottleneck never sampled as throttled"
    );
    // CSV renders both sections for the same recording.
    let csv = m.to_csv();
    assert!(csv.starts_with("t_ns,nf,name,"));
    assert!(csv.contains("t_ns,chain,"));
    // Trace CSV exporter works on the real event stream too.
    let (sim2, _) = run_congested(ObsConfig::all());
    let csv2 = trace_to_csv(&sim2.take_trace());
    assert!(csv2.lines().count() as u64 > r.throttle_events);
}

#[test]
fn off_by_default_records_nothing() {
    let (mut sim, _) = run_congested(ObsConfig::default());
    assert!(sim.take_trace().is_empty());
    let m = sim.take_metrics();
    assert_eq!(m.samples(), 0);
    assert!(m.nfs.is_empty());
}
