//! End-to-end rate-cost proportional fairness, including property-based
//! tests over randomized NF populations.

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, Report, SimConfig, Simulation};
use proptest::prelude::*;

fn run_standalone(
    policy: Policy,
    variant: NfvniceConfig,
    costs: &[u64],
    rates: &[f64],
    millis: u64,
) -> Report {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = policy;
    cfg.nfvnice = variant;
    let mut sim = Simulation::new(cfg);
    for (i, (&c, &r)) in costs.iter().zip(rates).enumerate() {
        let nf = sim.add_nf(NfSpec::new(format!("nf{i}"), 0, c));
        let chain = sim.add_chain(&[nf]);
        sim.add_udp(chain, r, 64);
    }
    sim.run(Duration::from_millis(millis))
}

/// §2.1's definition, case 1: same cost, one NF has twice the arrival rate
/// ⇒ twice the output rate.
#[test]
fn equal_cost_output_proportional_to_rate() {
    // each NF alone needs 77% of the core: heavy contention
    let r = run_standalone(
        Policy::CfsNormal,
        NfvniceConfig::full(),
        &[1_300, 1_300],
        &[2_000_000.0, 1_000_000.0],
        800,
    );
    let ratio = r.flows[0].delivered_pps / r.flows[1].delivered_pps;
    assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
}

/// §2.1's definition, case 2: same rate, one NF costs twice as much
/// ⇒ both get the same output rate (the heavy NF gets twice the CPU).
#[test]
fn equal_rate_output_equal_despite_cost_gap() {
    let r = run_standalone(
        Policy::CfsNormal,
        NfvniceConfig::full(),
        &[1_000, 2_000],
        &[1_500_000.0, 1_500_000.0],
        800,
    );
    let ratio = r.flows[0].delivered_pps / r.flows[1].delivered_pps;
    assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    let cpu_ratio = r.nfs[1].cpu_util / r.nfs[0].cpu_util;
    assert!((1.6..2.4).contains(&cpu_ratio), "cpu ratio {cpu_ratio}");
}

/// Operator priority doubles an NF's share of the output.
#[test]
fn priority_provides_differentiated_service() {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = Policy::CfsNormal;
    cfg.nfvnice = NfvniceConfig::full();
    let mut sim = Simulation::new(cfg);
    let gold = sim.add_nf(NfSpec::new("gold", 0, 1_300).with_priority(2.0));
    let best = sim.add_nf(NfSpec::new("besteffort", 0, 1_300));
    let cg = sim.add_chain(&[gold]);
    let cb = sim.add_chain(&[best]);
    sim.add_udp(cg, 2_000_000.0, 64);
    sim.add_udp(cb, 2_000_000.0, 64);
    let r = sim.run(Duration::from_millis(800));
    let ratio = r.flows[0].delivered_pps / r.flows[1].delivered_pps;
    assert!((1.6..2.4).contains(&ratio), "priority ratio {ratio}");
}

/// Extreme 100× cost diversity: rate-cost fairness means the two flows'
/// *output rates* converge (analytically ≈ 52 kpps each here — the heavy
/// NF gets ~99 % of the CPU), and neither is starved.
#[test]
fn no_starvation_under_extreme_diversity() {
    let r = run_standalone(
        Policy::CfsNormal,
        NfvniceConfig::full(),
        &[500, 50_000],
        &[1_000_000.0, 1_000_000.0],
        800,
    );
    let light = r.flows[0].delivered_pps;
    let heavy = r.flows[1].delivered_pps;
    assert!(light > 20_000.0, "light starved: {light}");
    assert!(heavy > 20_000.0, "heavy starved: {heavy}");
    let ratio = light / heavy;
    assert!(
        (0.6..1.8).contains(&ratio),
        "outputs should converge: {ratio}"
    );
    // Contrast: the vanilla scheduler splits CPU 50/50, so the light NF
    // outputs ~50x more than the heavy one.
    let d = run_standalone(
        Policy::CfsNormal,
        NfvniceConfig::off(),
        &[500, 50_000],
        &[1_000_000.0, 1_000_000.0],
        800,
    );
    assert!(d.flows[0].delivered_pps / d.flows[1].delivered_pps > 10.0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property: for any 2-4 NFs with random costs and rates, NFVnice's
    /// fairness over *normalized* goodput (delivered/offered — the quantity
    /// rate-cost proportional fairness equalizes: output ∝ arrival rate)
    /// is at least the vanilla scheduler's, up to measurement noise.
    #[test]
    fn nfvnice_never_less_fair_than_default(
        n in 2usize..=4,
        seed in 0u64..1000,
    ) {
        let mut costs = Vec::new();
        let mut rates = Vec::new();
        // deterministic pseudo-random population from the seed
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            costs.push(500 + (x >> 33) % 8_000);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rates.push(500_000.0 + ((x >> 33) % 2_000_000) as f64);
        }
        let normalized_jain = |r: &Report| {
            let xs: Vec<f64> = r
                .flows
                .iter()
                .zip(&rates)
                .map(|(f, &offered)| f.delivered_pps / offered)
                .collect();
            nfv_des::jain_index(&xs)
        };
        let d = run_standalone(Policy::CfsNormal, NfvniceConfig::off(), &costs, &rates, 300);
        let f = run_standalone(Policy::CfsNormal, NfvniceConfig::full(), &costs, &rates, 300);
        prop_assert!(normalized_jain(&f) >= normalized_jain(&d) - 0.08,
            "normalized jain: nfvnice {} vs default {} (costs {costs:?} rates {rates:?})",
            normalized_jain(&f), normalized_jain(&d));
        prop_assert!(normalized_jain(&f) > 0.7);
    }

    /// Property: packet accounting holds for arbitrary chain shapes — at
    /// every event (the sim-sanitizer audits each one), not just at the end.
    #[test]
    fn conservation_over_random_chains(
        len in 1usize..=5,
        cost_scale in 1u64..=20,
        seed in 0u64..1000,
    ) {
        let mut cfg = SimConfig::default();
        cfg.platform.nf_cores = 2;
        cfg.platform.policy = Policy::CfsBatch;
        cfg.nfvnice = NfvniceConfig::full();
        cfg.seed = seed;
        cfg.sanitizer = nfvnice::SanitizerConfig::audit();
        let mut sim = Simulation::new(cfg);
        let nfs: Vec<_> = (0..len)
            .map(|i| sim.add_nf(NfSpec::new(format!("nf{i}"), i % 2, 100 * cost_scale * (i as u64 + 1))))
            .collect();
        let chain = sim.add_chain(&nfs);
        sim.add_udp_with(chain, 3_000_000.0, 64, |f| f.poisson());
        let r = sim.run(Duration::from_millis(60));
        let errors = sim.sanitizer.errors().count();
        prop_assert!(errors == 0, "sanitizer errors:\n{}", sim.sanitizer.summary());
        prop_assert!(nfvnice::packets_conserved(&sim.platform));
        let ledger = nfvnice::conservation_ledger(&sim.platform);
        prop_assert_eq!(ledger.delivered + ledger.dropped,
            r.flows[0].delivered + r.flows[0].dropped);
    }
}
