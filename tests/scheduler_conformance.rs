//! End-to-end scheduler conformance: the simulated CFS/BATCH/RR policies
//! must show the behavioural signatures Section 2.2 of the paper measures.

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, Report, SimConfig, Simulation};

fn three_standalone_nfs(policy: Policy, costs: [u64; 3], rates: [f64; 3]) -> Report {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = policy;
    cfg.nfvnice = NfvniceConfig::off();
    let mut sim = Simulation::new(cfg);
    for i in 0..3 {
        let nf = sim.add_nf(NfSpec::new(format!("nf{i}"), 0, costs[i]));
        let chain = sim.add_chain(&[nf]);
        sim.add_udp(chain, rates[i], 64);
    }
    sim.run(Duration::from_millis(400))
}

/// CFS divides CPU equally among equally-weighted overloaded tasks.
#[test]
fn cfs_equal_cpu_for_equal_weights() {
    let r = three_standalone_nfs(Policy::CfsNormal, [250; 3], [5e6; 3]);
    for nf in &r.nfs {
        assert!(
            (nf.cpu_util - 1.0 / 3.0).abs() < 0.05,
            "{} got {}",
            nf.name,
            nf.cpu_util
        );
    }
}

/// Under CFS, heterogeneous costs at equal rates ⇒ the light NF gets the
/// highest throughput (Fig 1b NORMAL), the opposite of rate-cost fairness.
#[test]
fn cfs_favors_light_nfs() {
    let r = three_standalone_nfs(Policy::CfsNormal, [500, 250, 50], [5e6; 3]);
    assert!(r.nfs[2].output_rate_pps > r.nfs[1].output_rate_pps);
    assert!(r.nfs[1].output_rate_pps > r.nfs[0].output_rate_pps);
}

/// RR with its long default quantum lets a heavy NF hog the core
/// (Fig 1b RR: NF1 starves the others).
#[test]
fn rr_lets_heavy_nf_hog() {
    let r = three_standalone_nfs(Policy::rr_100ms(), [500, 250, 50], [5e6; 3]);
    assert!(
        r.nfs[0].cpu_util > 0.85,
        "heavy NF should hog: {}",
        r.nfs[0].cpu_util
    );
    assert!(r.nfs[2].cpu_util < 0.1);
}

/// Under even overload, CFS preempts (involuntary switches dominate) while
/// RR tasks drain their rings and yield (voluntary switches dominate) —
/// Table 1's signature.
#[test]
fn context_switch_signatures() {
    let cfs = three_standalone_nfs(Policy::CfsNormal, [250; 3], [5e6; 3]);
    for nf in &cfs.nfs {
        assert!(
            nf.nvcswch_per_sec > nf.cswch_per_sec,
            "CFS {}: nv={} v={}",
            nf.name,
            nf.nvcswch_per_sec,
            nf.cswch_per_sec
        );
    }
    let rr = three_standalone_nfs(Policy::rr_100ms(), [250; 3], [5e6; 3]);
    for nf in &rr.nfs {
        assert!(
            nf.cswch_per_sec > nf.nvcswch_per_sec,
            "RR {}: v={} nv={}",
            nf.name,
            nf.cswch_per_sec,
            nf.nvcswch_per_sec
        );
    }
}

/// BATCH reduces involuntary context switches relative to NORMAL when a
/// light sleeper wakes frequently next to heavy NFs (Table 2's 65K → 1K).
#[test]
fn batch_cuts_wakeup_preemptions() {
    let normal = three_standalone_nfs(Policy::CfsNormal, [500, 250, 50], [5e6; 3]);
    let batch = three_standalone_nfs(Policy::CfsBatch, [500, 250, 50], [5e6; 3]);
    let nv = |r: &Report| r.nfs.iter().map(|n| n.nvcswch_per_sec).sum::<f64>();
    assert!(
        nv(&normal) > 10.0 * nv(&batch),
        "normal {} vs batch {}",
        nv(&normal),
        nv(&batch)
    );
}

/// cgroup weight updates shift CPU allocation under CFS but not under RR
/// (the RT class ignores cpu.shares).
#[test]
fn weights_move_cfs_but_not_rr() {
    let run = |policy: Policy| -> Report {
        let mut cfg = SimConfig::default();
        cfg.platform.nf_cores = 1;
        cfg.platform.policy = policy;
        cfg.nfvnice = NfvniceConfig::cgroups_only();
        let mut sim = Simulation::new(cfg);
        // 1:4 cost ratio at equal rates → NFVnice wants a 1:4 CPU split.
        let a = sim.add_nf(NfSpec::new("light", 0, 500));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 2_000));
        let ca = sim.add_chain(&[a]);
        let cb = sim.add_chain(&[b]);
        sim.add_udp(ca, 3_000_000.0, 64);
        sim.add_udp(cb, 3_000_000.0, 64);
        sim.run(Duration::from_millis(600))
    };
    let cfs = run(Policy::CfsNormal);
    let ratio_cfs = cfs.nfs[1].cpu_util / cfs.nfs[0].cpu_util;
    assert!(ratio_cfs > 2.5, "CFS obeys shares: ratio {ratio_cfs}");
    let rr = run(Policy::rr_1ms());
    let ratio_rr = rr.nfs[1].cpu_util / rr.nfs[0].cpu_util;
    assert!(
        (0.6..1.7).contains(&ratio_rr),
        "RR ignores shares: ratio {ratio_rr}"
    );
}
