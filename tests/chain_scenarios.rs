//! Cross-crate integration tests: end-to-end service-chain scenarios
//! exercising the full stack (traffic → NIC → flow table → rings →
//! scheduler → NFs → delivery).

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, Report, SimConfig, SimTime, Simulation};

fn cfg(cores: usize, policy: Policy, variant: NfvniceConfig) -> SimConfig {
    let mut c = SimConfig::default();
    c.platform.nf_cores = cores;
    c.platform.policy = policy;
    c.nfvnice = variant;
    c
}

/// Conservation: every frame that enters the system is delivered, dropped
/// somewhere accountable, or still in flight at the end.
#[test]
fn packet_conservation_across_the_stack() {
    let mut sim = Simulation::new(cfg(2, Policy::CfsNormal, NfvniceConfig::full()));
    let a = sim.add_nf(NfSpec::new("a", 0, 200));
    let b = sim.add_nf(NfSpec::new("b", 1, 2_000));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 2_000_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    let p = &sim.platform;
    let classified = p.flow_table.entries().map(|e| e.packets).sum::<u64>();
    let delivered = r.flows[0].delivered;
    let dropped = r.flows[0].dropped;
    let in_flight = p.mempool.in_use() as u64 + p.nic.rx_pending() as u64;
    assert!(p.packets_accounted(), "mempool accounting broken");
    assert_eq!(
        classified,
        delivered + dropped + in_flight,
        "classified {classified} != delivered {delivered} + dropped {dropped} + in-flight {in_flight}"
    );
}

/// A chain spanning three cores delivers at the offered rate with no loss
/// when the offered load is below the bottleneck capacity.
#[test]
fn underloaded_multicore_chain_is_lossless() {
    let mut sim = Simulation::new(cfg(3, Policy::CfsBatch, NfvniceConfig::full()));
    let a = sim.add_nf(NfSpec::new("a", 0, 500));
    let b = sim.add_nf(NfSpec::new("b", 1, 1_000));
    let c = sim.add_nf(NfSpec::new("c", 2, 2_000));
    let chain = sim.add_chain(&[a, b, c]);
    // bottleneck c: 1.3 Mpps capacity; offer 0.5 Mpps
    sim.add_udp(chain, 500_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    assert_eq!(r.flows[0].dropped, 0);
    assert_eq!(r.total_wasted_drops, 0);
    assert!(r.flows[0].delivered_pps > 450_000.0);
}

/// Packets follow their own chain: two flows with reversed NF orders both
/// complete, and each NF sees both flows' packets.
#[test]
fn per_flow_chains_with_different_orders() {
    let mut sim = Simulation::new(cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100));
    let b = sim.add_nf(NfSpec::new("b", 0, 100));
    let fwd = sim.add_chain(&[a, b]);
    let rev = sim.add_chain(&[b, a]);
    sim.add_udp(fwd, 100_000.0, 64);
    sim.add_udp(rev, 100_000.0, 64);
    let r = sim.run(Duration::from_millis(200));
    assert!(r.chains[0].delivered > 15_000);
    assert!(r.chains[1].delivered > 15_000);
    // both NFs processed (at least) every delivered packet of both chains
    let total = r.chains[0].delivered + r.chains[1].delivered;
    assert!(r.nfs[0].processed >= total);
    assert!(r.nfs[1].processed >= total);
}

/// A chain that revisits an NF non-adjacently charges it twice per packet.
#[test]
fn chain_revisiting_an_nf() {
    let mut sim = Simulation::new(cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100));
    let b = sim.add_nf(NfSpec::new("b", 0, 100));
    let chain = sim.add_chain(&[a, b, a]);
    sim.add_udp(chain, 50_000.0, 64);
    let r = sim.run(Duration::from_millis(200));
    let delivered = r.flows[0].delivered;
    assert!(delivered > 5_000);
    // NF a processed every delivered packet twice
    assert!(r.nfs[0].processed >= delivered * 2);
    assert!(r.nfs[1].processed >= delivered);
}

/// Ten-NF single-core chain still makes progress under line rate.
#[test]
fn long_chain_on_one_core_progresses() {
    let mut sim = Simulation::new(cfg(1, Policy::CfsBatch, NfvniceConfig::full()));
    let nfs: Vec<_> = (0..10)
        .map(|i| sim.add_nf(NfSpec::new(format!("nf{i}"), 0, 100 + 50 * (i % 3) as u64)))
        .collect();
    let chain = sim.add_chain(&nfs);
    sim.add_udp(chain, 14_880_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    assert!(
        r.flows[0].delivered_pps > 200_000.0,
        "rate {}",
        r.flows[0].delivered_pps
    );
}

/// Mid-run cost changes (the Fig 15a mechanism) visibly shift capacity.
#[test]
fn scheduled_action_changes_throughput_mid_run() {
    use nfvnice::{Action, CostModel};
    let mut sim = Simulation::new(cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    let nf = sim.add_nf(NfSpec::new("morph", 0, 500));
    let chain = sim.add_chain(&[nf]);
    sim.add_udp(chain, 10_000_000.0, 64); // overload: output = capacity
    sim.at(
        SimTime::from_secs(1),
        Action::SetCost(nf, CostModel::Fixed(2_000)),
    );
    let r = sim.run(Duration::from_secs(2));
    let first = r.series.flow_mbps[0][0];
    let second = r.series.flow_mbps[0][1];
    // capacity 5.2 Mpps then 1.3 Mpps: second interval ~4x slower
    let ratio = first / second;
    assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
}

/// Reports are internally consistent.
#[test]
fn report_invariants() {
    let mut sim = Simulation::new(cfg(1, Policy::CfsBatch, NfvniceConfig::full()));
    let a = sim.add_nf(NfSpec::new("a", 0, 120));
    let b = sim.add_nf(NfSpec::new("b", 0, 550));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 5_000_000.0, 64);
    let r: Report = sim.run(Duration::from_millis(500));
    for nf in &r.nfs {
        assert!(nf.cpu_util >= 0.0 && nf.cpu_util <= 1.01, "{}", nf.cpu_util);
        assert!(nf.output_rate_pps <= nf.svc_rate_pps + 1.0);
    }
    let total: f64 = r.flows.iter().map(|f| f.delivered_pps).sum();
    assert!((total - r.total_delivered_pps).abs() < 1.0);
    assert_eq!(r.chains[0].delivered, r.flows[0].delivered);
    assert_eq!(r.policy, "BATCH");
    assert_eq!(r.variant, "NFVnice");
}
