//! Edge-case integration tests: resource exhaustion, unclassified traffic,
//! wildcard steering, and a full NF-application chain under NFVnice.

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, SimConfig, Simulation};

fn cfg(variant: NfvniceConfig) -> SimConfig {
    let mut c = SimConfig::default();
    c.platform.nf_cores = 1;
    c.platform.policy = Policy::CfsBatch;
    c.nfvnice = variant;
    c
}

/// A tiny mempool exhausts under overload; the system degrades gracefully
/// (drops counted, no panic, accounting intact) and keeps delivering.
#[test]
fn mempool_exhaustion_degrades_gracefully() {
    let mut c = cfg(NfvniceConfig::off());
    c.platform.mempool_capacity = 256; // far below ring capacity
    let mut sim = Simulation::new(c);
    let nf = sim.add_nf(NfSpec::new("slow", 0, 5_000));
    let chain = sim.add_chain(&[nf]);
    sim.add_udp(chain, 5_000_000.0, 64);
    let r = sim.run(Duration::from_millis(200));
    assert!(sim.platform.stats.mempool_fail > 0, "pool should exhaust");
    assert!(r.flows[0].delivered > 0, "still makes progress");
    assert!(sim.platform.packets_accounted());
    assert!(sim.platform.mempool.high_watermark() <= 256);
}

/// Traffic with no flow rule is dropped at classification and counted.
#[test]
fn unclassified_traffic_is_counted_not_crashed() {
    use nfv_pkt::{Ecn, FiveTuple, Proto, WireFrame};
    let mut sim = Simulation::new(cfg(NfvniceConfig::off()));
    let nf = sim.add_nf(NfSpec::new("nf", 0, 100));
    let chain = sim.add_chain(&[nf]);
    sim.add_udp(chain, 10_000.0, 64);
    // inject frames for a tuple nobody installed
    for seq in 0..50 {
        sim.platform.nic.deliver(WireFrame {
            tuple: FiveTuple::synthetic(9999, Proto::Udp),
            size: 64,
            seq,
            cost_class: 0,
            ecn: Ecn::NotEct,
            arrival: nfvnice::SimTime::ZERO,
        });
    }
    let r = sim.run(Duration::from_millis(100));
    assert_eq!(sim.platform.stats.unclassified, 50);
    assert!(r.flows[0].delivered > 0, "installed flow unaffected");
}

/// Wildcard rules steer unknown flows end-to-end: a /8 rule admits traffic
/// the harness never installed exactly, and the cached flow delivers.
#[test]
fn wildcard_rules_steer_unknown_flows_end_to_end() {
    use nfv_pkt::{Ecn, FiveTuple, IpPrefix, Proto, TuplePattern, WireFrame};
    let mut sim = Simulation::new(cfg(NfvniceConfig::off()));
    let nf = sim.add_nf(NfSpec::new("bridge", 0, 100));
    let chain = sim.add_chain(&[nf]);
    sim.platform.flow_table.install_wildcard(
        TuplePattern::any().from_src(IpPrefix::new(0x0a00_0000, 8)),
        chain,
        0,
    );
    // no exact rule for this tuple — only the wildcard matches
    for seq in 0..100u64 {
        sim.platform.nic.deliver(WireFrame {
            tuple: FiveTuple::synthetic(77, Proto::Udp), // src 10.0.0.77
            size: 64,
            seq,
            cost_class: 0,
            ecn: Ecn::NotEct,
            arrival: nfvnice::SimTime::ZERO,
        });
    }
    sim.run(Duration::from_millis(50));
    // the wildcard minted one exact flow entry and delivered its packets
    assert_eq!(sim.platform.flow_table.len(), 1);
    let delivered: u64 = sim.platform.stats.flows.iter().map(|f| f.delivered).sum();
    assert_eq!(delivered, 100);
    assert!(sim.platform.packets_accounted());
}

/// A realistic chain of nfv-apps NFs (policer → firewall → NAT → monitor)
/// under full NFVnice: functional behaviour and resource management
/// compose without interfering.
#[test]
fn apps_chain_functional_under_nfvnice() {
    use nfv_apps::{Firewall, FlowMonitor, Nat, Rule, TokenBucket, Verdict};
    let mut sim = Simulation::new(cfg(NfvniceConfig::full()));
    let policer = sim.add_nf_with_handler(
        NfSpec::new("policer", 0, 150),
        Box::new(TokenBucket::new(100_000.0, 512)),
    );
    let fw = sim.add_nf_with_handler(
        NfSpec::new("fw", 0, 300),
        Box::new(Firewall::new(
            vec![Rule::any(Verdict::Allow)],
            Verdict::Deny,
        )),
    );
    let nat = sim.add_nf_with_handler(NfSpec::new("nat", 0, 250), Box::new(Nat::new(0xc0a80001)));
    let mon = sim.add_nf_with_handler(NfSpec::new("mon", 0, 100), Box::new(FlowMonitor::new()));
    let chain = sim.add_chain(&[policer, fw, nat, mon]);
    sim.add_udp(chain, 200_000.0, 128);
    let r = sim.run(Duration::from_millis(500));
    // the policer caps 200 kpps offered at ~100 kpps
    let rate = r.flows[0].delivered_pps;
    assert!((90_000.0..115_000.0).contains(&rate), "rate {rate}");
    // latency accounting captured the chain transit
    assert!(r.flows[0].latency_p50 > Duration::ZERO);
    assert!(r.flows[0].latency_p99 >= r.flows[0].latency_p50);
    assert_eq!(r.total_wasted_drops, 0);
}

/// The cooperative policy end-to-end: backpressure rescues a chain that a
/// pure cooperative scheduler wastes.
#[test]
fn cooperative_scheduler_rescued_by_backpressure() {
    let run = |variant| {
        let mut c = cfg(variant);
        c.platform.policy = Policy::Cooperative;
        let mut sim = Simulation::new(c);
        let a = sim.add_nf(NfSpec::new("a", 0, 120));
        let b = sim.add_nf(NfSpec::new("b", 0, 550));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp(chain, 14_880_000.0, 64);
        sim.run(Duration::from_millis(300))
    };
    let coop = run(NfvniceConfig::off());
    let nice = run(NfvniceConfig::backpressure_only());
    assert!(coop.total_wasted_drops > 100_000, "cooperative wastes");
    assert_eq!(nice.total_wasted_drops, 0);
    assert!(nice.total_delivered_pps >= coop.total_delivered_pps);
}
