//! Fault injection end-to-end: crash the bottleneck NF of the canonical
//! fig-7 chain mid-run while backpressure is actively throttling, and
//! verify the failure neither panics nor wedges the system — the dead
//! NF's throttle marks are cleared, packets for its chain are shed at
//! entry (not leaked), and after the respawn the chain's goodput returns
//! to its pre-crash rate.
//!
//! Goodput is windowed into thirds with the deterministic prefix
//! property: a run truncated at `t` replays exactly the first `t` of a
//! longer same-seed run, so two shorter probe runs delimit the pre-fault
//! and final windows of the full run without any mid-run instrumentation.
//!
//! A determinism differential closes the suite: two same-seed faulted
//! runs must agree on the trace digest *and* the entire report, and the
//! faulted digest must differ from the unfaulted one (the fault events
//! are part of the replayed trace, not out-of-band mutations).

use nfvnice::{
    Duration, FaultKind, NfId, NfSpec, NfvniceConfig, Policy, SanitizerConfig, SimConfig, SimTime,
    Simulation,
};

/// Offered load (pps), above the one-core chain's ~2.77 Mpps capacity so
/// the bottleneck holds throttle marks when the crash lands.
const RATE: f64 = 3_200_000.0;
/// Full run length; the crash lands at one third of it. Short enough for
/// debug-mode test runs.
const RUN_MS: u64 = 150;

fn faulted_cfg(seed: u64, fault: Option<FaultKind>, recovery: bool) -> SimConfig {
    let mut cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = Policy::CfsNormal;
    cfg.nfvnice = NfvniceConfig::full();
    cfg.sanitizer = SanitizerConfig::strict();
    cfg.faults.recovery = recovery;
    if let Some(kind) = fault {
        // NfId(2) is the bottleneck "high" NF deployed below.
        cfg.faults = cfg
            .faults
            .with_fault(SimTime::from_millis(RUN_MS / 3), NfId(2), kind);
    }
    cfg
}

/// The fig-7 Low/Med/High chain on one core.
fn build(cfg: SimConfig) -> Simulation {
    let mut sim = Simulation::new(cfg);
    let low = sim.add_nf(NfSpec::new("NF1-low", 0, 120));
    let med = sim.add_nf(NfSpec::new("NF2-med", 0, 270));
    let high = sim.add_nf(NfSpec::new("NF3-high", 0, 550));
    let chain = sim.add_chain(&[low, med, high]);
    sim.add_udp(chain, RATE, 64);
    sim
}

/// Chain-0 deliveries of the scenario truncated at `t` (prefix probe).
fn delivered_upto(seed: u64, fault: Option<FaultKind>, recovery: bool, t: Duration) -> u64 {
    build(faulted_cfg(seed, fault, recovery)).run(t).chains[0].delivered
}

/// Crash the bottleneck mid-run with recovery on: the run must stay
/// sanitizer-clean (conservation audited at every event) and the final
/// third's goodput must return to ≥90% of the pre-crash rate.
#[test]
fn bottleneck_crash_recovers_to_precrash_goodput() {
    let fault = Some(FaultKind::Crash);
    let third = Duration::from_millis(RUN_MS / 3);
    let d1 = delivered_upto(7, fault, true, third);
    let d2 = delivered_upto(7, fault, true, Duration::from_millis(2 * RUN_MS / 3));
    let mut sim = build(faulted_cfg(7, fault, true));
    let r = sim.run(Duration::from_millis(RUN_MS));
    sim.sanitizer.assert_clean();

    assert_eq!(r.nf_crashes, 1, "exactly the injected crash");
    assert_eq!(r.nf_restarts, 1, "recovery must respawn the crashed NF");
    assert!(
        r.nf_down_drops > 0,
        "the outage must shed the dead chain at entry"
    );
    let pre = d1;
    let post = r.chains[0].delivered - d2;
    assert!(
        post as f64 >= 0.9 * pre as f64,
        "final third did not recover: pre-crash {pre} pkts/third, final {post}"
    );
}

/// Without the recovery policy the chain stays down, but degrades
/// gracefully: entry admission sheds its packets, nothing panics, and —
/// because the dead NF's backpressure marks were cleared at crash time —
/// the sanitizer's suppression/hysteresis audits stay clean too.
#[test]
fn crash_without_recovery_sheds_at_entry_and_stays_clean() {
    let fault = Some(FaultKind::Crash);
    let d2 = delivered_upto(7, fault, false, Duration::from_millis(2 * RUN_MS / 3));
    let mut sim = build(faulted_cfg(7, fault, false));
    let r = sim.run(Duration::from_millis(RUN_MS));
    sim.sanitizer.assert_clean();

    assert_eq!(r.nf_crashes, 1);
    assert_eq!(r.nf_restarts, 0, "recovery disabled");
    let post = r.chains[0].delivered - d2;
    assert_eq!(post, 0, "a down chain must deliver nothing");
    assert!(
        r.nf_down_drops > 0,
        "doomed packets are shed at entry, not queued forever"
    );
}

/// Determinism differential: two same-seed faulted runs must be
/// bit-identical — same trace digest, same full report — and the digest
/// must react to the fault (a faulted run is a different trace than an
/// unfaulted one). Seed sensitivity is covered by `determinism.rs`,
/// which uses Poisson arrivals; the CBR arrivals here draw no RNG.
#[test]
fn faulted_runs_are_deterministic_and_fault_sensitive() {
    let run = |seed, fault| {
        let mut sim = build(faulted_cfg(seed, fault, true));
        let r = sim.run(Duration::from_millis(RUN_MS));
        sim.sanitizer.assert_clean();
        (r.trace_digest, format!("{r:?}"))
    };
    let (da, ra) = run(42, Some(FaultKind::Crash));
    let (db, rb) = run(42, Some(FaultKind::Crash));
    assert_eq!(da, db, "same-seed faulted runs diverged");
    assert_eq!(ra, rb, "same-seed faulted reports diverged");
    assert_ne!(da, 0, "empty trace");

    let (healthy, _) = run(42, None);
    assert_ne!(da, healthy, "the fault must be part of the replayed trace");
}

/// Cgroup shares must reconverge *immediately* on a domain-membership
/// change, not at the next 10 ms weight tick. Timeline (weight ticks at
/// 50/60 ms): crash the bottleneck at 52 ms, respawn at 57 ms, end the
/// run at 59 ms — no weight tick fires after the crash, so every share
/// movement observed below comes from the immediate recomputes in
/// `kill_nf` / `do_respawn`. Pre-fix code (periodic tick only) leaves
/// all three shares frozen at their 50 ms values.
#[test]
fn shares_reconverge_immediately_on_crash_and_respawn() {
    let shares_at = |t_ms: u64| {
        let mut cfg = faulted_cfg(11, Some(FaultKind::Crash), true);
        cfg.faults.respawn_delay = Duration::from_millis(5);
        cfg.faults.events.clear();
        cfg.faults = cfg
            .faults
            .with_fault(SimTime::from_millis(52), NfId(2), FaultKind::Crash);
        let mut sim = build(cfg);
        sim.run(Duration::from_millis(t_ms));
        let p = &sim.platform;
        [0, 1, 2].map(|i| p.cgroups.shares(p.nfs[i].task))
    };
    let pre = shares_at(51); // after the 50 ms weight tick, before the crash
    let down = shares_at(55); // after the crash, before the respawn
    let post = shares_at(59); // after the respawn, before the 60 ms tick

    assert_ne!(
        (down[0], down[1]),
        (pre[0], pre[1]),
        "survivors must be re-weighted at crash time, not at the next tick"
    );
    assert_eq!(
        down[2], pre[2],
        "a parked task claims no share and is skipped by the recompute"
    );
    assert_ne!(
        post[2], down[2],
        "the respawned NF must be folded back into the split immediately"
    );
}

/// The watchdog path: a stalled NF (runnable, burning CPU, zero
/// progress) is detected from progress counters, killed and respawned —
/// deterministically.
#[test]
fn watchdog_detects_stall_and_restarts() {
    let run = || {
        let mut cfg = faulted_cfg(9, Some(FaultKind::Stall), true);
        cfg.faults.stall_ticks = 5;
        let mut sim = build(cfg);
        let r = sim.run(Duration::from_millis(RUN_MS));
        sim.sanitizer.assert_clean();
        r
    };
    let r = run();
    assert_eq!(r.nf_stalls_detected, 1, "watchdog must flag the stall");
    assert_eq!(r.nf_crashes, 1, "the stalled NF is killed");
    assert_eq!(r.nf_restarts, 1, "and respawned");
    let r2 = run();
    assert_eq!(r.trace_digest, r2.trace_digest, "watchdog path diverged");
}
