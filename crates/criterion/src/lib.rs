//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds where crates.io is unreachable, so the real
//! criterion cannot be vendored. This crate provides the subset of its API
//! the workspace's benches use — `Criterion`, `BenchmarkGroup`,
//! `Throughput`, `black_box`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple adaptive
//! timing loop instead of criterion's statistical machinery. Output is one
//! line per benchmark: mean wall time per iteration and, when a
//! `Throughput` is set, the derived element rate.
//!
//! Like the real crate, passing `--test` (as in
//! `cargo bench --workspace -- --test`) switches to assert-only mode:
//! every benchmark body runs exactly once, unmeasured, so the headline
//! property asserts inside the per-figure cells still fire while the run
//! finishes in CI-smoke time.
//!
//! Wall-clock use is confined to this harness; the simulator itself never
//! reads a clock (`nfv-lint` enforces that, and skips this crate).

use std::sync::OnceLock;
use std::time::Instant;

/// Assert-only mode: run each benchmark once without timing. Set by the
/// `--test` CLI flag, mirroring criterion's flag of the same name.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Rate denomination for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`]
/// with the code under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Time `f`, running it enough times to smooth out noise. In `--test`
    /// mode, run it exactly once (asserts fire, nothing is measured).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if test_mode() {
            black_box(f());
            self.iters = 1;
            self.nanos = 0;
            return;
        }
        // Warm-up: also gives a cost estimate to size the measured batch.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed().as_millis() < 20 {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() / warmup_iters as u128;
        // Measure for ~100 ms or 1M iterations, whichever comes first.
        let target = (100_000_000u128 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.nanos = start.elapsed().as_nanos();
        self.iters = target;
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.nanos as f64 / self.iters as f64
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if test_mode() {
        println!("bench {name:<40} ok (--test, ran once)");
        return;
    }
    let mean = b.mean_ns();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) | Throughput::Bytes(n) => {
            if mean > 0.0 {
                n as f64 * 1e9 / mean
            } else {
                0.0
            }
        }
    });
    match rate {
        Some(r) => println!("bench {name:<40} {mean:>12.1} ns/iter ({r:>12.0} elem/s)"),
        None => println!("bench {name:<40} {mean:>12.1} ns/iter"),
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the adaptive loop sizes itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Opaque-to-the-optimizer identity, re-exported from std.
pub use std::hint::black_box;

/// Collect benchmark functions into a group runner, as the real crate does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups. Of the harness arguments
/// cargo passes through, only `--test` (assert-only mode) is honored;
/// `--bench` and name filters are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.iters > 0);
        assert!(b.mean_ns() >= 0.0);
        assert!(acc > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(0)));
    }
}
