//! Engine-level integration tests: whole simulations, one property each.

use super::{Action, Simulation};
use crate::config::{NfvniceConfig, SimConfig};
use crate::invariants;
use nfv_des::{Duration, SimTime};
use nfv_platform::{CostModel, NfSpec};
use nfv_sched::Policy;

fn base_cfg(cores: usize, policy: Policy, nfvnice: NfvniceConfig) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = cores;
    cfg.platform.policy = policy;
    cfg.nfvnice = nfvnice;
    cfg
}

#[test]
fn single_nf_underload_delivers_everything() {
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    let nf = sim.add_nf(NfSpec::new("bridge", 0, 250));
    let chain = sim.add_chain(&[nf]);
    // 100 kpps against a ~10.4 Mpps capacity NF: zero loss expected.
    sim.add_udp(chain, 100_000.0, 64);
    let r = sim.run(Duration::from_millis(200));
    let f = &r.flows[0];
    let offered = 20_000; // 100 kpps * 0.2 s
    assert!(
        f.delivered as i64 >= offered - 300,
        "delivered {}",
        f.delivered
    );
    assert_eq!(f.dropped, 0);
    assert_eq!(r.total_wasted_drops, 0);
    assert!(invariants::packets_conserved(&sim.platform));
}

#[test]
fn overloaded_nf_is_capacity_bound() {
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    // 26k cycles/packet at 2.6 GHz = 100k pps capacity.
    let nf = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
    let chain = sim.add_chain(&[nf]);
    sim.add_udp(chain, 1_000_000.0, 64); // 10x overload
    let r = sim.run(Duration::from_millis(200));
    let got = r.flows[0].delivered_pps;
    // ±22.5% of 90 kpps ≈ the sustainable floor … capacity ceiling
    // window (70–110 kpps).
    assert!(invariants::within_pct(got, 90_000.0, 22.5), "rate {got}");
    assert!(invariants::packets_conserved(&sim.platform));
}

#[test]
fn sanitizer_audits_overloaded_chain_clean() {
    // Full NFVnice under 10x overload with every runtime check on:
    // conservation at each event, watermark hysteresis, suppression
    // safety. A clean pass means the invariants hold throughout the
    // run, not just at the end.
    let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::full());
    cfg.sanitizer = crate::SanitizerConfig::audit();
    let mut sim = Simulation::new(cfg);
    let a = sim.add_nf(NfSpec::new("light", 0, 120));
    let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 1_000_000.0, 64);
    let r = sim.run(Duration::from_millis(100));
    sim.sanitizer.assert_clean();
    assert!(invariants::packets_conserved(&sim.platform));
    assert!(sim.sanitizer.event_count() > 0);
    assert_eq!(r.trace_digest, sim.sanitizer.digest());
}

#[test]
fn trace_digest_is_reproducible_and_seed_sensitive() {
    let run = |seed: u64| {
        let mut cfg = base_cfg(1, Policy::CfsNormal, NfvniceConfig::full());
        cfg.seed = seed;
        let mut sim = Simulation::new(cfg);
        let nf = sim.add_nf(NfSpec::new("bridge", 0, 250));
        let chain = sim.add_chain(&[nf]);
        // Poisson arrivals so the seed actually shapes the event trace
        // (a pure constant-rate flow consumes no randomness).
        sim.add_udp_with(chain, 200_000.0, 64, |f| f.poisson());
        sim.run(Duration::from_millis(50)).trace_digest
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn queue_backends_produce_identical_runs() {
    // Runtime backend selection: the same config on the timer wheel and
    // the binary heap must yield the same event order, hence the same
    // trace digest and report — regardless of which backend the build
    // defaults to. Poisson arrivals so RNG draws depend on event order.
    let run = |queue: nfv_des::QueueKind| {
        let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::full());
        cfg.queue = queue;
        let mut sim = Simulation::new(cfg);
        let a = sim.add_nf(NfSpec::new("light", 0, 120));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp_with(chain, 400_000.0, 64, |f| f.poisson());
        sim.run(Duration::from_millis(60))
    };
    let wheel = run(nfv_des::QueueKind::Wheel);
    let classic = run(nfv_des::QueueKind::WheelClassic);
    let heap = run(nfv_des::QueueKind::Heap);
    for other in [&classic, &heap] {
        assert_eq!(wheel.trace_digest, other.trace_digest);
        assert_eq!(wheel.flows[0].delivered, other.flows[0].delivered);
        assert_eq!(wheel.flows[0].dropped, other.flows[0].dropped);
        assert_eq!(wheel.total_wasted_drops, other.total_wasted_drops);
        for (w, h) in wheel.nfs.iter().zip(other.nfs.iter()) {
            assert_eq!(w.processed, h.processed, "{}", w.name);
        }
    }
}

#[test]
fn coalesce_and_skip_ahead_knobs_are_byte_identical() {
    // The engine-level speed knobs (same-instant batch replay and
    // no-op-tick body elision) must be invisible in every deterministic
    // output: same event stream (trace digest), same per-NF/per-flow
    // counters, for every knob combination — regardless of which way the
    // build's features flipped the defaults. Poisson arrivals so RNG
    // draws depend on event order; an idle tail so skip-ahead actually
    // fires.
    let run = |coalesce: bool, skip_ahead: bool, rate_pps: f64| {
        let mut cfg = base_cfg(1, Policy::CfsNormal, NfvniceConfig::full());
        cfg.coalesce = coalesce;
        cfg.skip_ahead = skip_ahead;
        let mut sim = Simulation::new(cfg);
        let a = sim.add_nf(NfSpec::new("light", 0, 120));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp_with(chain, rate_pps, 64, |f| f.poisson());
        sim.run(Duration::from_millis(60))
    };
    // Overloaded run (backpressure active) and a lightly loaded one with
    // idle gaps between packets: both must be knob-invariant.
    let base = run(false, false, 400_000.0);
    for (coalesce, skip_ahead) in [(true, false), (false, true), (true, true)] {
        let fast = run(coalesce, skip_ahead, 400_000.0);
        assert_eq!(
            base.trace_digest, fast.trace_digest,
            "coalesce={coalesce} skip_ahead={skip_ahead}"
        );
        assert_eq!(base.total_delivered_pps, fast.total_delivered_pps);
        assert_eq!(base.total_wasted_drops, fast.total_wasted_drops);
        assert_eq!(base.throttle_events, fast.throttle_events);
        for (b, f) in base.nfs.iter().zip(fast.nfs.iter()) {
            assert_eq!(b.processed, f.processed, "{}", b.name);
            assert_eq!(b.cpu_time, f.cpu_time, "{}", b.name);
        }
        for (b, f) in base.flows.iter().zip(fast.flows.iter()) {
            assert_eq!(b.delivered, f.delivered);
            assert_eq!(b.dropped, f.dropped);
        }
    }
    // The light run has idle windows (20k pps ≪ the chain's capacity),
    // so both knobs must actually engage — and stay byte-invariant.
    let idle_base = run(false, false, 20_000.0);
    let idle_fast = run(true, true, 20_000.0);
    assert_eq!(idle_base.trace_digest, idle_fast.trace_digest);
    assert_eq!(idle_base.flows[0].delivered, idle_fast.flows[0].delivered);
    assert!(idle_fast.queue.skipped_ticks > 0, "skip-ahead never fired");
    assert!(idle_fast.queue.coalesced_pops > 0, "coalescing never fired");
    assert_eq!(idle_base.queue.skipped_ticks, 0);
    assert_eq!(idle_base.queue.coalesced_pops, 0);
}

#[test]
fn sched_backends_produce_identical_runs() {
    // The trait seam must be invisible: for every policy, the hook-based
    // SchedCore driver and the classic monolithic scheduler must yield
    // the same event order, hence the same trace digest, delivery counts
    // and per-NF switch counters, on a full fig7-style overloaded-chain
    // sim. Poisson arrivals so RNG draws depend on event order.
    for policy in [
        Policy::CfsNormal,
        Policy::CfsBatch,
        Policy::rr_1ms(),
        Policy::Cooperative,
        Policy::Edf {
            period: Duration::from_millis(1),
        },
        Policy::Slo,
    ] {
        let run = |backend: nfv_sched::SchedBackend| {
            let mut cfg = base_cfg(1, policy, NfvniceConfig::full());
            cfg.platform.sched_backend = backend;
            let mut sim = Simulation::new(cfg);
            let a = sim.add_nf(NfSpec::new("light", 0, 120));
            let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
            let chain = sim.add_chain(&[a, b]);
            sim.set_chain_budget(chain, Duration::from_millis(2));
            sim.add_udp_with(chain, 400_000.0, 64, |f| f.poisson());
            sim.run(Duration::from_millis(50))
        };
        let hooks = run(nfv_sched::SchedBackend::Hooks);
        let classic = run(nfv_sched::SchedBackend::Classic);
        assert_eq!(hooks.trace_digest, classic.trace_digest, "{policy:?}");
        assert_eq!(
            hooks.flows[0].delivered, classic.flows[0].delivered,
            "{policy:?}"
        );
        assert_eq!(
            hooks.flows[0].dropped, classic.flows[0].dropped,
            "{policy:?}"
        );
        assert_eq!(
            hooks.total_wasted_drops, classic.total_wasted_drops,
            "{policy:?}"
        );
        for (h, c) in hooks.nfs.iter().zip(classic.nfs.iter()) {
            assert_eq!(h.processed, c.processed, "{policy:?} {}", h.name);
            assert_eq!(h.cswch_per_sec, c.cswch_per_sec, "{policy:?} {}", h.name);
            assert_eq!(
                h.nvcswch_per_sec, c.nvcswch_per_sec,
                "{policy:?} {}",
                h.name
            );
            assert_eq!(h.cpu_time, c.cpu_time, "{policy:?} {}", h.name);
        }
        for (h, c) in hooks.chains.iter().zip(classic.chains.iter()) {
            assert_eq!(h.latency_p99, c.latency_p99, "{policy:?}");
        }
    }
}

#[test]
fn flow_backends_produce_identical_runs() {
    // The flow-table index seam must be invisible: the sharded engine and
    // the flat oracle must mint the same flow ids, learn wildcard flows
    // and evict idle ones in the same order — hence the same trace
    // digest, report and metrics document — on a run that exercises
    // pinned flows, a tuple sweep through a wildcard rule, and aging.
    use nfv_pkt::{FlowAging, FlowTableKind, TuplePattern};
    use nfv_traffic::SweepSource;
    let run = |kind: FlowTableKind| {
        let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::full());
        cfg.platform.flow_table = kind;
        cfg.platform.flow_aging = FlowAging {
            idle_epochs: 2,
            epoch_ticks: 4,
        };
        cfg.obs.metrics = true;
        let mut sim = Simulation::new(cfg);
        let a = sim.add_nf(NfSpec::new("light", 0, 120));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp_with(chain, 200_000.0, 64, |f| f.poisson());
        sim.add_wildcard(TuplePattern::any(), chain, 0);
        // A flash crowd of 4096 brand-new flows mid-run: learned through
        // the wildcard, idle afterwards, evicted by aging before the end.
        sim.add_sweep(SweepSource::flash(
            1 << 20,
            4096,
            64,
            2_000_000.0,
            SimTime::from_millis(5),
            Duration::from_millis(3),
        ));
        let r = sim.run(Duration::from_millis(40));
        sim.sanitizer.assert_clean();
        assert!(invariants::packets_conserved(&sim.platform));
        let metrics = sim.take_metrics().to_json();
        (r, metrics)
    };
    let (sharded, sharded_metrics) = run(FlowTableKind::Sharded);
    let (flat, flat_metrics) = run(FlowTableKind::Flat);
    assert!(sharded.flows_evicted > 0, "aging never fired");
    assert_eq!(sharded.trace_digest, flat.trace_digest);
    assert_eq!(sharded.flows_active, flat.flows_active);
    assert_eq!(sharded.flows_evicted, flat.flows_evicted);
    assert_eq!(sharded.flows.len(), flat.flows.len());
    for (s, f) in sharded.flows.iter().zip(flat.flows.iter()) {
        assert_eq!(s.delivered, f.delivered, "flow {:?}", s.flow);
        assert_eq!(s.dropped, f.dropped, "flow {:?}", s.flow);
    }
    assert_eq!(sharded_metrics, flat_metrics);
}

#[test]
fn aging_runs_are_reproducible_and_keep_metrics_clean() {
    // Aging is deterministic sim state: two identical runs with eviction
    // active must produce byte-identical metrics documents, and the
    // backend-dependent flow-table internals (probe lengths, rehashes)
    // must never leak into them — those live in `BENCH_timings.json`.
    use nfv_pkt::{FlowAging, TuplePattern};
    use nfv_traffic::SweepSource;
    let run = || {
        let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::full());
        cfg.platform.flow_aging = FlowAging {
            idle_epochs: 1,
            epoch_ticks: 4,
        };
        cfg.obs.metrics = true;
        let mut sim = Simulation::new(cfg);
        let nf = sim.add_nf(NfSpec::new("bridge", 0, 250));
        let chain = sim.add_chain(&[nf]);
        sim.add_wildcard(TuplePattern::any(), chain, 0);
        sim.add_sweep(SweepSource::flash(
            0,
            2048,
            64,
            1_000_000.0,
            SimTime::from_millis(2),
            Duration::from_millis(3),
        ));
        let r = sim.run(Duration::from_millis(30));
        (
            r.trace_digest,
            r.flows_evicted,
            sim.take_metrics().to_json(),
        )
    };
    let (digest_a, evicted_a, metrics_a) = run();
    let (digest_b, _, metrics_b) = run();
    assert!(evicted_a > 0, "aging never fired");
    assert_eq!(digest_a, digest_b);
    assert_eq!(metrics_a, metrics_b);
    assert!(metrics_a.contains("\"flows_active\":"));
    assert!(metrics_a.contains("\"flows_evicted\":"));
    assert!(!metrics_a.contains("probe"));
    assert!(!metrics_a.contains("rehash"));
}

#[test]
fn slo_policy_prioritizes_budgeted_chain() {
    // One core, an interactive chain with a tight budget sharing the
    // core with an overloaded bulk chain. Under SLO scheduling the
    // interactive chain's p99 must hold inside its budget.
    let build = |policy: Policy| {
        let mut sim = Simulation::new(base_cfg(1, policy, NfvniceConfig::full()));
        let inter = sim.add_nf(NfSpec::new("inter", 0, 300));
        let bulk = sim.add_nf(NfSpec::new("bulk", 0, 8_000));
        let ic = sim.add_chain(&[inter]);
        let bc = sim.add_chain(&[bulk]);
        sim.set_chain_budget(ic, Duration::from_micros(500));
        sim.add_udp(ic, 50_000.0, 64);
        sim.add_udp(bc, 2_000_000.0, 64); // ~6x overload
        (sim.run(Duration::from_millis(100)), ic)
    };
    let (slo, ic) = build(Policy::Slo);
    let p99 = slo.chains[ic.index()].latency_p99;
    assert!(
        p99 <= Duration::from_micros(500),
        "SLO p99 {} ns blows the 500 µs budget",
        p99.as_nanos()
    );
    assert!(slo.chains[ic.index()].delivered > 0);
}

#[test]
fn chain_delivery_traverses_all_nfs() {
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::off()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100));
    let b = sim.add_nf(NfSpec::new("b", 0, 100));
    let c = sim.add_nf(NfSpec::new("c", 0, 100));
    let chain = sim.add_chain(&[a, b, c]);
    sim.add_udp(chain, 50_000.0, 64);
    let r = sim.run(Duration::from_millis(100));
    assert!(r.flows[0].delivered > 0);
    // every NF saw every delivered packet
    for nf in &r.nfs {
        assert!(nf.processed >= r.flows[0].delivered, "{}", nf.name);
    }
}

#[test]
fn backpressure_sheds_at_entry_and_prevents_wasted_work() {
    let run = |nfvnice: NfvniceConfig| {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, nfvnice));
        let cheap = sim.add_nf(NfSpec::new("cheap", 0, 100));
        let costly = sim.add_nf(NfSpec::new("costly", 0, 10_000));
        let chain = sim.add_chain(&[cheap, costly]);
        sim.add_udp(chain, 5_000_000.0, 64);
        sim.run(Duration::from_millis(300))
    };
    let default = run(NfvniceConfig::off());
    let nice = run(NfvniceConfig::full());
    assert!(
        default.total_wasted_drops > 100_000,
        "default wastes: {}",
        default.total_wasted_drops
    );
    assert!(
        nice.total_wasted_drops < default.total_wasted_drops / 20,
        "nfvnice {} vs default {}",
        nice.total_wasted_drops,
        default.total_wasted_drops
    );
    assert!(nice.entry_drops > 0, "shed at entry instead");
    assert!(nice.throttle_events > 0);
    // and throughput should not be worse
    assert!(nice.total_delivered_pps > default.total_delivered_pps * 0.8);
}

#[test]
fn cgroup_weights_give_rate_cost_fairness() {
    // Two NFs, same arrival rate, 3x cost difference, one core.
    let run = |nfvnice: NfvniceConfig| {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, nfvnice));
        let light = sim.add_nf(NfSpec::new("light", 0, 300));
        let heavy = sim.add_nf(NfSpec::new("heavy", 0, 900));
        let c1 = sim.add_chain(&[light]);
        let c2 = sim.add_chain(&[heavy]);
        // total demand = 4M*300 + 4M*900 cycles = 4.8G > 2.6G: overload
        sim.add_udp(c1, 4_000_000.0, 64);
        sim.add_udp(c2, 4_000_000.0, 64);
        sim.run(Duration::from_millis(400))
    };
    let nice = run(NfvniceConfig::cgroups_only());
    // rate-cost fairness: equal output rates despite 3x cost gap
    let ratio = nice.flows[0].delivered_pps / nice.flows[1].delivered_pps;
    assert!((0.8..1.4).contains(&ratio), "nfvnice output ratio {ratio}");
    let default = run(NfvniceConfig::off());
    let dratio = default.flows[0].delivered_pps / default.flows[1].delivered_pps;
    assert!(dratio > 1.8, "CFS favors the cheap NF: {dratio}");
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::full()));
        let a = sim.add_nf(NfSpec::new("a", 0, 120));
        let b = sim.add_nf(NfSpec::new("b", 0, 550));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp_with(chain, 3_000_000.0, 64, |f| f.poisson());
        let r = sim.run(Duration::from_millis(100));
        (r.flows[0].delivered, r.total_wasted_drops, r.entry_drops)
    };
    assert_eq!(run(), run());
}

#[test]
fn mid_run_action_changes_cost() {
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    let nf = sim.add_nf(NfSpec::new("morph", 0, 100));
    let chain = sim.add_chain(&[nf]);
    sim.add_udp(chain, 200_000.0, 64);
    // After 50ms the NF becomes 100x more expensive (10k cycles →
    // 260 kpps capacity — still above offered; then 100k → 26 kpps).
    sim.at(
        SimTime::from_millis(50),
        Action::SetCost(nf, CostModel::Fixed(100_000)),
    );
    let r = sim.run(Duration::from_millis(100));
    // delivered ≈ 50ms*200k + 50ms*26k ≈ 10k + 1.3k
    let d = r.flows[0].delivered;
    assert!((9_000..13_500).contains(&d), "delivered {d}");
}

#[test]
fn shared_nf_keeps_serving_live_chain_under_throttle() {
    // Fig 8/9 in miniature: NF "shared" feeds both a clean chain and a
    // chain with a downstream bottleneck. Throttling the congested
    // chain must not suppress the shared NF — the clean chain keeps
    // its full rate.
    let mut sim = Simulation::new(base_cfg(2, Policy::CfsBatch, NfvniceConfig::full()));
    let shared = sim.add_nf(NfSpec::new("shared", 0, 300));
    let bneck = sim.add_nf(NfSpec::new("bneck", 1, 26_000)); // 100 kpps
    let clean = sim.add_chain(&[shared]);
    let congested = sim.add_chain(&[shared, bneck]);
    sim.add_udp(clean, 1_000_000.0, 64);
    sim.add_udp(congested, 1_000_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    assert!(r.throttle_events > 0, "bottleneck must throttle");
    assert!(
        r.flows[0].delivered_pps > 950_000.0,
        "clean flow degraded: {}",
        r.flows[0].delivered_pps
    );
    assert!(
        // ±33.4% of 105 kpps ≈ the old 70–140 kpps bottleneck window.
        invariants::within_pct(r.flows[1].delivered_pps, 105_000.0, 33.4),
        "congested flow should ride the bottleneck: {}",
        r.flows[1].delivered_pps
    );
}

#[test]
fn bottleneck_nf_itself_is_never_suppressed() {
    // The NF whose queue triggered the throttle must keep draining,
    // otherwise the throttle never clears (deadlock regression test).
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::full()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100));
    let b = sim.add_nf(NfSpec::new("b", 0, 5_000));
    let chain = sim.add_chain(&[a, b]);
    sim.add_udp(chain, 10_000_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    assert!(r.throttle_events > 0);
    // sustained delivery at roughly the bottleneck rate (≈ 510 kpps
    // capacity for NF b minus scheduling overhead)
    assert!(
        r.flows[0].delivered_pps > 300_000.0,
        "chain starved: {}",
        r.flows[0].delivered_pps
    );
}

#[test]
fn cgroup_write_cost_charged_to_manager_time() {
    // Each effective cpu.shares write costs ~5 µs of manager CPU time;
    // the engine's weight-update path must account every one of them
    // (and nothing else — redundant writes are free).
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::cgroups_only()));
    let a = sim.add_nf(NfSpec::new("light", 0, 120));
    let b = sim.add_nf(NfSpec::new("heavy", 0, 2_400));
    let ca = sim.add_chain(&[a]);
    let cb = sim.add_chain(&[b]);
    sim.add_udp(ca, 500_000.0, 64);
    sim.add_udp(cb, 500_000.0, 64);
    let r = sim.run(Duration::from_millis(100));
    assert!(r.cgroup_writes > 0, "no weight updates happened");
    assert_eq!(
        r.cgroup_write_time,
        nfv_sched::CgroupCpu::DEFAULT_WRITE_COST.times(r.cgroup_writes),
    );
}

#[test]
fn ecn_marks_only_ect0_packets() {
    // Non-ECT traffic through a congested NF must never be CE-marked
    // even with the marker on: the platform checks the codepoint
    // before consulting the policy, so the marks counter stays zero.
    let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::off());
    cfg.nfvnice.ecn = true;
    let mut sim = Simulation::new(cfg);
    let a = sim.add_nf(NfSpec::new("fast", 0, 100));
    let slow = sim.add_nf(NfSpec::new("slow", 0, 26_000));
    let chain = sim.add_chain(&[a, slow]);
    sim.add_udp(chain, 1_000_000.0, 64); // NotEct by construction
    let r = sim.run(Duration::from_millis(200));
    assert!(
        r.flows[0].dropped + r.total_wasted_drops + r.nic_overflow > 0,
        "scenario failed to congest the slow NF"
    );
    assert_eq!(r.ecn_marks, 0, "NotEct packets must not be CE-marked");
}

#[test]
fn ecn_disabled_never_marks() {
    let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::off());
    cfg.nfvnice.ecn = false;
    let mut sim = Simulation::new(cfg);
    let slow = sim.add_nf(NfSpec::new("slow", 0, 5_000));
    let chain = sim.add_chain(&[slow]);
    sim.add_tcp_with(chain, 1500, Duration::from_micros(100), |t| t.with_ecn());
    let r = sim.run(Duration::from_millis(200));
    assert_eq!(r.ecn_marks, 0);
}

#[test]
fn repeated_nf_last_hop_is_not_suppressed_by_an_upstream_throttle() {
    // Positional-suppression regression: chain [a, b, a] with b
    // throttling. a's *last* hop sits downstream of the bottleneck and
    // must stay awake to drain it; judging a by its first hop (upstream
    // of b) parked the only consumer of b's output and deadlocked the
    // throttle.
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::full()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100));
    let b = sim.add_nf(NfSpec::new("b", 0, 5_000));
    let chain = sim.add_chain(&[a, b, a]);
    sim.prime(SimTime::from_millis(1));
    // Throttle b by hand: ring at 95% with an aged head.
    sim.bp.evaluate(
        SimTime::from_micros(100),
        b,
        95,
        100,
        Some(Duration::from_millis(10)),
        [chain].iter(),
    );
    assert!(
        matches!(sim.bp.state(b), crate::BpState::Throttle),
        "setup failed: b not throttled"
    );
    sim.platform.nfs[a.index()].note_pending(chain);
    sim.platform.nfs[b.index()].note_pending(chain);
    assert!(
        !sim.nf_suppressed(a.index()),
        "a's last hop drains b's output and must not be parked"
    );
    assert!(
        !sim.nf_suppressed(b.index()),
        "the bottleneck itself is never suppressed"
    );
}

#[test]
fn repeated_nf_chain_survives_downstream_throttle() {
    // End-to-end companion to the positional-suppression regression:
    // a chain that revisits its entry NF after the bottleneck must keep
    // delivering at roughly the bottleneck rate. With the first-hop
    // comparison the pipeline wedged shut a few rings in.
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::full()));
    let a = sim.add_nf(NfSpec::new("a", 0, 100));
    let b = sim.add_nf(NfSpec::new("b", 0, 5_000)); // ~520 kpps
    let chain = sim.add_chain(&[a, b, a]);
    sim.add_udp(chain, 5_000_000.0, 64);
    let r = sim.run(Duration::from_millis(300));
    assert!(r.throttle_events > 0, "scenario failed to throttle b");
    assert!(
        r.flows[0].delivered_pps > 250_000.0,
        "repeated-NF chain wedged: {}",
        r.flows[0].delivered_pps
    );
}

#[test]
fn elastic_off_is_byte_identical() {
    // The byte-identity contract: while every direction switch is off,
    // even aggressive elastic tuning values may not perturb a run —
    // same trace digest, same report, same metrics document.
    let run = |elastic: crate::ElasticConfig| {
        let mut cfg = base_cfg(2, Policy::CfsBatch, NfvniceConfig::full());
        cfg.elastic = elastic;
        cfg.obs.metrics = true;
        let mut sim = Simulation::new(cfg);
        let a = sim.add_nf(NfSpec::new("light", 0, 120));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp_with(chain, 400_000.0, 64, |f| f.poisson());
        let r = sim.run(Duration::from_millis(60));
        (r, sim.take_metrics().to_json())
    };
    let (base, base_metrics) = run(crate::ElasticConfig::default());
    let hair_trigger = crate::ElasticConfig {
        check_period_ticks: 1,
        dwell_checks: 1,
        max_replicas: 8,
        deploy_cost: 0.0,
        saturation_pct: 1,
        spread_margin_pct: 0,
        idle_load_pct: 100,
        idle_checks: 1,
        cooldown_checks: 0,
        ..crate::ElasticConfig::default()
    };
    assert!(!hair_trigger.active(), "all switches must still be off");
    let (tuned, tuned_metrics) = run(hair_trigger);
    assert_eq!(base.trace_digest, tuned.trace_digest);
    assert_eq!(base.flows[0].delivered, tuned.flows[0].delivered);
    assert_eq!(base.total_wasted_drops, tuned.total_wasted_drops);
    assert_eq!(base_metrics, tuned_metrics);
    assert_eq!(
        tuned.nf_scale_outs + tuned.nf_migrations + tuned.nf_scale_ins,
        0
    );
}

#[test]
fn scale_out_replicates_the_bottleneck_and_beats_backpressure_alone() {
    // One heavy NF on core 0, core 1 idle; a pinned flow overloads it
    // from the start, then a sweep of brand-new flows arrives after the
    // replica is up. Scale-out shards the new flows across both
    // instances (in-flight flows stay pinned to the base), so goodput
    // clearly beats backpressure-only shedding on the same trace.
    use nfv_pkt::TuplePattern;
    use nfv_traffic::SweepSource;
    let run = |elastic: crate::ElasticConfig| {
        let mut cfg = base_cfg(2, Policy::CfsBatch, NfvniceConfig::full());
        cfg.elastic = elastic;
        let mut sim = Simulation::new(cfg);
        let heavy = sim.add_nf(NfSpec::new("heavy", 0, 26_000)); // 100 kpps
        let chain = sim.add_chain(&[heavy]);
        sim.add_udp(chain, 1_000_000.0, 64); // pinned 10x overload
        sim.add_wildcard(TuplePattern::any(), chain, 0);
        // 4096 fresh flows at 400 kpps, starting well past the dwell.
        sim.add_sweep(SweepSource::flash(
            1 << 16,
            4096,
            64,
            400_000.0,
            SimTime::from_millis(60),
            Duration::from_millis(240),
        ));
        sim.run(Duration::from_millis(300))
    };
    let bp_only = run(crate::ElasticConfig::default());
    assert_eq!(bp_only.nf_scale_outs, 0);
    let scaled = run(crate::ElasticConfig {
        scale_out: true,
        ..crate::ElasticConfig::default()
    });
    assert!(scaled.nf_scale_outs >= 1, "no replica was deployed");
    let base_total: u64 = bp_only.chains[0].delivered;
    let scaled_total: u64 = scaled.chains[0].delivered;
    assert!(
        scaled_total as f64 > base_total as f64 * 1.2,
        "scale-out {scaled_total} vs backpressure-only {base_total}"
    );
}

#[test]
fn migration_moves_the_cheapest_nf_off_a_saturated_core() {
    // Two overloaded single-NF chains share core 0 while core 1 idles.
    // The controller must detect the saturation, move the cheaper NF to
    // the idle core, and total goodput must beat the share-split.
    let run = |elastic: crate::ElasticConfig| {
        let mut cfg = base_cfg(2, Policy::CfsBatch, NfvniceConfig::full());
        cfg.elastic = elastic;
        let mut sim = Simulation::new(cfg);
        let cheap = sim.add_nf(NfSpec::new("cheap", 0, 120));
        let costly = sim.add_nf(NfSpec::new("costly", 0, 26_000));
        let cc = sim.add_chain(&[cheap]);
        let hc = sim.add_chain(&[costly]);
        sim.add_udp(cc, 1_000_000.0, 64);
        sim.add_udp(hc, 1_000_000.0, 64);
        sim.run(Duration::from_millis(300))
    };
    let pinned = run(crate::ElasticConfig::default());
    assert_eq!(pinned.nf_migrations, 0);
    let migrated = run(crate::ElasticConfig {
        migration: true,
        ..crate::ElasticConfig::default()
    });
    assert!(migrated.nf_migrations >= 1, "no migration happened");
    // The cheap NF ends up homed on core 1 (report reads the live spec).
    assert_eq!(migrated.nfs[0].core, 1, "cheap NF still on core 0");
    assert!(
        migrated.total_delivered_pps > pinned.total_delivered_pps * 1.2,
        "migration {} vs pinned {}",
        migrated.total_delivered_pps,
        pinned.total_delivered_pps
    );
}

#[test]
fn scale_in_retires_the_replica_after_the_surge() {
    // Windowed overload: pinned pressure plus a fresh-flow surge, both
    // ending mid-run. The replica deployed during the surge must be
    // retired once it idles past the hysteresis, returning the layout
    // to a single live instance.
    use nfv_pkt::TuplePattern;
    use nfv_traffic::SweepSource;
    let mut cfg = base_cfg(2, Policy::CfsBatch, NfvniceConfig::full());
    cfg.elastic = crate::ElasticConfig {
        scale_out: true,
        scale_in: true,
        ..crate::ElasticConfig::default()
    };
    let mut sim = Simulation::new(cfg);
    let heavy = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
    let chain = sim.add_chain(&[heavy]);
    sim.add_udp_with(chain, 1_000_000.0, 64, |f| {
        f.window(SimTime::ZERO, SimTime::from_millis(150))
    });
    sim.add_wildcard(TuplePattern::any(), chain, 0);
    sim.add_sweep(SweepSource::flash(
        1 << 16,
        4096,
        64,
        400_000.0,
        SimTime::from_millis(60),
        Duration::from_millis(80),
    ));
    let r = sim.run(Duration::from_millis(400));
    assert!(r.nf_scale_outs >= 1, "no replica was deployed");
    assert!(r.nf_scale_ins >= 1, "replica never retired");
    assert!(
        sim.platform.replica_group(heavy).is_empty(),
        "layout did not return to a single live instance"
    );
    assert!(invariants::packets_conserved(&sim.platform));
}

#[test]
fn tcp_flow_reaches_window_limited_rate() {
    let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
    let nf = sim.add_nf(NfSpec::new("fwd", 0, 200));
    let chain = sim.add_chain(&[nf]);
    let flow = sim.add_tcp_with(chain, 1500, Duration::from_micros(100), |s| {
        s.with_max_cwnd(33.0)
    });
    let r = sim.run(Duration::from_millis(500));
    // cap = 33 * 1500B * 8 / 100us = 3.96 Gbps
    let mbps = r.flows[flow.index()].mbps;
    assert!((3_000.0..4_200.0).contains(&mbps), "tcp rate {mbps} Mbps");
}
