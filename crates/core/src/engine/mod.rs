//! The simulation engine: event loop wiring traffic, the platform
//! mechanisms, the OS scheduler and the NFVnice policy subsystems together.
//!
//! The engine is split by responsibility:
//!
//! - [`events`] — the event vocabulary ([`Ev`]) and its stable digest
//!   encoding, plus the public mid-run [`Action`] type.
//! - [`domain`] — [`CoreDomain`], the per-core state bundle (activity
//!   flag, homed NFs, CPU snapshots, weight-update scratch).
//! - [`managers`] — the manager-thread ticks: traffic, RX, TX, wakeup,
//!   monitor. Periodic events on dedicated (unmodeled) cores, as in the
//!   paper's deployment where the NF Manager's threads are pinned away
//!   from NF cores.
//! - [`nf_exec`] — NF execution in batch-sized segments: `CoreRun` begins
//!   a batch (dequeue + cost computation), `BatchDone` completes it
//!   (handler execution, I/O, TX enqueue) and then makes the scheduling
//!   decision — continue, preempt, or block — which is exactly the
//!   batch-boundary yield/preemption model of `libnf` (§3.2).
//! - [`report`] — series snapshots and end-of-run report assembly.
//!
//! This file holds only the orchestrator: the [`Simulation`] state, its
//! builders, and the main event loop dispatching to the modules above.

mod domain;
mod elastic;
mod events;
mod faults;
mod managers;
mod nf_exec;
mod report;
#[cfg(test)]
mod tests;

pub use events::Action;

use domain::CoreDomain;
use events::{ev_tag, Ev};

use crate::backpressure::Backpressure;
use crate::config::SimConfig;
use crate::ecn::EcnMarker;
use crate::faults::{FaultEvent, FaultKind};
use crate::invariants;
use crate::load::LoadMonitor;
use crate::report::{Report, Series};
use nfv_des::{Duration, EventQueue, Sanitizer, Severity, SimRng, SimTime};
use nfv_obs::{MetricsRecorder, TraceEvent, TraceSink};
use nfv_pkt::{ChainId, FiveTuple, FlowId, NfId, Proto, TuplePattern};
use nfv_platform::{NfSpec, PacketHandler, Platform, TcpEvent};
use nfv_sched::Policy;
use nfv_traffic::{CbrFlow, SweepSource, TcpSource};
use std::collections::BTreeMap;

/// A configured simulation: build it, attach NFs/chains/traffic, `run`.
pub struct Simulation {
    cfg: SimConfig,
    /// The underlying platform (public for tests and custom inspection).
    pub platform: Platform,
    queue: EventQueue<Ev>,
    rng: SimRng,
    /// Runtime invariant auditor + event-trace digest (public so tests can
    /// inspect violations after `run`, e.g. `sim.sanitizer.assert_clean()`).
    pub sanitizer: Sanitizer,
    udp: Vec<CbrFlow>,
    sweeps: Vec<SweepSource>,
    tcp: Vec<TcpSource>,
    tcp_by_flow: BTreeMap<FlowId, usize>,
    flow_chain: Vec<ChainId>,
    bp: Backpressure,
    load: LoadMonitor,
    ecn: EcnMarker,
    /// Per-chain latency budgets (SLO targets), consumed at `prime` by
    /// the SLO policy to derive per-task deadlines.
    chain_budgets: BTreeMap<ChainId, Duration>,
    /// Per-core state bundles, one per NF core, built at `prime`.
    domains: Vec<CoreDomain>,
    actions: Vec<(SimTime, Action)>,
    trace: TraceSink,
    metrics: MetricsRecorder,
    mgr_cgroup_time: Duration,
    monitor_ticks: u64,
    tuple_counter: u32,
    last_roll: SimTime,
    /// End of the current run; events scheduled past it are dropped.
    run_end: SimTime,
    /// Liveness watchdog state per NF: (progress counter at the last
    /// tick, consecutive no-progress ticks with pending work).
    watchdog: Vec<(u64, u32)>,
    /// Per-core cumulative busy time at the last elastic check.
    elastic_busy_snapshot: Vec<Duration>,
    /// Per-core busy time over the last check period (scratch derived
    /// from the snapshots each check — kept on the struct so the
    /// controller allocates nothing on the dispatch path).
    elastic_busy_delta: Vec<Duration>,
    /// Consecutive elastic checks each base NF spent throttled
    /// (scale-out dwell); zero and unread for replicas.
    throttle_streak: Vec<u32>,
    /// Consecutive elastic checks each replica spent idle (scale-in
    /// hysteresis); zero and unread for base NFs.
    idle_streak: Vec<u32>,
    /// Elastic checks to skip before the next action may fire.
    elastic_cooldown: u32,
    /// Scale-out replicas deployed.
    scale_outs: u64,
    /// Cross-core migrations performed.
    migrations: u64,
    /// Replicas retired by scale-in.
    scale_ins: u64,
    /// NF crashes applied (injected + watchdog-declared).
    crashes: u64,
    /// NF restarts performed by the recovery policy.
    restarts: u64,
    /// Stalls the liveness watchdog detected.
    stalls_detected: u64,
    /// Events popped and discarded because lazy invalidation made them
    /// stale (dead-NF batch events, no-op respawns/crashes/slowdown
    /// ends). Counted at the discard site, so both queue backends agree
    /// on it by construction.
    stale_pops: u64,
    /// Periodic ticks whose handler body was elided by idle skip-ahead
    /// (the event was still popped and digested). Injected into the
    /// report's `QueueStats` copy — timings-only, per the counter split.
    skipped_ticks: u64,
    /// `pending_desync` counter value already reported to the sanitizer.
    seen_desync: u64,
    traffic_rotor: usize,
    /// Flows evicted by aging over the run (cumulative; backend-identical
    /// by construction, so it may feed metrics columns).
    flows_evicted: u64,
    // per-second series bookkeeping (CPU snapshots live in the domains)
    series: Series,
    flow_bytes_snapshot: Vec<u64>,
    scratch_evicted: Vec<FlowId>,
    scratch_tcp: Vec<TcpEvent>,
    scratch_woken: Vec<NfId>,
    scratch_frames: Vec<nfv_pkt::WireFrame>,
}

impl Simulation {
    /// A new simulation with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let platform = Platform::new(cfg.platform.clone());
        let rng = SimRng::seed_from_u64(cfg.seed);
        Simulation {
            platform,
            queue: EventQueue::with_kind(cfg.queue),
            rng,
            sanitizer: Sanitizer::new(cfg.sanitizer),
            udp: Vec::new(),
            sweeps: Vec::new(),
            tcp: Vec::new(),
            tcp_by_flow: BTreeMap::new(),
            flow_chain: Vec::new(),
            bp: Backpressure::new(cfg.nfvnice.bp, 0, 0),
            load: LoadMonitor::new(cfg.nfvnice.load, 0),
            ecn: EcnMarker::new(cfg.nfvnice.ecn_cfg, Vec::new()),
            chain_budgets: BTreeMap::new(),
            domains: Vec::new(),
            actions: Vec::new(),
            trace: if cfg.obs.trace {
                TraceSink::recording()
            } else {
                TraceSink::off()
            },
            metrics: if cfg.obs.metrics {
                MetricsRecorder::recording()
            } else {
                MetricsRecorder::off()
            },
            mgr_cgroup_time: Duration::ZERO,
            monitor_ticks: 0,
            tuple_counter: 0,
            last_roll: SimTime::ZERO,
            run_end: SimTime::ZERO,
            watchdog: Vec::new(),
            elastic_busy_snapshot: Vec::new(),
            elastic_busy_delta: Vec::new(),
            throttle_streak: Vec::new(),
            idle_streak: Vec::new(),
            elastic_cooldown: 0,
            scale_outs: 0,
            migrations: 0,
            scale_ins: 0,
            crashes: 0,
            restarts: 0,
            stalls_detected: 0,
            stale_pops: 0,
            skipped_ticks: 0,
            seen_desync: 0,
            traffic_rotor: 0,
            flows_evicted: 0,
            series: Series::default(),
            flow_bytes_snapshot: Vec::new(),
            scratch_evicted: Vec::new(),
            scratch_tcp: Vec::new(),
            scratch_woken: Vec::new(),
            scratch_frames: Vec::new(),
            cfg,
        }
    }

    /// Deploy an NF.
    pub fn add_nf(&mut self, spec: NfSpec) -> NfId {
        self.platform.add_nf(spec)
    }

    /// Deploy an NF with a custom handler.
    pub fn add_nf_with_handler(&mut self, spec: NfSpec, handler: Box<dyn PacketHandler>) -> NfId {
        self.platform.add_nf_with_handler(spec, handler)
    }

    /// Install a service chain.
    pub fn add_chain(&mut self, path: &[NfId]) -> ChainId {
        self.platform.install_chain(path)
    }

    fn fresh_tuple(&mut self, proto: Proto) -> FiveTuple {
        self.tuple_counter += 1;
        FiveTuple::synthetic(self.tuple_counter, proto)
    }

    /// Attach a constant-rate UDP flow to `chain`.
    pub fn add_udp(&mut self, chain: ChainId, rate_pps: f64, frame_size: u32) -> FlowId {
        self.add_udp_with(chain, rate_pps, frame_size, |f| f)
    }

    /// Attach a UDP flow with extra configuration (window, Poisson, cost
    /// classes) applied by `customize`.
    pub fn add_udp_with(
        &mut self,
        chain: ChainId,
        rate_pps: f64,
        frame_size: u32,
        customize: impl FnOnce(CbrFlow) -> CbrFlow,
    ) -> FlowId {
        let tuple = self.fresh_tuple(Proto::Udp);
        let flow = self.platform.install_flow(tuple, chain);
        self.udp
            .push(customize(CbrFlow::new(tuple, frame_size, rate_pps)));
        self.note_flow(flow, chain);
        flow
    }

    /// Install a wildcard rule steering matching tuples onto `chain` at
    /// `priority` (higher wins on overlap). Flows classified through a
    /// wildcard are learned into the exact table as unpinned entries —
    /// unlike `add_udp`/`add_tcp` installs, they are evicted by aging
    /// when [`FlowAging`](nfv_pkt::FlowAging) is enabled.
    pub fn add_wildcard(&mut self, pattern: TuplePattern, chain: ChainId, priority: i32) {
        self.platform.install_wildcard(pattern, chain, priority);
    }

    /// Attach a tuple-sweeping traffic source: paced like a CBR/Poisson
    /// flow, but spreading frames across its whole tuple space so every
    /// frame exercises wildcard classification and flow-table churn.
    /// Route its tuples with [`Simulation::add_wildcard`].
    pub fn add_sweep(&mut self, sweep: SweepSource) {
        self.sweeps.push(sweep);
    }

    /// Attach a TCP flow to `chain`.
    pub fn add_tcp(&mut self, chain: ChainId, frame_size: u32, rtt: Duration) -> FlowId {
        self.add_tcp_with(chain, frame_size, rtt, |s| s)
    }

    /// Attach a TCP flow with extra configuration (ECN, max cwnd).
    pub fn add_tcp_with(
        &mut self,
        chain: ChainId,
        frame_size: u32,
        rtt: Duration,
        customize: impl FnOnce(TcpSource) -> TcpSource,
    ) -> FlowId {
        let tuple = self.fresh_tuple(Proto::Tcp);
        let flow = self.platform.install_flow(tuple, chain);
        let src = customize(TcpSource::new(tuple, frame_size, rtt));
        self.tcp_by_flow.insert(flow, self.tcp.len());
        self.tcp.push(src);
        self.note_flow(flow, chain);
        flow
    }

    fn note_flow(&mut self, flow: FlowId, chain: ChainId) {
        while self.flow_chain.len() <= flow.index() {
            self.flow_chain.push(chain);
        }
        self.flow_chain[flow.index()] = chain;
    }

    /// Mark a flow as triggering storage I/O at I/O-capable NFs.
    pub fn mark_io_flow(&mut self, flow: FlowId) {
        self.platform.set_io_flow(flow);
    }

    /// Declare an end-to-end latency budget (SLO) for `chain`. Under
    /// [`Policy::Slo`] the budget is split across the chain's NFs at
    /// prime time, proportional to per-packet cost, and pushed into the
    /// scheduler as per-task deadline budgets (an NF serving several
    /// budgeted chains keeps the tightest share). Ignored — harmlessly —
    /// under every other policy.
    pub fn set_chain_budget(&mut self, chain: ChainId, budget: Duration) {
        self.chain_budgets.insert(chain, budget);
    }

    /// Schedule a configuration change.
    pub fn at(&mut self, t: SimTime, action: Action) {
        self.actions.push((t, action));
    }

    /// Schedule a fault: at `t`, `nf` suffers `kind`. Convenience wrapper
    /// over [`FaultConfig::events`](crate::faults::FaultConfig) for
    /// experiments that build the plan alongside the topology.
    pub fn inject_fault(&mut self, t: SimTime, nf: NfId, kind: FaultKind) {
        self.cfg.faults.events.push(FaultEvent { at: t, nf, kind });
    }

    /// Read access to a TCP source (for assertions on cwnd etc.).
    pub fn tcp_source(&self, flow: FlowId) -> &TcpSource {
        &self.tcp[self.tcp_by_flow[&flow]]
    }

    /// Drain the structured trace recorded so far (empty unless
    /// [`ObsConfig::trace`](crate::config::ObsConfig) was set).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Take the metrics time series recorded so far (empty unless
    /// [`ObsConfig::metrics`](crate::config::ObsConfig) was set).
    pub fn take_metrics(&mut self) -> MetricsRecorder {
        std::mem::take(&mut self.metrics)
    }

    // ------------------------------------------------------------------
    // main loop
    // ------------------------------------------------------------------

    /// Run for `duration` of simulated time and report.
    ///
    /// `run` consumes the simulation's timeline: call it once per
    /// `Simulation`. (A second call panics on the first event scheduled
    /// before the already-advanced clock.)
    pub fn run(&mut self, duration: Duration) -> Report {
        let end = SimTime::ZERO + duration;
        self.prime(end);
        if self.cfg.coalesce {
            // Timer coalescing: drain every same-instant event in one
            // queue probe and replay the batch in `(time, seq)` order.
            // Anything a handler pushes at the batch's own instant
            // carries a higher seq than every batch member, so it lands
            // in the *next* batch at the same timestamp — the delivered
            // stream is identical to per-pop operation (DESIGN.md §15).
            let mut rest: Vec<(SimTime, Ev)> = Vec::new();
            while let Some((now, ev)) = self.queue.pop_batch_before(end, &mut rest) {
                self.handle(now, ev, end);
                for (t, e) in rest.drain(..) {
                    self.handle(t, e, end);
                }
            }
        } else {
            // `pop_before` folds the old `peek_time` + `pop` pair into
            // one queue search per event.
            while let Some((now, ev)) = self.queue.pop_before(end) {
                self.handle(now, ev, end);
            }
        }
        self.platform.roll_meters(end);
        // Close the final (possibly partial) measurement interval.
        let tail = end.since(self.last_roll).as_secs_f64();
        if tail > 1e-9 {
            self.snapshot_series(tail);
            self.last_roll = end;
        }
        self.build_report(duration)
    }

    fn prime(&mut self, end: SimTime) {
        self.run_end = end;
        let n_nfs = self.platform.nfs.len();
        self.watchdog = vec![(0, 0); n_nfs];
        let n_chains = self.platform.chains.count();
        self.bp = Backpressure::new(self.cfg.nfvnice.bp, n_nfs, n_chains);
        self.load = LoadMonitor::new(self.cfg.nfvnice.load, n_nfs);
        self.ecn = EcnMarker::new(
            self.cfg.nfvnice.ecn_cfg,
            self.platform
                .nfs
                .iter()
                .map(|nf| nf.rx.capacity())
                .collect(),
        );
        // Hand every subsystem the shared trace handle; recording is
        // observation only and never feeds back into any decision, so the
        // event-trace digest is unchanged whether or not it is on.
        self.bp.set_trace(self.trace.clone());
        self.platform.trace = self.trace.clone();
        self.platform.sched.set_trace(self.trace.clone());
        self.metrics.init(
            self.platform.nfs.iter().map(|nf| nf.spec.name.as_str()),
            n_chains,
        );
        // The *deployed* NF population is final now: carve it into
        // per-core domains. (Elastic scale-out may still append replicas
        // mid-run; every per-NF structure sized here grows in lockstep
        // via `spawn_replica`.)
        self.domains = CoreDomain::build_all(&self.platform);
        self.elastic_busy_snapshot = vec![Duration::ZERO; self.domains.len()];
        self.elastic_busy_delta = vec![Duration::ZERO; self.domains.len()];
        self.throttle_streak = vec![0; n_nfs];
        self.idle_streak = vec![0; n_nfs];
        if matches!(self.cfg.platform.policy, Policy::Slo) {
            self.derive_slo_deadlines();
        }
        self.flow_bytes_snapshot = vec![0; self.platform.stats.flows.len()];
        self.series.cpu_pct = vec![Vec::new(); n_nfs];
        self.series.flow_mbps = vec![Vec::new(); self.platform.stats.flows.len()];

        let q = &mut self.queue;
        q.push(SimTime::ZERO + self.cfg.traffic_poll, Ev::Traffic);
        q.push(SimTime::ZERO + self.cfg.rx_poll, Ev::RxPoll);
        q.push(SimTime::ZERO + self.cfg.tx_poll, Ev::TxPoll);
        q.push(SimTime::ZERO + self.cfg.wakeup_period, Ev::Wakeup);
        q.push(
            SimTime::ZERO + self.cfg.nfvnice.load.sample_period,
            Ev::Monitor,
        );
        q.push(SimTime::ZERO + Duration::from_secs(1), Ev::StatsRoll);
        let actions = std::mem::take(&mut self.actions);
        for (idx, (t, _)) in actions.iter().enumerate() {
            if *t <= end {
                q.push(*t, Ev::Action { idx });
            }
        }
        self.actions = actions;
        for (idx, f) in self.cfg.faults.events.iter().enumerate() {
            if f.at <= end {
                q.push(f.at, Ev::Fault { idx });
            }
        }
        // Initial TCP window.
        for i in 0..self.tcp.len() {
            self.pump_tcp(i, SimTime::ZERO);
        }
    }

    /// Convert per-chain latency budgets into per-task relative
    /// deadlines for [`Policy::Slo`]: each chain's budget is split across
    /// its NFs proportionally to mean per-packet cost, and an NF serving
    /// several budgeted chains keeps the tightest share. Unbudgeted NFs
    /// stay at [`nfv_sched::SLO_DEFAULT_BUDGET`], loose enough that any
    /// budgeted chain outranks them.
    fn derive_slo_deadlines(&mut self) {
        let mut budgets: Vec<Option<Duration>> = vec![None; self.platform.nfs.len()];
        for (&chain, &budget) in &self.chain_budgets {
            let path = self.platform.chains.path(chain);
            let total: u64 = path
                .iter()
                .map(|nf| self.platform.nfs[nf.index()].spec.cost.mean_cycles())
                .sum();
            for nf in path {
                let cost = self.platform.nfs[nf.index()].spec.cost.mean_cycles();
                // Round up so the shares never sum below the budget's
                // granularity floor (a zero share would mean an
                // always-expired deadline).
                let share_ns = (budget.as_nanos() * cost).div_ceil(total.max(1));
                let share = Duration::from_nanos(share_ns);
                let slot = &mut budgets[nf.index()];
                *slot = Some(slot.map_or(share, |prev| prev.min(share)));
            }
        }
        for (idx, b) in budgets.iter().enumerate() {
            if let Some(budget) = *b {
                let task = self.platform.nfs[idx].task;
                self.platform.sched.set_task_budget(task, budget);
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev, end: SimTime) {
        self.sanitizer.on_event(now, ev_tag(&ev));
        match ev {
            Ev::Traffic => {
                self.do_traffic(now);
                self.reschedule(now, self.cfg.traffic_poll, end, Ev::Traffic);
            }
            Ev::RxPoll => {
                // Idle skip-ahead (DESIGN.md §15): each elided body is a
                // *proven* strict no-op — the event is still popped,
                // digested and rescheduled, so the stream is unchanged.
                // Empty NIC: `do_rx` would classify, admit and dispatch
                // nothing.
                if self.cfg.skip_ahead && self.platform.nic.rx_pending() == 0 {
                    self.skipped_ticks += 1;
                } else {
                    self.do_rx(now);
                }
                self.reschedule(now, self.cfg.rx_poll, end, Ev::RxPoll);
            }
            Ev::TxPoll => {
                // No live packet anywhere: no outbox to drain, and no
                // TxFull NF to wake (a TxFull block implies a live
                // outbox entry, hence `in_use > 0`).
                if self.cfg.skip_ahead && self.platform.mempool.in_use() == 0 {
                    self.skipped_ticks += 1;
                } else {
                    self.do_tx(now);
                }
                self.reschedule(now, self.cfg.tx_poll, end, Ev::TxPoll);
            }
            Ev::Wakeup => {
                // Every ring is empty (no live packets) and backpressure
                // is in its ground state: the watermark scan (`Watch` +
                // qlen 0 can neither transition nor mark) and the
                // wake/yield scan (pending is 0 everywhere, nothing
                // suppressed) are both strict no-ops. Gated off while the
                // hysteresis audit is live — a skipped scan would shift a
                // state's first-observation time and change the measured
                // dwell (`Sanitizer::wants_hysteresis`).
                if self.cfg.skip_ahead
                    && self.platform.mempool.in_use() == 0
                    && (!self.cfg.nfvnice.backpressure || self.bp.quiescent())
                    && !self.sanitizer.wants_hysteresis()
                {
                    self.skipped_ticks += 1;
                } else {
                    self.do_wakeup(now);
                }
                self.reschedule(now, self.cfg.wakeup_period, end, Ev::Wakeup);
            }
            Ev::Monitor => {
                self.do_monitor(now);
                self.reschedule(now, self.cfg.nfvnice.load.sample_period, end, Ev::Monitor);
            }
            Ev::StatsRoll => {
                self.platform.roll_meters(now);
                self.snapshot_series(now.since(self.last_roll).as_secs_f64());
                self.last_roll = now;
                self.reschedule(now, Duration::from_secs(1), end, Ev::StatsRoll);
            }
            Ev::CoreRun { core } => self.do_core_run(core, now),
            Ev::BatchDone { core } => self.do_batch_done(core, now),
            Ev::IoComplete { nf } => self.do_io_complete(nf, now),
            Ev::TcpFeedback { src, fb } => {
                self.tcp[src].on_feedback(fb, now);
                self.pump_tcp(src, now);
            }
            Ev::Action { idx } => {
                let action = self.actions[idx].1.clone();
                match action {
                    Action::SetCost(nf, cost) => {
                        self.platform.nfs[nf.index()].spec.cost = cost;
                    }
                }
            }
            Ev::Fault { idx } => {
                let fault = self.cfg.faults.events[idx];
                self.apply_fault(fault, now);
            }
            Ev::NfRespawn { nf } => self.do_respawn(nf, now),
            Ev::SlowdownEnd { nf } => {
                if self.platform.nfs[nf.index()].cost_factor == 1 {
                    // A crash already reset the factor mid-slowdown; the
                    // timer fires as a stale no-op (lazy invalidation).
                    self.stale_pops += 1;
                }
                self.platform.nfs[nf.index()].cost_factor = 1;
            }
        }
        // Invariant surfacing for the platform's non-panicking accounting:
        // a dequeue from a ring whose chain had no pending count is a real
        // bug, reported here instead of a mid-sim panic.
        if self.platform.stats.pending_desync > self.seen_desync {
            let fresh = self.platform.stats.pending_desync - self.seen_desync;
            self.seen_desync = self.platform.stats.pending_desync;
            self.sanitizer.record(
                Severity::Error,
                "pending-accounting",
                now,
                // nfv-lint: allow(hot-alloc) -- invariant-violation path only
                format!("{fresh} dequeue(s) from a ring whose chain had no pending count"),
            );
        }
        if self.sanitizer.wants_conservation() {
            let ledger = invariants::conservation_ledger(&self.platform);
            self.sanitizer.check_conservation(
                now,
                ledger.classified,
                ledger.delivered,
                ledger.dropped,
                ledger.in_flight,
            );
            if !self.platform.packets_accounted() {
                // nfv-lint: allow(hot-alloc) -- invariant-violation path only
                let detail = format!(
                    "mempool in-use ({}) disagrees with ring/outbox/batch occupancy",
                    self.platform.mempool.in_use()
                );
                self.sanitizer
                    .record(Severity::Error, "conservation", now, detail);
            }
        }
    }

    fn reschedule(&mut self, now: SimTime, period: Duration, end: SimTime, ev: Ev) {
        let next = now + period;
        if next <= end {
            self.queue.push(next, ev);
        }
    }
}
