//! The elastic scaling controller: scale-out, cross-core migration, and
//! scale-in decisions, run on the monitor tick (no new event variants —
//! like weight updates and flow aging, elasticity is manager work).
//!
//! Policy lives in [`crate::elastic`] (the config and its cost gates);
//! mechanism lives in the platform (`add_replica`, `migrate_nf`,
//! `retire_replica`). This module is the glue: it watches deterministic
//! signals (backpressure state, per-core scheduler busy time, the load
//! estimator), applies the gates, and on every topology change grows or
//! resets the engine-side per-NF state exactly the way the fault path
//! does — ending with an immediate share recompute on every affected
//! domain so no NF runs on a stale weight until the next weight tick.
//!
//! At most one action fires per check, followed by a cooldown: shares,
//! estimators and the watermark machine get to settle before the
//! controller judges the new layout.

use super::Simulation;
use crate::backpressure::BpState;
use nfv_des::{Duration, SimTime};
use nfv_pkt::NfId;
use nfv_platform::BlockReason;

impl Simulation {
    /// One controller check: refresh the streak counters, then try (in
    /// priority order) scale-out, migration, scale-in. Called from
    /// `do_monitor` every `check_period_ticks` monitor ticks when any
    /// elastic direction is enabled.
    pub(super) fn run_elastic(&mut self, now: SimTime) {
        self.elastic_observe();
        if self.elastic_cooldown > 0 {
            self.elastic_cooldown -= 1;
            return;
        }
        let cfg = self.cfg.elastic;
        let acted = (cfg.scale_out && self.try_scale_out(now))
            || (cfg.migration && self.try_migrate(now))
            || (cfg.scale_in && self.try_scale_in(now));
        if acted {
            self.elastic_cooldown = cfg.cooldown_checks;
        }
    }

    /// Refresh the deterministic inputs: per-core busy time over the last
    /// check period, per-base-NF throttle streaks (scale-out dwell), and
    /// per-replica idle streaks (scale-in hysteresis).
    fn elastic_observe(&mut self) {
        let cfg = self.cfg.elastic;
        for core in 0..self.domains.len() {
            let busy = self.platform.sched.core_busy(core);
            self.elastic_busy_delta[core] = busy.saturating_sub(self.elastic_busy_snapshot[core]);
            self.elastic_busy_snapshot[core] = busy;
        }
        debug_assert_eq!(self.throttle_streak.len(), self.platform.nfs.len());
        for idx in 0..self.throttle_streak.len() {
            let id = NfId(idx as u32);
            let nf = &self.platform.nfs[idx];
            match nf.replica_of {
                // Dwell is judged at the base NF: replicas share its flows
                // and its chain placement, so the base's throttle state is
                // the group's demand signal.
                None => {
                    let throttled = nf.is_up() && matches!(self.bp.state(id), BpState::Throttle);
                    self.throttle_streak[idx] = if throttled {
                        self.throttle_streak[idx] + 1
                    } else {
                        0
                    };
                }
                Some(base) => {
                    let lam_r = self.load.arrival_rate_pps(idx);
                    let lam_b = self.load.arrival_rate_pps(base.index());
                    // Idle: drained, and arrivals fell below the configured
                    // fraction of the base's rate — with a 1 pps absolute
                    // floor so a fully quiesced pair still converges.
                    let idle = nf.is_up()
                        && nf.pending() == 0
                        && lam_r * 100.0 < (lam_b * f64::from(cfg.idle_load_pct)).max(100.0);
                    self.idle_streak[idx] = if idle { self.idle_streak[idx] + 1 } else { 0 };
                }
            }
        }
    }

    /// Scale-out: the lowest-id base NF that has stayed an active
    /// bottleneck past the dwell (and past the deploy cost) gets a
    /// replica on the least-loaded *other* core. Flow-consistent
    /// sharding is the platform's job ([`nfv_platform::Platform::add_replica`]).
    fn try_scale_out(&mut self, now: SimTime) -> bool {
        let cfg = self.cfg.elastic;
        if self.domains.len() < 2 {
            return false; // a same-core replica adds no capacity
        }
        for idx in 0..self.platform.nfs.len() {
            let id = NfId(idx as u32);
            if self.platform.nfs[idx].replica_of.is_some() || !self.platform.nfs[idx].is_up() {
                continue;
            }
            if !cfg.deploy_worthwhile(self.throttle_streak[idx]) {
                continue;
            }
            if self.platform.replica_group(id).len() >= cfg.max_replicas as usize {
                continue;
            }
            let home = self.platform.core_of(id);
            let Some(core) = self.quietest_core_except(home) else {
                continue;
            };
            self.spawn_replica(id, core, now);
            self.throttle_streak[idx] = 0; // re-arm the dwell for the next replica
            return true;
        }
        false
    }

    /// Least-busy core over the last check period, excluding `except`.
    /// Ties break to the lowest core id (deterministic).
    fn quietest_core_except(&self, except: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for core in 0..self.elastic_busy_delta.len() {
            if core == except {
                continue;
            }
            match best {
                Some(b) if self.elastic_busy_delta[core] >= self.elastic_busy_delta[b] => {}
                _ => best = Some(core),
            }
        }
        best
    }

    /// Deploy a replica of `base` on `core` and grow every engine-side
    /// per-NF structure in lockstep with the platform's NF vector — the
    /// mirror image of what `prime` sizes up front.
    fn spawn_replica(&mut self, base: NfId, core: usize, now: SimTime) {
        let replica = self.platform.add_replica(base, core, now);
        let idx = replica.index();
        debug_assert_eq!(idx, self.platform.nfs.len() - 1);
        self.bp.grow();
        self.load.grow();
        self.ecn.grow(self.platform.nfs[idx].rx.capacity());
        self.watchdog.push((0, 0));
        self.throttle_streak.push(0);
        self.idle_streak.push(0);
        // nfv-lint: allow(hot-alloc) -- one-time growth per scale-out action, not per packet
        self.series.cpu_pct.push(Vec::new());
        self.metrics
            .add_nf_series(&self.platform.nfs[idx].spec.name);
        // A fresh NF id is the highest yet, so pushing keeps the domain
        // roster in deployment order.
        self.domains[core].nfs.push(idx);
        self.domains[core].cpu_snapshot.push(Duration::ZERO);
        self.recompute_domain_shares(core, now);
        self.scale_outs += 1;
    }

    /// Migration: if the busiest core is saturated and hosts at least two
    /// live NFs, move its cheapest parkable NF to the quietest core —
    /// provided the spread gate says the gap is worth the move. A Running
    /// candidate defers the whole decision to the next check (park never
    /// preempts), keeping the controller deterministic without yanking a
    /// task mid-batch.
    fn try_migrate(&mut self, now: SimTime) -> bool {
        let cfg = self.cfg.elastic;
        let ncores = self.domains.len();
        if ncores < 2 {
            return false;
        }
        let period_ns = self.cfg.nfvnice.load.sample_period.as_nanos()
            * u64::from(cfg.check_period_ticks.max(1));
        let mut hot = 0;
        for core in 1..ncores {
            if self.elastic_busy_delta[core] > self.elastic_busy_delta[hot] {
                hot = core;
            }
        }
        let hot_ns = self.elastic_busy_delta[hot].as_nanos();
        // Saturation, compared multiplicatively (no truncating division).
        if hot_ns * 100 < period_ns * u64::from(cfg.saturation_pct) {
            return false;
        }
        let Some(quiet) = self.quietest_core_except(hot) else {
            return false;
        };
        if !cfg.spread_worthwhile(hot_ns, self.elastic_busy_delta[quiet].as_nanos()) {
            return false;
        }
        let live_on_hot = self.domains[hot]
            .nfs
            .iter()
            .filter(|&&i| self.platform.nfs[i].is_up())
            .count();
        if live_on_hot < 2 {
            return false; // a lone NF's load moves with it: nothing to spread
        }
        // Cheapest parkable candidate: lowest estimator load, ties to the
        // lowest NF id. Running tasks and NFs mid-I/O or TX-blocked are
        // skipped — their block reason must not be overwritten.
        let mut pick: Option<(usize, f64)> = None;
        for slot in 0..self.domains[hot].nfs.len() {
            let i = self.domains[hot].nfs[slot];
            let nf = &self.platform.nfs[i];
            if !nf.is_up() {
                continue;
            }
            if self.platform.sched.current(hot) == Some(nf.task) {
                continue;
            }
            if !matches!(
                nf.blocked,
                None | Some(BlockReason::EmptyRx) | Some(BlockReason::Backpressure)
            ) {
                continue;
            }
            let load = self.load.load(i);
            if pick.is_none_or(|(_, best)| load < best) {
                pick = Some((i, load));
            }
        }
        let Some((idx, _)) = pick else {
            return false;
        };
        let nf = NfId(idx as u32);
        self.platform.migrate_nf(nf, quiet, now);
        // Same policy-state reset as kill/respawn: marks, estimator
        // history and watermark state are per-placement artifacts; the
        // new core re-derives them from live signals within a few ticks.
        self.bp.clear_nf(now, nf);
        self.load.reset(idx, self.platform.nfs[idx].arrivals);
        self.ecn.reset(idx);
        self.watchdog[idx] = (self.platform.nfs[idx].processed, 0);
        self.move_domain(idx, hot, quiet);
        self.recompute_domain_shares(hot, now);
        self.recompute_domain_shares(quiet, now);
        self.migrations += 1;
        true
    }

    /// Move NF `idx` between domain rosters, carrying its CPU-time
    /// snapshot (cumulative per task, so the per-second series stays
    /// correct across the move) and keeping both rosters in id order.
    fn move_domain(&mut self, idx: usize, from: usize, to: usize) {
        let slot = self.domains[from]
            .nfs
            .iter()
            .position(|&i| i == idx)
            .expect("migrating NF not in its source domain");
        self.domains[from].nfs.remove(slot);
        let snap = self.domains[from].cpu_snapshot.remove(slot);
        let at = self.domains[to]
            .nfs
            .iter()
            .position(|&i| i > idx)
            .unwrap_or(self.domains[to].nfs.len());
        self.domains[to].nfs.insert(at, idx);
        self.domains[to].cpu_snapshot.insert(at, snap);
    }

    /// Scale-in: retire the lowest-id replica that has been idle past the
    /// hysteresis floor and is fully drained and off-CPU. Its domain slot
    /// stays (dead NFs keep their roster entry, as after a crash); only
    /// the shares are recomputed immediately.
    fn try_scale_in(&mut self, now: SimTime) -> bool {
        let cfg = self.cfg.elastic;
        for idx in 0..self.platform.nfs.len() {
            let id = NfId(idx as u32);
            let nf = &self.platform.nfs[idx];
            if nf.replica_of.is_none() || !nf.is_up() {
                continue;
            }
            if !cfg.retire_worthwhile(self.idle_streak[idx]) {
                continue;
            }
            let core = nf.spec.core;
            if self.platform.sched.current(core) == Some(nf.task) {
                continue; // on CPU right now: next check
            }
            if nf.pending() > 0
                || !nf.tx.is_empty()
                || !nf.outbox.is_empty()
                || !nf.in_progress.is_empty()
            {
                continue; // not drained
            }
            // Marks first: retire parks the task for good, so any
            // watermark state it holds must not outlive it (the same
            // rule as `kill_nf`, which a dead replica never revisits).
            self.bp.clear_nf(now, id);
            self.platform.retire_replica(id, now);
            self.load.reset(idx, self.platform.nfs[idx].arrivals);
            self.ecn.reset(idx);
            self.watchdog[idx] = (self.platform.nfs[idx].processed, 0);
            self.idle_streak[idx] = 0;
            self.recompute_domain_shares(core, now);
            self.scale_ins += 1;
            return true;
        }
        false
    }
}
