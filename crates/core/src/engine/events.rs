//! The engine's event vocabulary: the `Ev` enum every manager tick and
//! batch boundary is scheduled as, its sanitizer tag encoding, and the
//! mid-run configuration [`Action`]s.

use nfv_pkt::NfId;
use nfv_platform::CostModel;
use nfv_traffic::Feedback;

/// A configuration change applied mid-run (Fig 15a changes an NF's cost at
/// t = 31 s and back at t = 60 s).
#[derive(Debug, Clone)]
pub enum Action {
    /// Replace an NF's cost model.
    SetCost(NfId, CostModel),
}

#[derive(Debug, Clone)]
pub(crate) enum Ev {
    Traffic,
    RxPoll,
    TxPoll,
    Wakeup,
    Monitor,
    StatsRoll,
    CoreRun { core: usize },
    BatchDone { core: usize },
    IoComplete { nf: NfId },
    TcpFeedback { src: usize, fb: Feedback },
    Action { idx: usize },
    Fault { idx: usize },
    NfRespawn { nf: NfId },
    SlowdownEnd { nf: NfId },
}

/// A stable encoding of an event for the sanitizer's trace digest:
/// variant discriminant in the high byte, payload below. Any pure
/// function of the event works; this one keeps distinct events distinct
/// for every payload the engine actually produces.
pub(crate) fn ev_tag(ev: &Ev) -> u64 {
    const SHIFT: u32 = 56;
    match ev {
        Ev::Traffic => 1 << SHIFT,
        Ev::RxPoll => 2 << SHIFT,
        Ev::TxPoll => 3 << SHIFT,
        Ev::Wakeup => 4 << SHIFT,
        Ev::Monitor => 5 << SHIFT,
        Ev::StatsRoll => 6 << SHIFT,
        Ev::CoreRun { core } => (7 << SHIFT) | *core as u64,
        Ev::BatchDone { core } => (8 << SHIFT) | *core as u64,
        Ev::IoComplete { nf } => (9 << SHIFT) | nf.index() as u64,
        Ev::TcpFeedback { src, fb } => {
            let (kind, seq) = match fb {
                Feedback::Delivered { seq, ce } => (if *ce { 1u64 } else { 0 }, *seq),
                Feedback::Dropped { seq } => (2, *seq),
            };
            (10 << SHIFT) | (kind << 48) | ((*src as u64 & 0xff) << 40) | (seq & 0xff_ffff_ffff)
        }
        Ev::Action { idx } => (11 << SHIFT) | *idx as u64,
        Ev::Fault { idx } => (12 << SHIFT) | *idx as u64,
        Ev::NfRespawn { nf } => (13 << SHIFT) | nf.index() as u64,
        Ev::SlowdownEnd { nf } => (14 << SHIFT) | nf.index() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct_across_variants() {
        let evs = [
            Ev::Traffic,
            Ev::RxPoll,
            Ev::TxPoll,
            Ev::Wakeup,
            Ev::Monitor,
            Ev::StatsRoll,
            Ev::CoreRun { core: 0 },
            Ev::BatchDone { core: 0 },
            Ev::IoComplete { nf: NfId(0) },
            Ev::TcpFeedback {
                src: 0,
                fb: Feedback::Dropped { seq: 0 },
            },
            Ev::Action { idx: 0 },
            Ev::Fault { idx: 0 },
            Ev::NfRespawn { nf: NfId(0) },
            Ev::SlowdownEnd { nf: NfId(0) },
        ];
        let mut tags: Vec<u64> = evs.iter().map(ev_tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), evs.len());
    }

    #[test]
    fn payload_reaches_the_tag() {
        assert_ne!(
            ev_tag(&Ev::CoreRun { core: 0 }),
            ev_tag(&Ev::CoreRun { core: 1 })
        );
        assert_ne!(
            ev_tag(&Ev::TcpFeedback {
                src: 0,
                fb: Feedback::Delivered { seq: 9, ce: false },
            }),
            ev_tag(&Ev::TcpFeedback {
                src: 0,
                fb: Feedback::Delivered { seq: 9, ce: true },
            })
        );
    }
}
