//! The manager-thread ticks: traffic generation, RX classification and
//! admission, TX draining, the wakeup thread's watermark evaluation and
//! wake/yield classification, and the monitor's load sampling and cgroup
//! weight updates. Each runs as a periodic event on a dedicated
//! (unmodeled) core, as in the paper's deployment where the NF Manager's
//! threads are pinned away from NF cores.

use super::events::Ev;
use super::Simulation;
use crate::backpressure::BpState;
use crate::load::compute_shares;
use nfv_des::{Duration, SimTime};
use nfv_obs::{DropCause, TraceKind, NO_ID};
use nfv_pkt::{ChainId, FlowId, NfId};
use nfv_traffic::Feedback;

impl Simulation {
    pub(super) fn do_traffic(&mut self, now: SimTime) {
        let mut frames = std::mem::take(&mut self.scratch_frames);
        frames.clear();
        // Rotate the source order each poll: with a fixed order, the first
        // flow's burst would systematically win the last ring slots when a
        // shared NF's queue hovers near full, starving later flows.
        let n = self.udp.len();
        if n > 0 {
            self.traffic_rotor = (self.traffic_rotor + 1) % n;
            for i in 0..n {
                let idx = (self.traffic_rotor + i) % n;
                self.udp[idx].emit(now, self.cfg.traffic_poll, &mut self.rng, &mut frames);
            }
        }
        // Sweep sources (scenario traffic over wildcard rules) emit after
        // the pinned flows: their tuples churn the flow table, so they
        // lose the NIC-tail lottery first under overload, keeping the
        // pinned flows' behavior comparable with sweep-free runs.
        for s in &mut self.sweeps {
            s.emit(now, self.cfg.traffic_poll, &mut self.rng, &mut frames);
        }
        // UDP is non-responsive: NIC overflow is silent loss. Overflow
        // always hits the burst's tail, so the bulk path traces the same
        // drops in the same order as a per-frame loop would.
        let dropped = self.platform.nic.deliver_burst(&mut frames);
        for _ in 0..dropped {
            self.trace_nic_overflow(now);
        }
        self.scratch_frames = frames;
    }

    fn trace_nic_overflow(&self, now: SimTime) {
        // Classification has not happened yet, so flow/chain are unknown.
        self.trace.record(
            now,
            TraceKind::PacketDrop {
                cause: DropCause::NicOverflow,
                flow: NO_ID,
                chain: NO_ID,
                nf: NO_ID,
            },
        );
    }

    pub(super) fn pump_tcp(&mut self, src: usize, now: SimTime) {
        let mut frames = std::mem::take(&mut self.scratch_frames);
        frames.clear();
        self.tcp[src].pump(now, &mut frames);
        let rtt = self.tcp[src].rtt;
        for f in frames.drain(..) {
            if !self.platform.nic.deliver(f) {
                self.trace_nic_overflow(now);
                // Hardware drop: the sender finds out a round trip later.
                self.queue.push(
                    now + rtt,
                    Ev::TcpFeedback {
                        src,
                        fb: Feedback::Dropped { seq: f.seq },
                    },
                );
            }
        }
        self.scratch_frames = frames;
    }

    pub(super) fn do_rx(&mut self, now: SimTime) {
        let Simulation {
            platform,
            bp,
            cfg,
            scratch_tcp,
            ..
        } = self;
        scratch_tcp.clear();
        // O(1) whole-poll gate: with zero marks anywhere (the common
        // steady state) every frame admits, so skip the per-frame
        // throttler walk entirely.
        let shed_possible = cfg.nfvnice.backpressure && bp.any_marks();
        // Shed only when a throttling instance lies on the flow's resolved
        // path (`on_path` is the platform's replica-sharding resolver) —
        // without replicas every throttler is on every path and this is
        // exactly `is_throttled(chain)`.
        // nfv-lint: allow(layering) -- `AdmitFn`'s resolver argument is a plain callback, not a policy/mechanism trait object
        let mut admit = |chain: ChainId, _flow: FlowId, on_path: &mut dyn FnMut(NfId) -> bool| {
            !shed_possible || !bp.throttlers(chain).any(&mut *on_path)
        };
        platform.rx_poll(now, &mut admit, scratch_tcp);
        self.dispatch_tcp_events(now);
    }

    pub(super) fn do_tx(&mut self, now: SimTime) {
        let Simulation {
            platform,
            ecn,
            cfg,
            scratch_tcp,
            scratch_woken,
            ..
        } = self;
        scratch_tcp.clear();
        scratch_woken.clear();
        let ecn_on = cfg.nfvnice.ecn;
        let mut mark = |nf: NfId| {
            if ecn_on && ecn.should_mark(nf.index()) {
                ecn.note_mark();
                true
            } else {
                false
            }
        };
        platform.tx_drain(now, &mut mark, scratch_tcp, scratch_woken);
        let woken = std::mem::take(&mut self.scratch_woken);
        for nf in &woken {
            if self.platform.wake_nf(*nf, now) {
                self.kick(self.platform.core_of(*nf), now);
            }
        }
        self.scratch_woken = woken;
        self.dispatch_tcp_events(now);
    }

    pub(super) fn dispatch_tcp_events(&mut self, now: SimTime) {
        let events = std::mem::take(&mut self.scratch_tcp);
        for ev in &events {
            let Some(&src) = self.tcp_by_flow.get(&ev.flow) else {
                continue;
            };
            let rtt = self.tcp[src].rtt;
            let fb = match ev.kind {
                nfv_platform::TcpEventKind::Delivered { ce } => {
                    Feedback::Delivered { seq: ev.seq, ce }
                }
                nfv_platform::TcpEventKind::Dropped => Feedback::Dropped { seq: ev.seq },
            };
            self.queue.push(now + rtt, Ev::TcpFeedback { src, fb });
        }
        self.scratch_tcp = events;
    }

    pub(super) fn do_wakeup(&mut self, now: SimTime) {
        let bp_on = self.cfg.nfvnice.backpressure;
        if bp_on {
            // Control half of backpressure: run each NF through the
            // watermark state machine (detection happened implicitly via
            // ring occupancy).
            let Simulation {
                platform,
                bp,
                sanitizer,
                cfg,
                ..
            } = self;
            for idx in 0..platform.nfs.len() {
                let nf = &platform.nfs[idx];
                if !nf.is_up() {
                    continue; // drained at crash; cleared via clear_nf
                }
                let head_age = platform.rx_head_age(NfId(idx as u32), now);
                bp.evaluate(
                    now,
                    NfId(idx as u32),
                    nf.rx.len(),
                    nf.rx.capacity(),
                    head_age,
                    nf.pending_by_chain.keys(),
                );
                // Hysteresis audit: a HIGH↔LOW flip faster than the
                // queuing-time threshold means the watermark gap is not
                // filtering transients.
                let throttled = matches!(bp.state(NfId(idx as u32)), BpState::Throttle);
                sanitizer.note_watermark(idx, now, throttled, cfg.nfvnice.bp.qtime_threshold);
            }
        }
        // Wake / yield classification. `any_marks` short-circuits the
        // per-NF suppression walk when nothing is throttled anywhere
        // (`nf_suppressed` is vacuously false with no throttlers).
        let may_suppress = bp_on && self.bp.any_marks();
        for idx in 0..self.platform.nfs.len() {
            if !self.platform.nfs[idx].is_up() {
                continue; // a dead NF's task stays parked until respawn
            }
            let suppressed = may_suppress && self.nf_suppressed(idx);
            if suppressed {
                self.audit_suppression(idx, now);
            }
            let nf = &mut self.platform.nfs[idx];
            use nfv_platform::BlockReason::*;
            match nf.blocked {
                Some(EmptyRx) | Some(Backpressure) if nf.pending() > 0 && !suppressed => {
                    let id = NfId(idx as u32);
                    self.platform.wake_nf(id, now);
                    self.kick(self.platform.core_of(id), now);
                }
                // Running or runnable: if its whole backlog is doomed
                // (every pending chain has a bottleneck downstream),
                // tell the NF to relinquish the CPU.
                None if suppressed && !nf.yield_flag => {
                    nf.yield_flag = true;
                    self.trace
                        .record(now, TraceKind::NfYield { nf: idx as u32 });
                }
                _ => {}
            }
        }
    }

    /// Sanitizer cross-check of a suppression decision: NF `idx` is about
    /// to be suppressed, so every chain pending at it must have an active
    /// bottleneck *strictly downstream*. If the NF is itself a throttler
    /// of one of those chains with nothing downstream of it, the wakeup
    /// logic just parked the only NF that can drain the congestion.
    fn audit_suppression(&mut self, idx: usize, now: SimTime) {
        if !self.sanitizer.wants_suppression() {
            return;
        }
        // Disjoint field borrows let the sanitizer record inline while
        // `platform` stays borrowed — no scratch Vec on the dispatch path.
        let Simulation {
            platform,
            bp,
            sanitizer,
            ..
        } = self;
        // Replicas never appear on chain paths: judge one by its base
        // NF's placement.
        let me = platform.canonical_of(NfId(idx as u32));
        let nf = &platform.nfs[idx];
        for &c in nf.pending_by_chain.keys() {
            // Judged at the NF's *last* hop — a repeated NF's later hop
            // sits at/after the bottleneck and must drain it.
            let Some(my_pos) = platform.chains.last_position(c, me) else {
                continue;
            };
            let me_throttler = bp.throttlers(c).any(|b| platform.canonical_of(b) == me);
            let downstream = bp.throttlers(c).any(|b| {
                platform
                    .chains
                    .last_position(c, platform.canonical_of(b))
                    .is_some_and(|p| p > my_pos)
            });
            if me_throttler && !downstream {
                sanitizer.note_bottleneck_suppressed(now, idx, c.index());
            }
        }
    }

    /// Is every packet queued at NF `idx` part of a chain with an active
    /// bottleneck *downstream* of this NF? Such work would only feed an
    /// already-overflowing queue, so the NF is suppressed (§3.3: "the
    /// upstream NF will not execute till the downstream NF gets to consume
    /// its receive buffers"). The bottleneck NF itself — and NFs after it —
    /// must keep running so the congestion can drain.
    ///
    /// Positions are compared at the NF's *last* hop on each chain: a
    /// chain that revisits an NF after the bottleneck (`[a, b, a]` with
    /// `b` throttling) needs `a`'s later hop awake to drain `b`'s output;
    /// deciding by `a`'s first hop would park it and deadlock the
    /// throttle. Replica instances are judged by their base NF's
    /// placement, on both sides of the comparison.
    pub(super) fn nf_suppressed(&self, idx: usize) -> bool {
        let nf = &self.platform.nfs[idx];
        if nf.pending_by_chain.is_empty() {
            return false;
        }
        let me = self.platform.canonical_of(NfId(idx as u32));
        nf.pending_by_chain.keys().all(|&c| {
            let Some(my_pos) = self.platform.chains.last_position(c, me) else {
                return false;
            };
            self.bp.throttlers(c).any(|b| {
                self.platform
                    .chains
                    .last_position(c, self.platform.canonical_of(b))
                    .is_some_and(|p| p > my_pos)
            })
        })
    }

    pub(super) fn do_monitor(&mut self, now: SimTime) {
        self.monitor_ticks += 1;
        for idx in 0..self.platform.nfs.len() {
            let nf = &self.platform.nfs[idx];
            if !nf.is_up() {
                continue; // estimator is re-baselined across the outage
            }
            self.load.sample(idx, now, nf.last_ppp, nf.arrivals);
            self.ecn.observe(idx, nf.rx.len());
        }
        self.run_watchdog(now);
        self.age_flow_table();
        self.sample_metrics(now);
        let ticks_per_weight_update = (self.cfg.nfvnice.load.weight_period.as_nanos()
            / self.cfg.nfvnice.load.sample_period.as_nanos())
        .max(1);
        if self.cfg.nfvnice.cgroup_weights
            && self.monitor_ticks.is_multiple_of(ticks_per_weight_update)
        {
            self.update_weights(now);
        }
        // Elastic scaling rides the monitor tick too (no event variants of
        // its own); an inert config never reaches the controller, keeping
        // default runs byte-identical to the pre-elastic engine.
        if self.cfg.elastic.active()
            && self
                .monitor_ticks
                .is_multiple_of(u64::from(self.cfg.elastic.check_period_ticks.max(1)))
        {
            self.run_elastic(now);
        }
    }

    /// Flow aging, driven off the monitor tick: every
    /// [`FlowAging::epoch_ticks`](nfv_pkt::FlowAging) monitor ticks the
    /// table's epoch advances and wildcard-learned flows idle for more
    /// than `idle_epochs` whole epochs are evicted (ids recycled). Off by
    /// default (`idle_epochs == 0`), keeping default runs byte-identical
    /// to the pre-aging engine. Runs before `sample_metrics` so the
    /// tick's `flows_active` column reflects the post-eviction table.
    fn age_flow_table(&mut self) {
        let aging = self.cfg.platform.flow_aging;
        if !aging.enabled()
            || !self
                .monitor_ticks
                .is_multiple_of(u64::from(aging.epoch_ticks.max(1)))
        {
            return;
        }
        let mut evicted = std::mem::take(&mut self.scratch_evicted);
        evicted.clear();
        self.platform.age_flows(aging.idle_epochs, &mut evicted);
        self.flows_evicted += evicted.len() as u64;
        self.scratch_evicted = evicted;
    }

    /// Rate-cost proportional weight assignment, one core domain at a
    /// time.
    fn update_weights(&mut self, now: SimTime) {
        for core in 0..self.domains.len() {
            self.recompute_domain_shares(core, now);
        }
    }

    /// Recompute one core domain's `cpu.shares`: gather its live
    /// `(nf, load, priority)` rows in the domain's scratch buffer and
    /// write the results. Runs on the periodic weight tick for every
    /// domain, and *immediately* on any domain-membership change (kill,
    /// respawn, migration, scale-out/in): without the immediate
    /// recompute, a survivor keeps its departed neighbor's share split —
    /// and a respawned or migrated NF carries its stale weight — until
    /// the next 10 ms weight tick.
    pub(super) fn recompute_domain_shares(&mut self, core: usize, now: SimTime) {
        if !self.cfg.nfvnice.cgroup_weights {
            return;
        }
        // Take only the scratch buffer out (not the whole domain): this
        // runs on fault and elastic paths too, where swapping in a freshly
        // constructed domain would allocate in the dispatch hot path.
        let mut scratch = std::mem::take(&mut self.domains[core].share_scratch);
        scratch.clear();
        for slot in 0..self.domains[core].nfs.len() {
            let i = self.domains[core].nfs[slot];
            if !self.platform.nfs[i].is_up() {
                continue; // parked task: no share of the core to claim
            }
            scratch.push((i, self.load.load(i), self.platform.nfs[i].spec.priority));
        }
        if scratch.len() >= 2 {
            // A lone NF owns its core regardless of weight, so domains
            // with fewer than two live NFs are left untouched.
            for (idx, shares) in compute_shares(&scratch, self.cfg.nfvnice.load.shares_scale) {
                // Each effective sysfs write costs manager-thread CPU
                // time (redundant writes are filtered for free).
                let cost = self.platform.set_nf_shares(NfId(idx as u32), shares);
                if cost > Duration::ZERO {
                    self.mgr_cgroup_time += cost;
                    self.trace.record(
                        now,
                        TraceKind::ShareWrite {
                            nf: idx as u32,
                            shares,
                        },
                    );
                }
            }
        }
        self.domains[core].share_scratch = scratch;
    }

    /// One metrics sample column per monitor tick (no-op when metrics are
    /// off).
    fn sample_metrics(&mut self, now: SimTime) {
        if !self.metrics.is_on() {
            return;
        }
        self.metrics
            .begin_tick(now, self.platform.mempool.in_use() as u64);
        // Deterministic sim state, identical across flow-table index
        // backends — unlike the probe/rehash counters, which stay out of
        // the metrics document (BENCH_timings.json only).
        self.metrics
            .record_flows(self.platform.flow_table.len() as u64, self.flows_evicted);
        for idx in 0..self.platform.nfs.len() {
            let nf = &self.platform.nfs[idx];
            let id = NfId(idx as u32);
            self.metrics.record_nf(
                idx,
                nf.rx.len() as u64,
                matches!(self.bp.state(id), BpState::Throttle),
                self.platform.cgroups.shares(nf.task),
                self.load.arrival_rate_pps(idx),
                self.load.service_time_ns(idx).unwrap_or(0),
            );
        }
        for c in 0..self.platform.chains.count() {
            let chain = ChainId(c as u32);
            let lat = &self.platform.stats.chains[c].latency;
            self.metrics.record_chain(
                c,
                self.bp.is_throttled(chain),
                self.bp.throttlers(chain).count() as u64,
                lat.percentile(99.0).map_or(0, |d| d.as_nanos()),
                lat.percentile(99.9).map_or(0, |d| d.as_nanos()),
            );
        }
    }
}
