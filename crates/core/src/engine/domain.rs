//! Per-core engine state.
//!
//! Everything the event loop keeps *per NF core* lives in one
//! [`CoreDomain`] — the execution flag that serializes `CoreRun` /
//! `BatchDone` events, the roster of NFs homed on the core, and the
//! per-core bookkeeping (CPU-time snapshots, weight-computation scratch)
//! that used to be smeared across core-indexed `Vec`s on `Simulation`.
//! A future sharded engine can hand each domain to its own event loop;
//! today the single loop simply owns `Vec<CoreDomain>`.

use nfv_des::Duration;
use nfv_platform::Platform;

/// All per-core state of the engine. The domain's `id` doubles as its
/// run-queue handle: it is the core index the platform's `OsScheduler`
/// dispatches on.
#[derive(Debug)]
pub(crate) struct CoreDomain {
    /// Core index — the handle passed to `OsScheduler::dispatch` /
    /// `charge_current` / `need_resched` for this domain's run queue.
    pub(crate) id: usize,
    /// A `CoreRun`/`BatchDone` event for this core is in flight. Exactly
    /// one such event may exist per core at a time; `kick` is a no-op
    /// while the flag is set.
    pub(crate) active: bool,
    /// NFs homed on this core, in deployment (NF-id) order. Built at
    /// `prime`; the elastic controller may append scale-out replicas and
    /// move NFs between rosters mid-run (migration), always keeping
    /// id order and the `cpu_snapshot` slots in lockstep.
    pub(crate) nfs: Vec<usize>,
    /// Last-interval CPU-time snapshot per homed NF (parallel to `nfs`),
    /// for the per-second CPU% series.
    pub(crate) cpu_snapshot: Vec<Duration>,
    /// Reusable `(nf, load, priority)` buffer for the monitor's weight
    /// computation — avoids a fresh allocation per core per weight tick.
    pub(crate) share_scratch: Vec<(usize, f64, f64)>,
}

impl CoreDomain {
    /// An empty domain for core `id`.
    pub(crate) fn new(id: usize) -> Self {
        CoreDomain {
            id,
            active: false,
            nfs: Vec::new(),
            cpu_snapshot: Vec::new(),
            share_scratch: Vec::new(),
        }
    }

    /// Build one domain per platform core, each adopting the NFs pinned
    /// to it. Called at `prime`, after every NF has been deployed.
    pub(crate) fn build_all(platform: &Platform) -> Vec<CoreDomain> {
        (0..platform.cfg.nf_cores)
            .map(|core| {
                let mut d = CoreDomain::new(core);
                d.nfs = platform.nfs_on_core(core).map(|nf| nf.index()).collect();
                d.cpu_snapshot = vec![Duration::ZERO; d.nfs.len()];
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_platform::{NfSpec, PlatformConfig};

    #[test]
    fn domains_adopt_their_pinned_nfs_in_id_order() {
        let cfg = PlatformConfig {
            nf_cores: 3,
            ..Default::default()
        };
        let mut p = Platform::new(cfg);
        p.add_nf(NfSpec::new("a", 0, 100));
        p.add_nf(NfSpec::new("b", 2, 100));
        p.add_nf(NfSpec::new("c", 0, 100));
        p.add_nf(NfSpec::new("d", 1, 100));
        let domains = CoreDomain::build_all(&p);
        assert_eq!(domains.len(), 3);
        assert_eq!(domains[0].nfs, vec![0, 2]);
        assert_eq!(domains[1].nfs, vec![3]);
        assert_eq!(domains[2].nfs, vec![1]);
        for d in &domains {
            assert_eq!(d.cpu_snapshot.len(), d.nfs.len());
            assert!(!d.active);
            assert!(d.share_scratch.is_empty());
        }
    }
}
