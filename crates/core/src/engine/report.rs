//! Report assembly: the per-second series snapshots taken on the stats
//! roll, and the end-of-run [`Report`](crate::report::Report) built from
//! platform, scheduler and policy-subsystem counters.

use super::Simulation;
use crate::report::{ChainReport, FlowReport, NfReport, Report};
use nfv_des::Duration;
use nfv_pkt::{ChainId, FlowId, NfId};

impl Simulation {
    /// Close a measurement interval of `span_secs`: append one column to
    /// the per-NF CPU% and per-flow Mbit/s series. CPU-time deltas are
    /// tracked per core domain (each domain snapshots its homed NFs).
    pub(super) fn snapshot_series(&mut self, span_secs: f64) {
        if span_secs <= 0.0 {
            return;
        }
        let mut domains = std::mem::take(&mut self.domains);
        for d in &mut domains {
            for (slot, &idx) in d.nfs.iter().enumerate() {
                let task = self.platform.nfs[idx].task;
                let cpu = self.platform.sched.task(task).cpu_time;
                let delta = cpu.saturating_sub(d.cpu_snapshot[slot]);
                d.cpu_snapshot[slot] = cpu;
                self.series.cpu_pct[idx].push(delta.as_secs_f64() / span_secs * 100.0);
            }
        }
        self.domains = domains;
        // Wildcard classification can add flows mid-run; grow the
        // bookkeeping (their series start at the current interval).
        while self.flow_bytes_snapshot.len() < self.platform.stats.flows.len() {
            self.flow_bytes_snapshot.push(0);
            // nfv-lint: allow(hot-alloc) -- grows once per newly classified flow, not per event
            self.series.flow_mbps.push(Vec::new());
        }
        for f in 0..self.platform.stats.flows.len() {
            let bytes = self.platform.stats.flows[f].delivered_bytes;
            let delta = bytes - self.flow_bytes_snapshot[f];
            self.flow_bytes_snapshot[f] = bytes;
            self.series.flow_mbps[f].push(delta as f64 * 8.0 / span_secs / 1e6);
        }
    }

    pub(super) fn build_report(&mut self, wall: Duration) -> Report {
        let secs = wall.as_secs_f64().max(1e-9);
        let nfs: Vec<NfReport> = (0..self.platform.nfs.len())
            .map(|idx| {
                let nf = &self.platform.nfs[idx];
                let task = self.platform.sched.task(nf.task);
                NfReport {
                    nf: NfId(idx as u32),
                    name: nf.spec.name.clone(),
                    core: nf.spec.core,
                    processed: nf.processed,
                    svc_rate_pps: nf.processed as f64 / secs,
                    wasted_drops: nf.wasted_drops,
                    wasted_rate_pps: nf.wasted_drops as f64 / secs,
                    cpu_time: task.cpu_time,
                    cpu_util: task.cpu_time.as_secs_f64() / secs,
                    cswch_per_sec: task.voluntary_switches as f64 / secs,
                    nvcswch_per_sec: task.involuntary_switches as f64 / secs,
                    avg_sched_latency: task.avg_sched_latency(),
                    final_shares: self.platform.cgroups.shares(nf.task),
                    output_rate_pps: nf.processed.saturating_sub(nf.wasted_drops) as f64 / secs,
                }
            })
            .collect();
        let flows: Vec<FlowReport> = (0..self.platform.stats.flows.len())
            .map(|f| {
                let fs = &self.platform.stats.flows[f];
                FlowReport {
                    flow: FlowId(f as u32),
                    chain: self.flow_chain.get(f).copied().unwrap_or(ChainId(0)),
                    delivered: fs.delivered,
                    delivered_pps: fs.delivered as f64 / secs,
                    mbps: fs.delivered_bytes as f64 * 8.0 / secs / 1e6,
                    dropped: fs.dropped,
                    entry_drops: fs.entry_drops,
                    latency_p50: fs.latency_p50().unwrap_or(Duration::ZERO),
                    latency_p99: fs.latency_p99().unwrap_or(Duration::ZERO),
                }
            })
            .collect();
        let chains: Vec<ChainReport> = self
            .platform
            .chains
            .ids()
            .map(|c| {
                let cs = &self.platform.stats.chains[c.index()];
                ChainReport {
                    chain: c,
                    delivered: cs.delivered,
                    pps: cs.delivered as f64 / secs,
                    entry_drops: cs.entry_drops,
                    latency_p50: cs.latency.median().unwrap_or(Duration::ZERO),
                    latency_p99: cs.latency.percentile(99.0).unwrap_or(Duration::ZERO),
                    latency_p999: cs.latency.percentile(99.9).unwrap_or(Duration::ZERO),
                }
            })
            .collect();
        let total_delivered_pps = flows.iter().map(|f| f.delivered_pps).sum();
        Report {
            wall,
            policy: self.platform.sched.policy().label(),
            variant: self.cfg.nfvnice.label().to_string(),
            nfs,
            flows,
            chains,
            total_delivered_pps,
            nic_overflow: self.platform.nic.rx_overflow_drops,
            entry_drops: self.platform.stats.entry_throttle_drops,
            total_wasted_drops: self.platform.nfs.iter().map(|nf| nf.wasted_drops).sum(),
            cgroup_writes: self.platform.cgroups.writes,
            cgroup_write_time: self.mgr_cgroup_time,
            throttle_events: self.bp.throttle_events,
            ecn_marks: self.ecn.marks,
            nf_crashes: self.crashes,
            nf_restarts: self.restarts,
            nf_stalls_detected: self.stalls_detected,
            nf_down_drops: self.platform.stats.nf_down_drops,
            nf_scale_outs: self.scale_outs,
            nf_migrations: self.migrations,
            nf_scale_ins: self.scale_ins,
            trace_digest: self.sanitizer.digest(),
            stale_pops: self.stale_pops,
            queue: {
                // The queue itself cannot see engine-level body-skips;
                // inject the counter here (timings-only, like the rest
                // of `QueueStats`).
                let mut q = self.queue.stats();
                q.skipped_ticks = self.skipped_ticks;
                q
            },
            flows_active: self.platform.flow_table.len() as u64,
            flows_evicted: self.flows_evicted,
            flow: self.platform.flow_table.stats(),
            series: std::mem::take(&mut self.series),
        }
    }
}
