//! NF execution on the core domains: batch-boundary scheduling. `CoreRun`
//! begins a batch (dequeue + cost computation), `BatchDone` completes it
//! (handler execution, I/O, TX enqueue) and then makes the scheduling
//! decision — continue, preempt, or block — which is exactly the
//! batch-boundary yield/preemption model of `libnf` (§3.2).

use super::events::Ev;
use super::Simulation;
use nfv_des::SimTime;
use nfv_pkt::NfId;
use nfv_platform::BatchPlan;
use nfv_sched::SwitchKind;

impl Simulation {
    /// Start executing on `core` if it is idle and has runnable work.
    /// The domain's `active` flag serializes batch events: exactly one
    /// `CoreRun`/`BatchDone` is in flight per active domain.
    pub(super) fn kick(&mut self, core: usize, now: SimTime) {
        if self.domains[core].active {
            return;
        }
        let rq = self.domains[core].id;
        if let Some((_task, overhead)) = self.platform.sched.dispatch(rq, now) {
            self.domains[core].active = true;
            self.queue.push(now + overhead, Ev::CoreRun { core });
        } else {
            // Nothing runnable: the domain stays parked until a wake.
            debug_assert!(self.platform.sched.core_idle(rq));
        }
    }

    pub(super) fn do_core_run(&mut self, core: usize, now: SimTime) {
        let nf = self
            .platform
            .running_nf(core)
            .expect("CoreRun with no current task");
        // A crash can land between dispatch and this event; the dead
        // task could not be parked off-CPU, so retire it here.
        if !self.platform.nfs[nf.index()].is_up() {
            self.retire_dead(core, now);
            return;
        }
        match self.platform.plan_batch(nf) {
            BatchPlan::Run { duration, .. } => {
                self.queue.push(now + duration, Ev::BatchDone { core });
            }
            BatchPlan::Block(reason) => {
                self.platform.sched.block_current(core, now);
                self.platform.mark_blocked(nf, reason, now);
                self.domains[core].active = false;
                self.kick(core, now);
            }
        }
    }

    /// Pull a dead NF's task off the CPU at a batch boundary: the one
    /// place `crash_nf`'s park cannot reach (the scheduler refuses to
    /// park a `Running` task; the engine owns the in-flight batch event).
    /// The `CoreRun`/`BatchDone` event that got us here was made stale by
    /// the crash — lazy invalidation, accounted explicitly.
    fn retire_dead(&mut self, core: usize, now: SimTime) {
        self.stale_pops += 1;
        self.platform.sched.block_current(core, now);
        self.domains[core].active = false;
        self.kick(core, now);
    }

    pub(super) fn do_batch_done(&mut self, core: usize, now: SimTime) {
        let nf = self
            .platform
            .running_nf(core)
            .expect("BatchDone with no current task");
        // Crashed mid-batch: the batch's packets were already freed by the
        // crash drain, so skip `finish_batch` and retire the task.
        if !self.platform.nfs[nf.index()].is_up() {
            self.retire_dead(core, now);
            return;
        }
        let (dur, _) = self.platform.nfs[nf.index()]
            .current_batch
            .expect("BatchDone without a batch");
        self.platform.sched.charge_current(core, dur);
        let fx = self.platform.finish_batch(nf, now);
        for c in fx.flush_completions {
            self.queue.push(c, Ev::IoComplete { nf });
        }
        if let Some(t) = fx.io_wake_at {
            self.queue.push(t, Ev::IoComplete { nf });
        }
        if let Some(reason) = fx.block {
            self.platform.sched.block_current(core, now);
            self.platform.mark_blocked(nf, reason, now);
            self.domains[core].active = false;
            self.kick(core, now);
        } else if self.platform.sched.need_resched(core, now) {
            self.platform
                .sched
                .requeue_current(core, now, SwitchKind::Involuntary);
            let (_t, ov) = self
                .platform
                .sched
                .dispatch(core, now)
                .expect("resched with nonempty runqueue");
            self.queue.push(now + ov, Ev::CoreRun { core });
        } else {
            self.queue.push(now, Ev::CoreRun { core });
        }
    }

    pub(super) fn do_io_complete(&mut self, nf: NfId, now: SimTime) {
        let out = self.platform.on_io_complete(nf, now);
        if let Some(c) = out.next_completion {
            self.queue.push(c, Ev::IoComplete { nf });
        }
        if out.wake && self.platform.wake_nf(nf, now) {
            self.kick(self.platform.core_of(nf), now);
        }
    }
}
