//! Fault application and failure recovery: the engine half of the
//! deterministic fault-injection subsystem ([`crate::faults`] holds the
//! plan types). Crashes drain the victim's packets and park its task;
//! the recovery policy respawns it after a delay; the liveness watchdog
//! converts detected stalls into crash + restart.

use super::events::Ev;
use super::Simulation;
use crate::faults::{FaultEvent, FaultKind};
use nfv_des::SimTime;
use nfv_obs::TraceKind;
use nfv_pkt::NfId;
use nfv_platform::NfHealth;

impl Simulation {
    pub(super) fn apply_fault(&mut self, fault: FaultEvent, now: SimTime) {
        match fault.kind {
            FaultKind::Crash => self.kill_nf(fault.nf, now),
            FaultKind::Stall => {
                if self.platform.nfs[fault.nf.index()].health == NfHealth::Up {
                    self.platform.stall_nf(fault.nf);
                    // A sleeping NF that starts spinning: put it on CPU so
                    // it burns cycles without progress.
                    if self.platform.wake_nf(fault.nf, now) {
                        self.kick(self.platform.core_of(fault.nf), now);
                    }
                }
            }
            FaultKind::Slowdown { factor, duration } => {
                let nf = &mut self.platform.nfs[fault.nf.index()];
                if nf.health != NfHealth::Down {
                    nf.cost_factor = factor.max(1);
                    let t = now + duration;
                    if t <= self.run_end {
                        self.queue.push(t, Ev::SlowdownEnd { nf: fault.nf });
                    }
                }
            }
        }
    }

    /// Kill `nf` (injected crash or watchdog verdict): drain its packets
    /// back to the mempool, park its task, and clear every piece of
    /// policy state that would otherwise outlive the process. Critically
    /// that includes its backpressure marks — a dead NF never drains
    /// below the LOW watermark, so the chains it throttled would shed at
    /// entry forever.
    pub(super) fn kill_nf(&mut self, nf: NfId, now: SimTime) {
        if self.platform.nfs[nf.index()].health == NfHealth::Down {
            self.stale_pops += 1;
            return; // an injected crash racing the watchdog's verdict
        }
        let Simulation {
            platform,
            scratch_tcp,
            ..
        } = self;
        scratch_tcp.clear();
        platform.crash_nf(nf, now, scratch_tcp);
        self.dispatch_tcp_events(now);
        self.crashes += 1;
        self.bp.clear_nf(now, nf);
        self.load
            .reset(nf.index(), self.platform.nfs[nf.index()].arrivals);
        self.ecn.reset(nf.index());
        self.watchdog[nf.index()] = (self.platform.nfs[nf.index()].processed, 0);
        // Survivors on the core must not keep splitting the core as if
        // the victim still claimed its share: recompute immediately
        // instead of waiting out the weight tick.
        self.recompute_domain_shares(self.platform.core_of(nf), now);
        if self.cfg.faults.recovery {
            let t = now + self.cfg.faults.respawn_delay;
            if t <= self.run_end {
                self.queue.push(t, Ev::NfRespawn { nf });
            }
        }
    }

    /// The recovery policy's respawn: bring the NF back up, blocked on an
    /// empty ring; the wakeup thread re-admits it to the CPU once packets
    /// arrive. Estimator state was already reset at crash time, so the
    /// fresh incarnation's CPU shares are computed from post-restart
    /// samples only.
    pub(super) fn do_respawn(&mut self, nf: NfId, now: SimTime) {
        if self.platform.nfs[nf.index()].health != NfHealth::Down {
            self.stale_pops += 1;
            return;
        }
        self.platform.restart_nf(nf, now);
        self.restarts += 1;
        self.load
            .reset(nf.index(), self.platform.nfs[nf.index()].arrivals);
        self.watchdog[nf.index()] = (self.platform.nfs[nf.index()].processed, 0);
        // The fresh incarnation rejoins its domain with a reset estimator:
        // fold it back into the split now, not at the next weight tick
        // (its neighbors were just re-weighted without it at crash time).
        self.recompute_domain_shares(self.platform.core_of(nf), now);
    }

    /// Manager-side liveness watchdog, run on the monitor tick: a
    /// runnable NF holding pending work whose progress counter has been
    /// frozen for [`stall_ticks`](crate::faults::FaultConfig::stall_ticks)
    /// consecutive ticks is declared hung and crash-restarted. Blocked or
    /// deliberately-yielding NFs are never suspect — only one that should
    /// be making progress and isn't.
    pub(super) fn run_watchdog(&mut self, now: SimTime) {
        let ticks = self.cfg.faults.stall_ticks;
        if ticks == 0 {
            return;
        }
        for idx in 0..self.platform.nfs.len() {
            let nf = &self.platform.nfs[idx];
            if nf.health == NfHealth::Down || nf.blocked.is_some() || nf.yield_flag {
                self.watchdog[idx] = (nf.processed, 0);
                continue;
            }
            let (last, streak) = self.watchdog[idx];
            if nf.processed == last && nf.pending() > 0 {
                if streak + 1 >= ticks {
                    self.stalls_detected += 1;
                    self.trace
                        .record(now, TraceKind::NfStallDetect { nf: idx as u32 });
                    self.kill_nf(NfId(idx as u32), now);
                } else {
                    self.watchdog[idx] = (last, streak + 1);
                }
            } else {
                self.watchdog[idx] = (nf.processed, 0);
            }
        }
    }
}
