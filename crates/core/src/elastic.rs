//! Elastic NF scaling policy: configuration and the deployment cost
//! model.
//!
//! NFVnice's backpressure sheds load when a chain outgrows an NF; elastic
//! scaling *adds capacity* instead: a persistent bottleneck gets a
//! scale-out replica on the least-loaded core (flow-consistent RSS-style
//! sharding keeps per-flow state intact), a saturated core migrates its
//! cheapest NF to a quieter one, and an idle replica is retired once the
//! surge passes. Every decision runs on the monitor tick off deterministic
//! inputs (backpressure state, the load estimator, scheduler busy time),
//! so runs stay byte-reproducible.
//!
//! The direction gates follow the Online-VNF-Scaling formulation: an
//! action is taken only when its modeled benefit (latency/drop cost
//! accumulated while the condition persists, in checker-tick units)
//! exceeds its deployment cost. The dwell requirement doubles as the
//! hysteresis that keeps a transient burst from churning instances.
//!
//! Everything defaults **off**: an inert [`ElasticConfig`] schedules no
//! work and a default-config run is byte-identical to the pre-elastic
//! engine (enforced by the `elastic_off_is_byte_identical` differential
//! test and the CI byte-diff job).

/// Elastic scaling configuration. Inert by default; the three direction
/// switches are independent so experiments can compare scale-out against
/// migration on the same trace.
#[derive(Debug, Clone, Copy)]
pub struct ElasticConfig {
    /// Spawn replicas of persistent bottleneck NFs.
    pub scale_out: bool,
    /// Migrate the cheapest NF off a saturated core.
    pub migration: bool,
    /// Retire idle replicas once the surge passes.
    pub scale_in: bool,
    /// Controller check period, in monitor ticks (1 ms each by default).
    pub check_period_ticks: u32,
    /// Consecutive throttled checks before an NF counts as a *persistent*
    /// bottleneck eligible for scale-out.
    pub dwell_checks: u32,
    /// Maximum live replicas per base NF.
    pub max_replicas: u32,
    /// Deployment cost of one instance action, in checker-tick units of
    /// bottleneck latency cost (the Online-VNF-Scaling trade-off knob).
    pub deploy_cost: f64,
    /// A core whose busy share of the check period is at or above this
    /// percentage counts as saturated (migration source).
    pub saturation_pct: u32,
    /// Migration requires the destination's busy share to undercut the
    /// source's by at least this many percentage points of headroom:
    /// `quiet ≤ hot × (100 − margin) / 100`.
    pub spread_margin_pct: u32,
    /// A replica is idle when its arrival rate falls below this
    /// percentage of its base's (with a 1 pps absolute floor, so a
    /// fully-quiesced pair still counts as idle).
    pub idle_load_pct: u32,
    /// Consecutive idle checks before a replica may be retired.
    pub idle_checks: u32,
    /// Checks to wait after any action before taking another — one
    /// topology change at a time, letting shares and estimators settle.
    pub cooldown_checks: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            scale_out: false,
            migration: false,
            scale_in: false,
            check_period_ticks: 10,
            dwell_checks: 3,
            max_replicas: 1,
            deploy_cost: 2.0,
            saturation_pct: 90,
            spread_margin_pct: 30,
            idle_load_pct: 60,
            idle_checks: 5,
            cooldown_checks: 5,
        }
    }
}

impl ElasticConfig {
    /// Everything on with the default tuning.
    pub fn full() -> Self {
        ElasticConfig {
            scale_out: true,
            migration: true,
            scale_in: true,
            ..ElasticConfig::default()
        }
    }

    /// Is any direction enabled? An inert config schedules nothing and
    /// costs nothing (the byte-identity guarantee).
    pub fn active(&self) -> bool {
        self.scale_out || self.migration || self.scale_in
    }

    /// Scale-out gate: after `streak` consecutive throttled checks, has
    /// the accumulated bottleneck cost (one unit per check) paid for a
    /// deployment? Requires the dwell floor too, so a cheap deploy cost
    /// can never react to a single-check blip.
    pub fn deploy_worthwhile(&self, streak: u32) -> bool {
        streak >= self.dwell_checks && f64::from(streak) > self.deploy_cost
    }

    /// Scale-in gate: an idle replica's keep-cost accumulates one unit
    /// per idle check; retire once it exceeds the (one-time) deployment
    /// cost that a re-spawn would incur if the surge returned.
    pub fn retire_worthwhile(&self, idle_streak: u32) -> bool {
        idle_streak >= self.idle_checks && f64::from(idle_streak) > self.deploy_cost
    }

    /// Is `busy_pct` (a core's busy share of the check period, percent)
    /// saturated enough to be a migration source?
    pub fn saturated(&self, busy_pct: u32) -> bool {
        busy_pct >= self.saturation_pct
    }

    /// Migration gate: moving an NF from a core with `hot_busy` to one
    /// with `quiet_busy` (same units) is worthwhile only when the
    /// destination undercuts the source by the configured margin —
    /// otherwise the latency saved cannot cover the move's cache/reset
    /// cost and the pair would ping-pong.
    pub fn spread_worthwhile(&self, hot_busy: u64, quiet_busy: u64) -> bool {
        hot_busy > 0
            && quiet_busy * 100 <= hot_busy * u64::from(100 - self.spread_margin_pct.min(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let c = ElasticConfig::default();
        assert!(!c.active());
        assert!(ElasticConfig::full().active());
        assert!(ElasticConfig {
            scale_in: true,
            ..ElasticConfig::default()
        }
        .active());
    }

    #[test]
    fn deploy_gate_needs_dwell_and_amortization() {
        let c = ElasticConfig {
            dwell_checks: 3,
            deploy_cost: 2.0,
            ..ElasticConfig::default()
        };
        assert!(!c.deploy_worthwhile(0));
        assert!(!c.deploy_worthwhile(2), "below the dwell floor");
        assert!(c.deploy_worthwhile(3), "3 checks of cost > 2.0 deploy");
        // An expensive deploy needs a longer streak than the dwell floor.
        let pricey = ElasticConfig {
            dwell_checks: 3,
            deploy_cost: 5.0,
            ..ElasticConfig::default()
        };
        assert!(!pricey.deploy_worthwhile(4), "4 units < 5.0 cost");
        assert!(pricey.deploy_worthwhile(6));
    }

    #[test]
    fn retire_gate_mirrors_deploy() {
        let c = ElasticConfig {
            idle_checks: 5,
            deploy_cost: 2.0,
            ..ElasticConfig::default()
        };
        assert!(!c.retire_worthwhile(4));
        assert!(c.retire_worthwhile(5));
    }

    #[test]
    fn spread_gate_requires_margin() {
        let c = ElasticConfig {
            spread_margin_pct: 30,
            ..ElasticConfig::default()
        };
        assert!(c.spread_worthwhile(100, 70), "30-point undercut: worth it");
        assert!(!c.spread_worthwhile(100, 71), "too close: would ping-pong");
        assert!(c.spread_worthwhile(100, 0));
        assert!(!c.spread_worthwhile(0, 0), "idle pair: nothing to spread");
    }

    #[test]
    fn saturation_threshold() {
        let c = ElasticConfig::default();
        assert!(c.saturated(90) && c.saturated(100));
        assert!(!c.saturated(89));
    }
}
