//! ECN marking (§3.3, "Local Optimization and ECN").
//!
//! For responsive flows the manager marks Congestion Experienced on packets
//! entering queues whose *smoothed* occupancy is high: "since ECN works at
//! longer timescales, we monitor queue lengths with an exponentially
//! weighted moving average and use that to trigger marking" (following
//! RFC 3168 / RED-style gateways). The EWMA is fed by the monitor thread
//! once per tick; the marking decision is consulted by the TX threads when
//! moving packets between NFs.

use nfv_des::Ewma;

/// ECN marker configuration.
#[derive(Debug, Clone, Copy)]
pub struct EcnConfig {
    /// EWMA gain numerator (RED's classic 1/16 smoothing).
    pub gain_num: u32,
    /// EWMA gain denominator.
    pub gain_den: u32,
    /// Mark CE when the smoothed occupancy is at or above this percentage
    /// of ring capacity.
    pub mark_pct: u32,
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig {
            gain_num: 1,
            gain_den: 16,
            mark_pct: 25,
        }
    }
}

/// Per-NF smoothed queue state for ECN decisions.
#[derive(Debug)]
pub struct EcnMarker {
    cfg: EcnConfig,
    avg_qlen: Vec<Ewma>,
    capacities: Vec<usize>,
    /// CE marks applied over the run.
    pub marks: u64,
}

impl EcnMarker {
    /// Marker over NFs with the given RX ring capacities.
    pub fn new(cfg: EcnConfig, capacities: Vec<usize>) -> Self {
        EcnMarker {
            avg_qlen: capacities
                .iter()
                .map(|_| Ewma::new(cfg.gain_num, cfg.gain_den))
                .collect(),
            capacities,
            cfg,
            marks: 0,
        }
    }

    /// Monitor-tick update of NF `idx`'s instantaneous queue length.
    pub fn observe(&mut self, idx: usize, qlen: usize) {
        self.avg_qlen[idx].observe(qlen as u64);
    }

    /// Should a packet entering NF `idx`'s queue be CE-marked?
    pub fn should_mark(&self, idx: usize) -> bool {
        let avg = self.avg_qlen[idx].value() as usize;
        avg * 100 >= self.capacities[idx] * self.cfg.mark_pct as usize
    }

    /// Record that a mark was applied (bookkeeping for reports).
    pub fn note_mark(&mut self) {
        self.marks += 1;
    }

    /// Smoothed queue length of NF `idx`.
    pub fn avg_qlen(&self, idx: usize) -> u64 {
        self.avg_qlen[idx].value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_marking_on_quiet_queue() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..50 {
            m.observe(0, 5);
        }
        assert!(!m.should_mark(0));
    }

    #[test]
    fn sustained_congestion_marks() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..100 {
            m.observe(0, 80);
        }
        assert!(m.should_mark(0));
        assert!(m.avg_qlen(0) >= 75);
    }

    #[test]
    fn short_burst_does_not_mark() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..200 {
            m.observe(0, 2);
        }
        // a 2-tick spike to full
        m.observe(0, 100);
        m.observe(0, 100);
        assert!(!m.should_mark(0), "avg={}", m.avg_qlen(0));
    }

    #[test]
    fn per_nf_independence() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100, 100]);
        for _ in 0..100 {
            m.observe(0, 90);
            m.observe(1, 1);
        }
        assert!(m.should_mark(0));
        assert!(!m.should_mark(1));
    }
}
