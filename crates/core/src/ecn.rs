//! ECN marking (§3.3, "Local Optimization and ECN").
//!
//! For responsive flows the manager marks Congestion Experienced on packets
//! entering queues whose *smoothed* occupancy is high: "since ECN works at
//! longer timescales, we monitor queue lengths with an exponentially
//! weighted moving average and use that to trigger marking" (following
//! RFC 3168 / RED-style gateways). The EWMA is fed by the monitor thread
//! once per tick; the marking decision is consulted by the TX threads when
//! moving packets between NFs.

use nfv_des::Ewma;

/// ECN marker configuration.
#[derive(Debug, Clone, Copy)]
pub struct EcnConfig {
    /// EWMA gain numerator (RED's classic 1/16 smoothing).
    pub gain_num: u32,
    /// EWMA gain denominator.
    pub gain_den: u32,
    /// Mark CE when the smoothed occupancy is at or above this percentage
    /// of ring capacity.
    pub mark_pct: u32,
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig {
            gain_num: 1,
            gain_den: 16,
            mark_pct: 25,
        }
    }
}

/// Per-NF smoothed queue state for ECN decisions.
#[derive(Debug)]
pub struct EcnMarker {
    cfg: EcnConfig,
    avg_qlen: Vec<Ewma>,
    capacities: Vec<usize>,
    /// CE marks applied over the run.
    pub marks: u64,
}

impl EcnMarker {
    /// Marker over NFs with the given RX ring capacities.
    pub fn new(cfg: EcnConfig, capacities: Vec<usize>) -> Self {
        EcnMarker {
            avg_qlen: capacities
                .iter()
                .map(|_| Ewma::new(cfg.gain_num, cfg.gain_den))
                .collect(),
            capacities,
            cfg,
            marks: 0,
        }
    }

    /// Monitor-tick update of NF `idx`'s instantaneous queue length.
    pub fn observe(&mut self, idx: usize, qlen: usize) {
        self.avg_qlen[idx].observe(qlen as u64);
    }

    /// Should a packet entering NF `idx`'s queue be CE-marked?
    ///
    /// Compared in the EWMA's 2^16 fixed-point domain: truncating the
    /// average to an integer first discards up to a whole packet of
    /// occupancy, which on small rings delays marking onset by a full
    /// packet past the configured threshold.
    pub fn should_mark(&self, idx: usize) -> bool {
        let avg_scaled = self.avg_qlen[idx].value_scaled();
        let threshold_scaled = (self.capacities[idx] as u64) << 16;
        avg_scaled * 100 >= threshold_scaled * self.cfg.mark_pct as u64
    }

    /// Forget NF `idx`'s smoothed queue history (NF restart): the first
    /// post-restart observation re-primes the EWMA from scratch, so a
    /// pre-crash congested average cannot mark packets entering an empty
    /// ring.
    pub fn reset(&mut self, idx: usize) {
        self.avg_qlen[idx] = Ewma::new(self.cfg.gain_num, self.cfg.gain_den);
    }

    /// Append state for an NF deployed mid-run (elastic scale-out
    /// replica) with the given RX ring capacity: an unprimed EWMA, so the
    /// fresh instance's empty ring cannot inherit marking pressure.
    pub fn grow(&mut self, capacity: usize) {
        self.avg_qlen
            .push(Ewma::new(self.cfg.gain_num, self.cfg.gain_den));
        self.capacities.push(capacity);
    }

    /// Record that a mark was applied (bookkeeping for reports).
    pub fn note_mark(&mut self) {
        self.marks += 1;
    }

    /// Smoothed queue length of NF `idx`.
    pub fn avg_qlen(&self, idx: usize) -> u64 {
        self.avg_qlen[idx].value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_marking_on_quiet_queue() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..50 {
            m.observe(0, 5);
        }
        assert!(!m.should_mark(0));
    }

    #[test]
    fn sustained_congestion_marks() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..100 {
            m.observe(0, 80);
        }
        assert!(m.should_mark(0));
        assert!(m.avg_qlen(0) >= 75);
    }

    #[test]
    fn short_burst_does_not_mark() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..200 {
            m.observe(0, 2);
        }
        // a 2-tick spike to full
        m.observe(0, 100);
        m.observe(0, 100);
        assert!(!m.should_mark(0), "avg={}", m.avg_qlen(0));
    }

    #[test]
    fn small_ring_marks_at_threshold_without_truncation_lag() {
        // cap 16, mark_pct 30 => threshold avg = 4.8 packets. Sustained
        // occupancy of 5 converges the EWMA to just under 5.0 (integer
        // gain steps stall within 16 scaled units of the target), so the
        // truncated `value()` reads 4 forever. The old integer compare
        // (4*100 >= 16*30 is false) then never marks — onset was a whole
        // packet late, needing sustained qlen 6. The fixed-point compare
        // marks as soon as the smoothed average crosses 4.8.
        let cfg = EcnConfig {
            mark_pct: 30,
            ..EcnConfig::default()
        };
        let mut m = EcnMarker::new(cfg, vec![16]);
        m.observe(0, 0);
        for _ in 0..200 {
            m.observe(0, 5);
        }
        assert_eq!(m.avg_qlen(0), 4, "truncated view sits a packet low");
        assert!(
            m.should_mark(0),
            "sustained occupancy above cap*pct must mark"
        );
    }

    #[test]
    fn small_ring_below_threshold_does_not_mark() {
        // Same small ring: sustained occupancy below the 4.8 threshold
        // must stay unmarked under the fixed-point compare.
        let cfg = EcnConfig {
            mark_pct: 30,
            ..EcnConfig::default()
        };
        let mut m = EcnMarker::new(cfg, vec![16]);
        m.observe(0, 0);
        for _ in 0..200 {
            m.observe(0, 4);
        }
        assert!(!m.should_mark(0));
    }

    #[test]
    fn reset_forgets_congested_history() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100]);
        for _ in 0..100 {
            m.observe(0, 90);
        }
        assert!(m.should_mark(0));
        m.reset(0);
        assert!(!m.should_mark(0), "fresh EWMA starts unprimed at zero");
        m.observe(0, 1);
        assert!(!m.should_mark(0));
    }

    #[test]
    fn per_nf_independence() {
        let mut m = EcnMarker::new(EcnConfig::default(), vec![100, 100]);
        for _ in 0..100 {
            m.observe(0, 90);
            m.observe(1, 1);
        }
        assert!(m.should_mark(0));
        assert!(!m.should_mark(1));
    }
}
