//! # nfvnice — dynamic backpressure and scheduling for NFV service chains
//!
//! A from-scratch Rust reproduction of **NFVnice** (Kulkarni et al.,
//! SIGCOMM 2017): a user-space NF scheduling and service-chain management
//! framework providing rate-cost proportional fairness, chain-aware
//! backpressure with selective early discard, ECN marking for responsive
//! flows, and efficient asynchronous storage I/O — all without kernel
//! modifications, by steering stock OS schedulers (CFS, CFS-batch, RR)
//! through cgroup CPU shares and semaphore-based wakeups.
//!
//! Because the original runs on DPDK + Linux + real NICs, this crate drives
//! a deterministic discrete-event simulation of that whole substrate (see
//! the workspace's `nfv-des`, `nfv-pkt`, `nfv-sched`, `nfv-traffic`,
//! `nfv-io` and `nfv-platform` crates); the NFVnice logic itself — the
//! watermark state machine, the load estimator and weight computation, the
//! wakeup classification, ECN — is implemented here exactly as the paper
//! describes.
//!
//! ## Quickstart
//!
//! ```
//! use nfvnice::{NfSpec, SimConfig, Simulation};
//! use nfv_des::Duration;
//!
//! let mut cfg = SimConfig::default();
//! cfg.platform.nf_cores = 1;
//! let mut sim = Simulation::new(cfg);
//! // A 3-NF chain with heterogeneous costs sharing one core (the paper's
//! // canonical Low/Med/High setup).
//! let low = sim.add_nf(NfSpec::new("low", 0, 120));
//! let med = sim.add_nf(NfSpec::new("med", 0, 270));
//! let high = sim.add_nf(NfSpec::new("high", 0, 550));
//! let chain = sim.add_chain(&[low, med, high]);
//! sim.add_udp(chain, 1_000_000.0, 64);
//! let report = sim.run(Duration::from_millis(50));
//! assert!(report.flows[0].delivered > 0);
//! ```

#![warn(missing_docs)]

pub mod backpressure;
pub mod config;
pub mod ecn;
pub mod elastic;
pub mod engine;
pub mod faults;
pub mod invariants;
pub mod libnf;
pub mod load;
pub mod report;

pub use backpressure::{Backpressure, BackpressureConfig, BpState};
pub use config::{NfvniceConfig, ObsConfig, SimConfig};
pub use ecn::{EcnConfig, EcnMarker};
pub use elastic::ElasticConfig;
pub use engine::{Action, Simulation};
pub use faults::{FaultConfig, FaultEvent, FaultKind};
pub use invariants::{conservation_ledger, packets_conserved, within_pct, ConservationLedger};
pub use load::{compute_shares, LoadConfig, LoadMonitor};
pub use report::{ChainReport, FlowReport, NfReport, Report, Series};

// Re-export the pieces users need to assemble experiments without naming
// every substrate crate.
pub use nfv_des::{
    CpuFreq, Duration, QueueKind, QueueStats, Sanitizer, SanitizerConfig, SimRng, SimTime,
};
pub use nfv_obs::{
    trace_to_csv, trace_to_jsonl, trace_to_jsonl_into, DropCause, MetricsRecorder, SleepReason,
    TraceEvent, TraceKind, TraceSink,
};
pub use nfv_pkt::{
    ChainId, FiveTuple, FlowAging, FlowId, FlowTableKind, FlowTableStats, IpPrefix, NfId, Packet,
    Proto, TuplePattern,
};
pub use nfv_platform::{
    BlockReason, CostModel, IoMode, NfAction, NfIoSpec, NfSpec, PacketHandler, PlatformConfig,
};
pub use nfv_sched::{CfsParams, Policy, SchedBackend, SLO_DEFAULT_BUDGET};
pub use nfv_traffic::{
    diurnal_windows, heavy_tail_flows, heavy_tail_rates, sweep_index, tenant, CbrFlow,
    CostClassGen, ParetoShape, SweepSource, TcpSource, TenantSet, TenantSpec, TENANT_SPAN,
};
