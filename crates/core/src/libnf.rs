//! # The `libnf` surface: where each paper API lives here
//!
//! The paper's Fig 6 defines the abstraction library NF implementations
//! link against. This module documents how each call maps onto this
//! reproduction (it contains no code — the mechanisms live in
//! `nfv-platform` and `nfv-io`; this is the adopter's Rosetta stone).
//!
//! | `libnf` (paper) | Here |
//! |---|---|
//! | `libnf_read_pkt()` | the platform batch loop: [`Platform::plan_batch`](nfv_platform::Platform::plan_batch) dequeues ≤ 32 descriptors from the NF's RX ring, blocking the NF (semaphore) when empty |
//! | `libnf_write_pkt(pkt)` | the `Forward` arm of [`Platform::finish_batch`](nfv_platform::Platform::finish_batch): enqueue to the NF's TX ring; a full ring spills to the outbox and suspends the NF (local backpressure) |
//! | `libnf_read_data` / `libnf_write_data` | [`nfv_io::DoubleBuffer::write`] driven from `finish_batch` when the NF has an [`NfIoSpec`](nfv_platform::NfIoSpec); completions run off the packet path, and only a double-buffer stall suspends the NF |
//! | the yield flag checked per batch | [`NfRuntime::yield_flag`](nfv_platform::NfRuntime) — set by the wakeup thread, consumed at the next `plan_batch` |
//! | packet handler callback | the [`PacketHandler`](nfv_platform::PacketHandler) trait: `handle(&mut self, pkt, now) -> Forward \| Drop`; ready-made NFs live in the `nfv-apps` crate |
//! | service-time sampling | `NfRuntime::last_ppp`, read by the monitor each millisecond into [`LoadMonitor`](crate::LoadMonitor)'s 100 ms median window |
//!
//! An NF author therefore writes: a [`PacketHandler`](nfv_platform::PacketHandler)
//! (functional behaviour), an [`NfSpec`](nfv_platform::NfSpec) (cost model,
//! core, rings, optional I/O profile), and registers both with
//! [`Simulation::add_nf_with_handler`](crate::Simulation::add_nf_with_handler).
