//! Deterministic NF fault injection and failure recovery.
//!
//! Real NFV deployments lose NFs: processes segfault, spin in infinite
//! loops, or degrade under interference. NFVnice's manager must keep the
//! rest of the system healthy when that happens — in particular, a dead
//! bottleneck NF must not leave its chains throttled forever (backpressure
//! marks are cleared only by the marker draining below the LOW watermark,
//! which a dead NF never does).
//!
//! Faults are *scheduled*, not sampled: a [`FaultPlan`] is a list of
//! `(time, nf, kind)` triples carried in [`SimConfig`](crate::SimConfig),
//! so a faulted run is exactly as deterministic as a healthy one — two
//! same-seed runs with the same plan produce identical trace digests.
//!
//! Three fault kinds model the common failure shapes:
//!
//! - [`FaultKind::Crash`] — the NF process dies. Every packet it holds
//!   (RX/TX rings, outbox, in-flight batch) is freed back to the mempool
//!   as an `NfDown` drop, its scheduler task is parked, its backpressure
//!   marks are cleared, and entry admission sheds packets for chains
//!   routed through it (graceful degradation instead of a mempool leak).
//! - [`FaultKind::Stall`] — the NF stays schedulable but makes no
//!   progress (an infinite loop): it burns CPU while its queue grows.
//!   The manager's liveness watchdog detects the frozen progress counter
//!   and converts the stall into a crash + restart.
//! - [`FaultKind::Slowdown`] — a transient per-packet cost multiplier
//!   (cache pollution, a noisy neighbor), reverted after a duration.
//!
//! Recovery is manager policy: when enabled, a crashed (or watchdog-
//! killed) NF is restarted after [`FaultConfig::respawn_delay`], with its
//! load-estimator and ECN history reset so stale pre-crash medians don't
//! misallocate CPU shares to the fresh process.

use nfv_des::{Duration, SimTime};
use nfv_pkt::NfId;

/// What goes wrong with an NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The NF process dies. Its packets are freed, its task parked, its
    /// backpressure marks cleared; chains through it shed at entry until
    /// it is restarted.
    Crash,
    /// The NF keeps running but processes nothing: it spins at full batch
    /// cost with zero progress while its RX ring fills. Cleared only by
    /// the liveness watchdog (which treats it as a crash).
    Stall,
    /// Transient degradation: per-packet cost is multiplied by `factor`
    /// for `duration`, then reverts.
    Slowdown {
        /// Cost multiplier (clamped to ≥ 1).
        factor: u64,
        /// How long the degradation lasts.
        duration: Duration,
    },
}

/// One scheduled fault: at `at`, `nf` suffers `kind`.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// When the fault strikes (simulated time).
    pub at: SimTime,
    /// The victim NF.
    pub nf: NfId,
    /// What happens to it.
    pub kind: FaultKind,
}

/// The fault plan and the manager's recovery policy.
///
/// The default plan is empty with recovery on and the watchdog off:
/// a fault-free run is byte-identical to one built before this module
/// existed.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Scheduled faults (the deterministic fault plan).
    pub events: Vec<FaultEvent>,
    /// Restart dead NFs after `respawn_delay`. Off models a deployment
    /// with no process supervisor: the NF stays down for the rest of the
    /// run and its chains shed at entry.
    pub recovery: bool,
    /// Crash/detection → restarted-and-accepting-work delay (process
    /// respawn + huge-page remap + ring reattach).
    pub respawn_delay: Duration,
    /// Liveness watchdog: consecutive monitor ticks an NF may hold
    /// pending work without advancing its progress counter before it is
    /// declared hung and crash-restarted. `0` disables the watchdog.
    /// Blocked or deliberately-yielding NFs are never counted — only a
    /// runnable NF that fails to progress is suspect.
    pub stall_ticks: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            events: Vec::new(),
            recovery: true,
            respawn_delay: Duration::from_millis(10),
            stall_ticks: 0,
        }
    }
}

impl FaultConfig {
    /// Add one fault to the plan (builder-style).
    pub fn with_fault(mut self, at: SimTime, nf: NfId, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, nf, kind });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let c = FaultConfig::default();
        assert!(c.events.is_empty());
        assert!(c.recovery);
        assert_eq!(c.stall_ticks, 0, "watchdog is opt-in");
    }

    #[test]
    fn builder_accumulates_events() {
        let c = FaultConfig::default()
            .with_fault(SimTime::from_millis(5), NfId(2), FaultKind::Crash)
            .with_fault(
                SimTime::from_millis(9),
                NfId(0),
                FaultKind::Slowdown {
                    factor: 4,
                    duration: Duration::from_millis(2),
                },
            );
        assert_eq!(c.events.len(), 2);
        assert_eq!(c.events[0].nf, NfId(2));
        assert!(matches!(
            c.events[1].kind,
            FaultKind::Slowdown { factor: 4, .. }
        ));
    }
}
