//! Reusable correctness predicates shared by the test suite and the
//! runtime sim-sanitizer.
//!
//! These grew out of ad-hoc assertions scattered through the engine tests
//! (packet accounting, delivery-rate bounds); promoting them here gives
//! the sanitizer, the integration tests and the experiment harnesses one
//! definition of "the simulation is conserving packets".

use nfv_platform::Platform;

/// A snapshot of the platform's packet-conservation ledger, valid at any
/// event boundary (not mid-event, while a packet is between rings).
///
/// Frames dropped *before* classification (NIC overflow, no matching
/// rule) are outside the ledger: classification is where a frame becomes
/// a tracked packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationLedger {
    /// Packets classified into a flow (flow-table hit counters).
    pub classified: u64,
    /// Packets that exited the chain onto the wire.
    pub delivered: u64,
    /// Packets dropped after classification (entry discard, mempool
    /// exhaustion, ring overflow, handler drops).
    pub dropped: u64,
    /// Packets still held by the mempool (in rings, outboxes, or batches
    /// in progress).
    pub in_flight: u64,
}

impl ConservationLedger {
    /// Does the ledger balance? Every classified packet must be delivered,
    /// dropped, or still in flight.
    pub fn balances(&self) -> bool {
        self.classified == self.delivered + self.dropped + self.in_flight
    }
}

/// Read the conservation ledger off a platform.
///
/// Every side is a running total (the flow table's lifetime classified
/// count — which survives eviction — and the platform's delivery/drop
/// totals), so reading the ledger is O(1): the sim-sanitizer can audit
/// it at every event even with a million live flows.
pub fn conservation_ledger(p: &Platform) -> ConservationLedger {
    ConservationLedger {
        classified: p.flow_table.classified_packets(),
        delivered: p.stats.delivered_total,
        dropped: p.stats.dropped_total,
        in_flight: p.mempool.in_use() as u64,
    }
}

/// Full packet-conservation predicate: the mempool's in-use count matches
/// what the rings/outboxes/batches actually hold (`packets_accounted`),
/// *and* the classification ledger balances.
pub fn packets_conserved(p: &Platform) -> bool {
    p.packets_accounted() && conservation_ledger(p).balances()
}

/// Is `actual` within ±`pct` percent of `expect`? Used for delivery-rate
/// bound assertions ("capacity-bound NF delivers ~service rate").
pub fn within_pct(actual: f64, expect: f64, pct: f64) -> bool {
    if expect == 0.0 {
        return actual == 0.0;
    }
    ((actual - expect) / expect).abs() * 100.0 <= pct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balance_arithmetic() {
        let l = ConservationLedger {
            classified: 100,
            delivered: 70,
            dropped: 25,
            in_flight: 5,
        };
        assert!(l.balances());
        let broken = ConservationLedger { in_flight: 4, ..l };
        assert!(!broken.balances());
    }

    #[test]
    fn within_pct_bounds() {
        assert!(within_pct(95.0, 100.0, 5.0));
        assert!(within_pct(105.0, 100.0, 5.0));
        assert!(!within_pct(94.9, 100.0, 5.0));
        assert!(within_pct(0.0, 0.0, 1.0));
        assert!(!within_pct(1.0, 0.0, 1.0));
    }
}
