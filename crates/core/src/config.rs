//! Top-level simulation configuration.

use crate::backpressure::BackpressureConfig;
use crate::ecn::EcnConfig;
use crate::elastic::ElasticConfig;
use crate::faults::FaultConfig;
use crate::load::LoadConfig;
use nfv_des::Duration;
pub use nfv_des::QueueKind;
pub use nfv_des::SanitizerConfig;
pub use nfv_platform::PlatformConfig;

/// Which NFVnice subsystems are active. The paper's Fig 7/10/11 evaluate
/// four variants: Default (none), CGroup (weights only), BKPR
/// (backpressure only), and full NFVnice.
#[derive(Debug, Clone, Copy)]
pub struct NfvniceConfig {
    /// Rate-cost proportional cgroup weight assignment.
    pub cgroup_weights: bool,
    /// Chain-aware backpressure with selective early discard.
    pub backpressure: bool,
    /// ECN marking for responsive flows.
    pub ecn: bool,
    /// Watermarks and queuing-time threshold.
    pub bp: BackpressureConfig,
    /// Load estimator tunables.
    pub load: LoadConfig,
    /// ECN marker tunables.
    pub ecn_cfg: EcnConfig,
}

impl NfvniceConfig {
    /// Everything on (the paper's "NFVnice" bars).
    pub fn full() -> Self {
        NfvniceConfig {
            cgroup_weights: true,
            backpressure: true,
            ecn: true,
            bp: BackpressureConfig::default(),
            load: LoadConfig::default(),
            ecn_cfg: EcnConfig::default(),
        }
    }

    /// Everything off (the "Default" baseline: vanilla kernel scheduler,
    /// wake-on-packet only).
    pub fn off() -> Self {
        NfvniceConfig {
            cgroup_weights: false,
            backpressure: false,
            ecn: false,
            bp: BackpressureConfig::default(),
            load: LoadConfig::default(),
            ecn_cfg: EcnConfig::default(),
        }
    }

    /// Only cgroup weight assignment (the "CGroup" bars).
    pub fn cgroups_only() -> Self {
        NfvniceConfig {
            cgroup_weights: true,
            backpressure: false,
            ecn: false,
            ..Self::off()
        }
    }

    /// Only backpressure (the "Only BKPR" bars).
    pub fn backpressure_only() -> Self {
        NfvniceConfig {
            cgroup_weights: false,
            backpressure: true,
            ecn: false,
            ..Self::off()
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match (self.cgroup_weights, self.backpressure) {
            (false, false) => "Default",
            (true, false) => "CGroup",
            (false, true) => "OnlyBKPR",
            (true, true) => "NFVnice",
        }
    }
}

/// Observability switches: structured tracing and monitor-tick metrics.
///
/// Both default to off, where recording is a single branch on a `None`
/// handle — experiments pay nothing unless they opt in. Recording never
/// feeds back into the simulation, so the event-trace digest
/// ([`Report::trace_digest`](crate::Report)) is identical with and without
/// observability.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsConfig {
    /// Record structured trace events (throttle transitions, chain
    /// mark/clear, share writes, NF sleep/wake/yield, drops, ECN marks).
    pub trace: bool,
    /// Sample per-NF / per-chain time series on every monitor tick.
    pub metrics: bool,
}

impl ObsConfig {
    /// Everything on.
    pub fn all() -> Self {
        ObsConfig {
            trace: true,
            metrics: true,
        }
    }
}

/// Full simulation configuration: platform + NFVnice + driver periods.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Platform (cores, scheduler policy, mempool, batch size...).
    pub platform: PlatformConfig,
    /// NFVnice feature set.
    pub nfvnice: NfvniceConfig,
    /// Traffic generator poll period.
    pub traffic_poll: Duration,
    /// Manager RX thread poll period.
    pub rx_poll: Duration,
    /// Manager TX thread poll period.
    pub tx_poll: Duration,
    /// Wakeup thread scan period.
    pub wakeup_period: Duration,
    /// RNG seed (whole runs are deterministic given the seed).
    pub seed: u64,
    /// Runtime invariant auditing (off by default; the event-trace digest
    /// in [`Report::trace_digest`](crate::Report) is maintained regardless).
    pub sanitizer: SanitizerConfig,
    /// Structured tracing and metrics recording (off by default).
    pub obs: ObsConfig,
    /// Deterministic fault plan + recovery policy (empty/inert by
    /// default: a run without faults is byte-identical to one built
    /// before fault injection existed).
    pub faults: FaultConfig,
    /// Elastic scaling: bottleneck scale-out, cross-core migration,
    /// hysteresis scale-in (inert by default — same byte-identity
    /// contract as `faults`).
    pub elastic: ElasticConfig,
    /// Event-queue backend. Defaults to the build's default
    /// ([`QueueKind::default_kind`]: the timer wheel, or the heap under
    /// the `heap-queue` feature); both produce identical event streams,
    /// so this knob only exists for differential testing.
    pub queue: QueueKind,
    /// Periodic-timer coalescing: the run loop drains every same-instant
    /// event in one queue probe and processes the batch in `(time, seq)`
    /// order — byte-identical to per-pop delivery by construction
    /// (DESIGN.md §15). Default on; the `no-coalesce` cargo feature flips
    /// the build-wide default off for the differential CI leg.
    pub coalesce: bool,
    /// Idle skip-ahead: elide the *body* of a periodic tick proven to be
    /// a strict no-op (empty NIC for RX; empty mempool for TX; empty
    /// mempool plus quiescent backpressure for wakeup). The event is
    /// still popped and folded into the trace digest, so output is
    /// byte-identical (DESIGN.md §15). Default on; the `no-skip-ahead`
    /// cargo feature flips the build-wide default off.
    pub skip_ahead: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            platform: PlatformConfig::default(),
            nfvnice: NfvniceConfig::full(),
            traffic_poll: Duration::from_micros(20),
            rx_poll: Duration::from_micros(10),
            tx_poll: Duration::from_micros(10),
            wakeup_period: Duration::from_micros(10),
            seed: 0x4e46_5675,
            sanitizer: SanitizerConfig::default(),
            obs: ObsConfig::default(),
            faults: FaultConfig::default(),
            elastic: ElasticConfig::default(),
            queue: QueueKind::default_kind(),
            coalesce: !cfg!(feature = "no-coalesce"),
            skip_ahead: !cfg!(feature = "no-skip-ahead"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(NfvniceConfig::off().label(), "Default");
        assert_eq!(NfvniceConfig::cgroups_only().label(), "CGroup");
        assert_eq!(NfvniceConfig::backpressure_only().label(), "OnlyBKPR");
        assert_eq!(NfvniceConfig::full().label(), "NFVnice");
    }

    #[test]
    fn full_enables_all() {
        let c = NfvniceConfig::full();
        assert!(c.cgroup_weights && c.backpressure && c.ecn);
        let o = NfvniceConfig::off();
        assert!(!o.cgroup_weights && !o.backpressure && !o.ecn);
    }
}
