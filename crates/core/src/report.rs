//! Run reports: every metric the paper's tables and figures need.

use nfv_des::{jain_index, Duration, QueueStats};
use nfv_pkt::{ChainId, FlowId, FlowTableStats, NfId};

/// Per-NF results (Tables 1–5 columns).
#[derive(Debug, Clone)]
pub struct NfReport {
    /// NF id.
    pub nf: NfId,
    /// Name from the spec.
    pub name: String,
    /// Core the NF was pinned to.
    pub core: usize,
    /// Total packets processed (includes work later wasted).
    pub processed: u64,
    /// Mean service rate over per-second intervals (pps).
    pub svc_rate_pps: f64,
    /// Packets this NF processed that a downstream full ring discarded.
    pub wasted_drops: u64,
    /// Mean wasted-work drop rate (pps) — Table 3.
    pub wasted_rate_pps: f64,
    /// CPU time consumed.
    pub cpu_time: Duration,
    /// CPU utilization of its core over the run (0..1) — Table 5/6.
    pub cpu_util: f64,
    /// Voluntary context switches per second — Tables 1–2 `cswch/s`.
    pub cswch_per_sec: f64,
    /// Involuntary context switches per second — `nvcswch/s`.
    pub nvcswch_per_sec: f64,
    /// Average scheduling latency (runnable → running) — Table 4.
    pub avg_sched_latency: Duration,
    /// Final cgroup `cpu.shares`.
    pub final_shares: u64,
    /// Output rate: packets this NF forwarded that were *not* wasted
    /// downstream, per second (per-NF throughput in Fig 1).
    pub output_rate_pps: f64,
}

/// Per-flow results.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Flow id.
    pub flow: FlowId,
    /// Chain the flow rides.
    pub chain: ChainId,
    /// Packets delivered end-to-end.
    pub delivered: u64,
    /// Mean delivered rate (pps).
    pub delivered_pps: f64,
    /// Mean delivered rate (Mbit/s).
    pub mbps: f64,
    /// Packets dropped inside the box.
    pub dropped: u64,
    /// Packets shed at chain entry by backpressure.
    pub entry_drops: u64,
    /// Median end-to-end latency of delivered packets.
    pub latency_p50: Duration,
    /// 99th-percentile end-to-end latency.
    pub latency_p99: Duration,
}

/// Per-chain results (Fig 9 / Table 6).
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// Chain id.
    pub chain: ChainId,
    /// Packets that completed the chain.
    pub delivered: u64,
    /// Mean completion rate (pps).
    pub pps: f64,
    /// Entry-shed packets.
    pub entry_drops: u64,
    /// Median end-to-end latency of packets completing the chain.
    pub latency_p50: Duration,
    /// 99th-percentile end-to-end latency (the SLO headline number).
    pub latency_p99: Duration,
    /// 99.9th-percentile end-to-end latency.
    pub latency_p999: Duration,
}

/// Per-second time series captured during the run (Figs 13, 15a).
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// `cpu_pct[nf][second]`: CPU share of its core, percent.
    pub cpu_pct: Vec<Vec<f64>>,
    /// `flow_mbps[flow][second]`: delivered Mbit/s.
    pub flow_mbps: Vec<Vec<f64>>,
}

/// Complete results of one simulation run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Simulated wall-clock duration.
    pub wall: Duration,
    /// Scheduler policy label.
    pub policy: String,
    /// NFVnice variant label.
    pub variant: String,
    /// Per-NF reports (indexed by NF id).
    pub nfs: Vec<NfReport>,
    /// Per-flow reports (indexed by flow id).
    pub flows: Vec<FlowReport>,
    /// Per-chain reports (indexed by chain id).
    pub chains: Vec<ChainReport>,
    /// Aggregate delivered rate across all flows (pps).
    pub total_delivered_pps: f64,
    /// Frames lost at the NIC (no work wasted).
    pub nic_overflow: u64,
    /// Packets shed at chain entry (no work wasted).
    pub entry_drops: u64,
    /// Total wasted-work drops (after at least one NF processed them).
    pub total_wasted_drops: u64,
    /// cgroup sysfs writes performed.
    pub cgroup_writes: u64,
    /// Manager CPU time spent performing those writes (~5 µs each): the
    /// overhead the paper batches weight updates to bound.
    pub cgroup_write_time: Duration,
    /// Backpressure throttle activations.
    pub throttle_events: u64,
    /// ECN CE marks applied.
    pub ecn_marks: u64,
    /// NF crashes applied (injected faults + watchdog verdicts).
    pub nf_crashes: u64,
    /// NF restarts performed by the recovery policy.
    pub nf_restarts: u64,
    /// Stalls the liveness watchdog detected (each also counts a crash).
    pub nf_stalls_detected: u64,
    /// Packets lost to dead NFs: crash drains plus entry/forwarding
    /// shedding for chains routed through a down NF.
    pub nf_down_drops: u64,
    /// Scale-out replicas deployed by the elastic controller.
    pub nf_scale_outs: u64,
    /// Cross-core NF migrations performed by the elastic controller.
    pub nf_migrations: u64,
    /// Replicas retired by elastic scale-in.
    pub nf_scale_ins: u64,
    /// FNV-1a digest of the event trace `(time, event)` pairs. Two runs of
    /// the same scenario with the same seed must produce the same digest —
    /// the determinism tests compare exactly this.
    pub trace_digest: u64,
    /// Events popped and discarded as stale (lazy invalidation: dead-NF
    /// batch events, no-op respawns/crashes/slowdown ends). Counted at
    /// the engine's discard sites, so the number is identical whichever
    /// queue backend delivered the events.
    pub stale_pops: u64,
    /// Event-queue self-profiling counters (pushes, pops, wheel
    /// cascades, backing-store allocations). Deterministic per backend;
    /// surfaced in `BENCH_timings.json`, never in the metrics document.
    pub queue: QueueStats,
    /// Flows installed in the flow table when the run ended. Part of the
    /// deterministic sim state (identical across index backends), so it
    /// may appear in metrics output — unlike [`Report::flow`].
    pub flows_active: u64,
    /// Flows evicted by aging over the whole run (cumulative). Also
    /// backend-identical by construction.
    pub flows_evicted: u64,
    /// Flow-table self-profiling counters (probe lengths, rehashes,
    /// shard shape). Backend-*dependent*, so like [`Report::queue`] they
    /// go to `BENCH_timings.json` only — never into metrics or traces.
    pub flow: FlowTableStats,
    /// Per-second series.
    pub series: Series,
}

impl Report {
    /// Aggregate throughput in Mpps.
    pub fn throughput_mpps(&self) -> f64 {
        self.total_delivered_pps / 1e6
    }

    /// Jain's fairness index over per-flow delivered rates (Fig 15b).
    pub fn jain_over_flows(&self) -> f64 {
        let rates: Vec<f64> = self.flows.iter().map(|f| f.delivered_pps).collect();
        jain_index(&rates)
    }

    /// Per-NF throughput of a standalone NF (Fig 1): output rate in Mpps.
    pub fn nf_output_mpps(&self, nf: NfId) -> f64 {
        self.nfs[nf.index()].output_rate_pps / 1e6
    }

    /// Render a compact human-readable summary (used by examples and the
    /// bench harness).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "run: {:.2}s  policy={}  variant={}  total={:.3} Mpps  wasted={}  entry_drops={}",
            self.wall.as_secs_f64(),
            self.policy,
            self.variant,
            self.throughput_mpps(),
            self.total_wasted_drops,
            self.entry_drops,
        );
        for nf in &self.nfs {
            let _ = writeln!(
                s,
                "  {:<12} core{} svc={:>10.0}pps out={:>10.0}pps wasted={:>9.0}pps cpu={:>5.1}% cswch/s={:>8.0} nvcswch/s={:>8.0} lat={} shares={}",
                nf.name,
                nf.core,
                nf.svc_rate_pps,
                nf.output_rate_pps,
                nf.wasted_rate_pps,
                nf.cpu_util * 100.0,
                nf.cswch_per_sec,
                nf.nvcswch_per_sec,
                nf.avg_sched_latency,
                nf.final_shares,
            );
        }
        for f in &self.flows {
            let _ = writeln!(
                s,
                "  flow{:<3} chain{:<2} delivered={:>10} ({:>10.0}pps, {:>8.1}Mbps) dropped={} entry={}",
                f.flow.0, f.chain.0, f.delivered, f.delivered_pps, f.mbps, f.dropped, f.entry_drops
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Report {
        Report {
            wall: Duration::from_secs(1),
            policy: "BATCH".into(),
            variant: "NFVnice".into(),
            nfs: vec![],
            flows: vec![
                FlowReport {
                    flow: FlowId(0),
                    chain: ChainId(0),
                    delivered: 100,
                    delivered_pps: 100.0,
                    mbps: 0.064,
                    dropped: 0,
                    entry_drops: 0,
                    latency_p50: Duration::ZERO,
                    latency_p99: Duration::ZERO,
                },
                FlowReport {
                    flow: FlowId(1),
                    chain: ChainId(0),
                    delivered: 100,
                    delivered_pps: 100.0,
                    mbps: 0.064,
                    dropped: 0,
                    entry_drops: 0,
                    latency_p50: Duration::ZERO,
                    latency_p99: Duration::ZERO,
                },
            ],
            chains: vec![],
            total_delivered_pps: 200.0,
            nic_overflow: 0,
            entry_drops: 0,
            total_wasted_drops: 0,
            cgroup_writes: 0,
            cgroup_write_time: Duration::ZERO,
            throttle_events: 0,
            ecn_marks: 0,
            nf_crashes: 0,
            nf_restarts: 0,
            nf_stalls_detected: 0,
            nf_down_drops: 0,
            nf_scale_outs: 0,
            nf_migrations: 0,
            nf_scale_ins: 0,
            trace_digest: 0,
            stale_pops: 0,
            queue: QueueStats::default(),
            flows_active: 2,
            flows_evicted: 0,
            flow: FlowTableStats::default(),
            series: Series::default(),
        }
    }

    #[test]
    fn jain_of_equal_flows_is_one() {
        assert!((dummy().jain_over_flows() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mpps_conversion() {
        assert!((dummy().throughput_mpps() - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn summary_renders() {
        let s = dummy().summary();
        assert!(s.contains("NFVnice"));
        assert!(s.contains("flow0"));
    }
}
