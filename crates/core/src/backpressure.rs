//! Chain-aware backpressure (§3.3 of the paper).
//!
//! Per-NF state machine with hysteresis, exactly as Fig 4 of the paper:
//!
//! ```text
//!          qlen ≥ HIGH ∧ queuing-time > threshold
//!   Watch ──────────────────────────────────────▶ Throttle
//!     ▲                                              │
//!     └──────────────── qlen < LOW ◀─────────────────┘
//! ```
//!
//! While an NF is in *Throttle*, every service chain with packets waiting
//! in its queue is throttled: the RX thread drops those chains' packets at
//! their entry point (selective early discard), and upstream NFs whose
//! entire backlog belongs to throttled chains are told to yield the CPU.
//! A chain may be throttled by several bottlenecks at once, so each chain
//! keeps the *set* of NFs currently throttling it.

use nfv_des::Duration;
use nfv_pkt::{ChainId, NfId};
use std::collections::BTreeSet;

/// Watermark configuration. Percentages are of the NF's RX ring capacity.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureConfig {
    /// Enter throttle at or above this occupancy (paper's tuned value: 80%).
    pub high_pct: u32,
    /// Leave throttle strictly below this occupancy (80% − margin 20).
    pub low_pct: u32,
    /// Queue head must also be older than this before throttling — filters
    /// short bursts the NF will absorb anyway (§3.5's hysteresis).
    pub qtime_threshold: Duration,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            high_pct: 80,
            low_pct: 60,
            qtime_threshold: Duration::from_micros(100),
        }
    }
}

/// Per-NF backpressure state (Fig 4: watch list vs packet throttle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpState {
    /// Normal operation, being watched.
    Watch,
    /// Over the high watermark: chains through this NF are throttled.
    Throttle,
}

/// The backpressure subsystem state.
#[derive(Debug)]
pub struct Backpressure {
    /// Configuration.
    pub cfg: BackpressureConfig,
    state: Vec<BpState>,
    /// chains[c] = set of NFs currently throttling chain c.
    throttled_by: Vec<BTreeSet<NfId>>,
    /// marked[nf] = chains this NF has throttled (for exact clearing).
    marked: Vec<BTreeSet<ChainId>>,
    /// Throttle activations over the run.
    pub throttle_events: u64,
}

impl Backpressure {
    /// Subsystem for `num_nfs` NFs and `num_chains` chains.
    pub fn new(cfg: BackpressureConfig, num_nfs: usize, num_chains: usize) -> Self {
        Backpressure {
            cfg,
            state: vec![BpState::Watch; num_nfs],
            throttled_by: vec![BTreeSet::new(); num_chains],
            marked: vec![BTreeSet::new(); num_nfs],
            throttle_events: 0,
        }
    }

    /// Is `chain` currently subject to entry-point discard?
    pub fn is_throttled(&self, chain: ChainId) -> bool {
        !self.throttled_by[chain.index()].is_empty()
    }

    /// Current state of an NF.
    pub fn state(&self, nf: NfId) -> BpState {
        self.state[nf.index()]
    }

    /// NFs currently throttling `chain` (its active bottlenecks).
    pub fn throttlers(&self, chain: ChainId) -> impl Iterator<Item = NfId> + '_ {
        self.throttled_by[chain.index()].iter().copied()
    }

    /// Evaluate one NF against the watermarks.
    ///
    /// * `qlen`/`capacity` — RX ring occupancy;
    /// * `head_age` — queueing time of the oldest packet (`None` if empty);
    /// * `pending_chains` — chains with packets in this NF's queue (the
    ///   manager "examines all packets in the NF's queue to determine what
    ///   service chain they are part of").
    pub fn evaluate<'a>(
        &mut self,
        nf: NfId,
        qlen: usize,
        capacity: usize,
        head_age: Option<Duration>,
        pending_chains: impl Iterator<Item = &'a ChainId>,
    ) {
        let above_high = qlen * 100 >= capacity * self.cfg.high_pct as usize;
        let below_low = qlen * 100 < capacity * self.cfg.low_pct as usize;
        let aged = head_age.is_some_and(|a| a > self.cfg.qtime_threshold);
        match self.state[nf.index()] {
            BpState::Watch => {
                if above_high && aged {
                    self.state[nf.index()] = BpState::Throttle;
                    self.throttle_events += 1;
                    self.mark_chains(nf, pending_chains);
                }
            }
            BpState::Throttle => {
                if below_low {
                    self.state[nf.index()] = BpState::Watch;
                    self.clear_chains(nf);
                } else {
                    // Still congested: chains that started queueing here
                    // after the transition get throttled too.
                    self.mark_chains(nf, pending_chains);
                }
            }
        }
    }

    fn mark_chains<'a>(&mut self, nf: NfId, chains: impl Iterator<Item = &'a ChainId>) {
        for &c in chains {
            if self.marked[nf.index()].insert(c) {
                self.throttled_by[c.index()].insert(nf);
            }
        }
    }

    fn clear_chains(&mut self, nf: NfId) {
        let marked = std::mem::take(&mut self.marked[nf.index()]);
        for c in marked {
            self.throttled_by[c.index()].remove(&nf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> Backpressure {
        Backpressure::new(BackpressureConfig::default(), 3, 2)
    }

    const CAP: usize = 100;
    fn age(us: u64) -> Option<Duration> {
        Some(Duration::from_micros(us))
    }

    #[test]
    fn throttles_above_high_with_aged_queue() {
        let mut b = bp();
        let chains = [ChainId(0)];
        b.evaluate(NfId(1), 80, CAP, age(200), chains.iter());
        assert_eq!(b.state(NfId(1)), BpState::Throttle);
        assert!(b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
        assert_eq!(b.throttle_events, 1);
    }

    #[test]
    fn fresh_burst_does_not_throttle() {
        let mut b = bp();
        let chains = [ChainId(0)];
        // over HIGH but the head packet is young: a burst, not overload
        b.evaluate(NfId(1), 90, CAP, age(10), chains.iter());
        assert_eq!(b.state(NfId(1)), BpState::Watch);
        assert!(!b.is_throttled(ChainId(0)));
    }

    #[test]
    fn hysteresis_clears_only_below_low() {
        let mut b = bp();
        let chains = [ChainId(0)];
        b.evaluate(NfId(1), 85, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)));
        // Drops to 70 (between LOW and HIGH): still throttled.
        b.evaluate(NfId(1), 70, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)));
        // Below LOW (60): cleared.
        b.evaluate(NfId(1), 59, CAP, age(200), chains.iter());
        assert!(!b.is_throttled(ChainId(0)));
        assert_eq!(b.state(NfId(1)), BpState::Watch);
    }

    #[test]
    fn multiple_bottlenecks_must_all_clear() {
        let mut b = bp();
        let chains = [ChainId(0)];
        b.evaluate(NfId(1), 90, CAP, age(200), chains.iter());
        b.evaluate(NfId(2), 90, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)));
        b.evaluate(NfId(1), 10, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)), "NF2 still congested");
        b.evaluate(NfId(2), 10, CAP, age(200), chains.iter());
        assert!(!b.is_throttled(ChainId(0)));
    }

    #[test]
    fn late_arriving_chain_marked_while_throttled() {
        let mut b = bp();
        let first = [ChainId(0)];
        b.evaluate(NfId(1), 90, CAP, age(200), first.iter());
        assert!(!b.is_throttled(ChainId(1)));
        // Next scan: chain 1's packets are now queued here too.
        let both = [ChainId(0), ChainId(1)];
        b.evaluate(NfId(1), 90, CAP, age(200), both.iter());
        assert!(b.is_throttled(ChainId(1)));
        // Clearing unmarks both.
        b.evaluate(NfId(1), 0, CAP, None, [].iter());
        assert!(!b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
    }

    #[test]
    fn selective_other_chains_unaffected() {
        // Fig 5: chain B does not pass the bottleneck, stays admitted.
        let mut b = Backpressure::new(BackpressureConfig::default(), 5, 4);
        let at_bottleneck = [ChainId(0), ChainId(2), ChainId(3)];
        b.evaluate(NfId(3), 95, CAP, age(500), at_bottleneck.iter());
        assert!(b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
        assert!(b.is_throttled(ChainId(2)));
        assert!(b.is_throttled(ChainId(3)));
    }

    #[test]
    fn empty_queue_never_throttles() {
        let mut b = bp();
        b.evaluate(NfId(0), 0, CAP, None, [].iter());
        assert_eq!(b.state(NfId(0)), BpState::Watch);
    }
}
