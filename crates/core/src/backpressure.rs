//! Chain-aware backpressure (§3.3 of the paper).
//!
//! Per-NF state machine with hysteresis, exactly as Fig 4 of the paper:
//!
//! ```text
//!          qlen ≥ HIGH ∧ queuing-time > threshold
//!   Watch ──────────────────────────────────────▶ Throttle
//!     ▲                                              │
//!     └──────────────── qlen < LOW ◀─────────────────┘
//! ```
//!
//! While an NF is in *Throttle*, every service chain with packets waiting
//! in its queue is throttled: the RX thread drops those chains' packets at
//! their entry point (selective early discard), and upstream NFs whose
//! entire backlog belongs to throttled chains are told to yield the CPU.
//! A chain may be throttled by several bottlenecks at once, so each chain
//! keeps the *set* of NFs currently throttling it.

use nfv_des::{Duration, SimTime};
use nfv_obs::{TraceKind, TraceSink};
use nfv_pkt::{ChainId, NfId};
use std::collections::BTreeSet;

/// Watermark configuration. Percentages are of the NF's RX ring capacity.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureConfig {
    /// Enter throttle at or above this occupancy (paper's tuned value: 80%).
    pub high_pct: u32,
    /// Leave throttle strictly below this occupancy (80% − margin 20).
    pub low_pct: u32,
    /// Queue head must also be older than this before throttling — filters
    /// short bursts the NF will absorb anyway (§3.5's hysteresis).
    pub qtime_threshold: Duration,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            high_pct: 80,
            low_pct: 60,
            qtime_threshold: Duration::from_micros(100),
        }
    }
}

/// Per-NF backpressure state (Fig 4: watch list vs packet throttle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpState {
    /// Normal operation, being watched.
    Watch,
    /// Over the high watermark: chains through this NF are throttled.
    Throttle,
}

/// The backpressure subsystem state.
#[derive(Debug)]
pub struct Backpressure {
    /// Configuration.
    pub cfg: BackpressureConfig,
    state: Vec<BpState>,
    /// chains[c] = set of NFs currently throttling chain c.
    throttled_by: Vec<BTreeSet<NfId>>,
    /// marked[nf] = chains this NF has throttled (for exact clearing).
    marked: Vec<BTreeSet<ChainId>>,
    /// Total (nf, chain) marks across all chains — an O(1) "is anything
    /// throttled at all" gate for the per-frame admission path.
    total_marks: u64,
    /// NFs currently in [`BpState::Throttle`] — with `total_marks`, an
    /// O(1) full-quiescence gate ([`Backpressure::quiescent`]). A
    /// markless throttler is possible (all its pending chains drained
    /// elsewhere before a scan), so both counts are needed.
    throttled_states: u64,
    /// Throttle activations over the run.
    pub throttle_events: u64,
    /// Structured-event sink (off unless observability is enabled).
    trace: TraceSink,
}

impl Backpressure {
    /// Subsystem for `num_nfs` NFs and `num_chains` chains.
    pub fn new(cfg: BackpressureConfig, num_nfs: usize, num_chains: usize) -> Self {
        Backpressure {
            cfg,
            state: vec![BpState::Watch; num_nfs],
            throttled_by: vec![BTreeSet::new(); num_chains],
            marked: vec![BTreeSet::new(); num_nfs],
            total_marks: 0,
            throttled_states: 0,
            throttle_events: 0,
            trace: TraceSink::off(),
        }
    }

    /// Attach a trace sink recording throttle transitions and chain
    /// mark/clear events.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Append state for an NF deployed mid-run (elastic scale-out
    /// replica): fresh `Watch` with no chain marks.
    pub fn grow(&mut self) {
        self.state.push(BpState::Watch);
        self.marked.push(BTreeSet::new());
    }

    /// Is `chain` currently subject to entry-point discard?
    pub fn is_throttled(&self, chain: ChainId) -> bool {
        !self.throttled_by[chain.index()].is_empty()
    }

    /// Is *any* chain throttled by *any* NF right now? O(1) — the
    /// per-frame admission path checks this before walking a chain's
    /// throttler set, and the wakeup scan uses it to skip suppression
    /// checks entirely in the (common) fully-unthrottled steady state.
    pub fn any_marks(&self) -> bool {
        self.total_marks > 0
    }

    /// Is the whole subsystem in its ground state — no chain marks *and*
    /// no NF in `Throttle`? O(1). While true, a watermark scan over NFs
    /// with empty rings is a strict no-op (`Watch` + `qlen == 0` can
    /// neither transition nor mark), which is what lets the engine's idle
    /// skip-ahead elide wakeup-tick bodies without observable effect.
    pub fn quiescent(&self) -> bool {
        self.total_marks == 0 && self.throttled_states == 0
    }

    /// Current state of an NF.
    pub fn state(&self, nf: NfId) -> BpState {
        self.state[nf.index()]
    }

    /// NFs currently throttling `chain` (its active bottlenecks).
    pub fn throttlers(&self, chain: ChainId) -> impl Iterator<Item = NfId> + '_ {
        self.throttled_by[chain.index()].iter().copied()
    }

    /// Evaluate one NF against the watermarks.
    ///
    /// * `qlen`/`capacity` — RX ring occupancy;
    /// * `head_age` — queueing time of the oldest packet (`None` if empty);
    /// * `pending_chains` — chains with packets in this NF's queue (the
    ///   manager "examines all packets in the NF's queue to determine what
    ///   service chain they are part of").
    pub fn evaluate<'a>(
        &mut self,
        now: SimTime,
        nf: NfId,
        qlen: usize,
        capacity: usize,
        head_age: Option<Duration>,
        pending_chains: impl Iterator<Item = &'a ChainId>,
    ) {
        let above_high = qlen * 100 >= capacity * self.cfg.high_pct as usize;
        let below_low = qlen * 100 < capacity * self.cfg.low_pct as usize;
        let aged = head_age.is_some_and(|a| a > self.cfg.qtime_threshold);
        match self.state[nf.index()] {
            BpState::Watch => {
                if above_high && aged {
                    self.state[nf.index()] = BpState::Throttle;
                    self.throttled_states += 1;
                    self.throttle_events += 1;
                    self.trace
                        .record(now, TraceKind::ThrottleEnter { nf: nf.0 });
                    self.mark_chains(now, nf, pending_chains);
                }
            }
            BpState::Throttle => {
                if below_low {
                    self.state[nf.index()] = BpState::Watch;
                    self.throttled_states -= 1;
                    self.trace.record(now, TraceKind::ThrottleExit { nf: nf.0 });
                    self.clear_chains(now, nf);
                } else if above_high && aged {
                    // Still at/over HIGH with an aged head: chains that
                    // started queueing here after the transition meet the
                    // same criterion and get throttled too. In the
                    // LOW..HIGH hysteresis band, existing marks persist
                    // but no *new* chain is throttled — a chain must never
                    // be throttled without witnessing HIGH ∧ aged (Fig 4).
                    self.mark_chains(now, nf, pending_chains);
                }
            }
        }
    }

    fn mark_chains<'a>(
        &mut self,
        now: SimTime,
        nf: NfId,
        chains: impl Iterator<Item = &'a ChainId>,
    ) {
        for &c in chains {
            if self.marked[nf.index()].insert(c) {
                self.throttled_by[c.index()].insert(nf);
                self.total_marks += 1;
                self.trace.record(
                    now,
                    TraceKind::ChainMark {
                        nf: nf.0,
                        chain: c.0,
                    },
                );
            }
        }
    }

    /// An NF left the system (crash): reset its throttle state and drop
    /// every chain mark it holds. A dead NF can never clear its own marks
    /// — its ring was just drained and it no longer passes through
    /// `evaluate` — so without this, every chain it throttled would shed
    /// at entry forever.
    pub fn clear_nf(&mut self, now: SimTime, nf: NfId) {
        if self.state[nf.index()] == BpState::Throttle {
            self.state[nf.index()] = BpState::Watch;
            self.throttled_states -= 1;
            self.trace.record(now, TraceKind::ThrottleExit { nf: nf.0 });
        }
        self.clear_chains(now, nf);
    }

    fn clear_chains(&mut self, now: SimTime, nf: NfId) {
        let marked = std::mem::take(&mut self.marked[nf.index()]);
        for c in marked {
            self.throttled_by[c.index()].remove(&nf);
            self.total_marks -= 1;
            self.trace.record(
                now,
                TraceKind::ChainClear {
                    nf: nf.0,
                    chain: c.0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> Backpressure {
        Backpressure::new(BackpressureConfig::default(), 3, 2)
    }

    const CAP: usize = 100;
    const T: SimTime = SimTime::ZERO;
    fn age(us: u64) -> Option<Duration> {
        Some(Duration::from_micros(us))
    }

    #[test]
    fn throttles_above_high_with_aged_queue() {
        let mut b = bp();
        let chains = [ChainId(0)];
        b.evaluate(T, NfId(1), 80, CAP, age(200), chains.iter());
        assert_eq!(b.state(NfId(1)), BpState::Throttle);
        assert!(b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
        assert_eq!(b.throttle_events, 1);
    }

    #[test]
    fn fresh_burst_does_not_throttle() {
        let mut b = bp();
        let chains = [ChainId(0)];
        // over HIGH but the head packet is young: a burst, not overload
        b.evaluate(T, NfId(1), 90, CAP, age(10), chains.iter());
        assert_eq!(b.state(NfId(1)), BpState::Watch);
        assert!(!b.is_throttled(ChainId(0)));
    }

    #[test]
    fn hysteresis_clears_only_below_low() {
        let mut b = bp();
        let chains = [ChainId(0)];
        b.evaluate(T, NfId(1), 85, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)));
        // Drops to 70 (between LOW and HIGH): still throttled.
        b.evaluate(T, NfId(1), 70, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)));
        // Below LOW (60): cleared.
        b.evaluate(T, NfId(1), 59, CAP, age(200), chains.iter());
        assert!(!b.is_throttled(ChainId(0)));
        assert_eq!(b.state(NfId(1)), BpState::Watch);
    }

    #[test]
    fn multiple_bottlenecks_must_all_clear() {
        let mut b = bp();
        let chains = [ChainId(0)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), chains.iter());
        b.evaluate(T, NfId(2), 90, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)));
        b.evaluate(T, NfId(1), 10, CAP, age(200), chains.iter());
        assert!(b.is_throttled(ChainId(0)), "NF2 still congested");
        b.evaluate(T, NfId(2), 10, CAP, age(200), chains.iter());
        assert!(!b.is_throttled(ChainId(0)));
    }

    #[test]
    fn late_arriving_chain_marked_while_throttled() {
        let mut b = bp();
        let first = [ChainId(0)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), first.iter());
        assert!(!b.is_throttled(ChainId(1)));
        // Next scan: chain 1's packets are now queued here too.
        let both = [ChainId(0), ChainId(1)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), both.iter());
        assert!(b.is_throttled(ChainId(1)));
        // Clearing unmarks both.
        b.evaluate(T, NfId(1), 0, CAP, None, [].iter());
        assert!(!b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
    }

    #[test]
    fn selective_other_chains_unaffected() {
        // Fig 5: chain B does not pass the bottleneck, stays admitted.
        let mut b = Backpressure::new(BackpressureConfig::default(), 5, 4);
        let at_bottleneck = [ChainId(0), ChainId(2), ChainId(3)];
        b.evaluate(T, NfId(3), 95, CAP, age(500), at_bottleneck.iter());
        assert!(b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
        assert!(b.is_throttled(ChainId(2)));
        assert!(b.is_throttled(ChainId(3)));
    }

    #[test]
    fn no_new_marks_in_hysteresis_band() {
        let mut b = bp();
        let first = [ChainId(0)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), first.iter());
        assert!(b.is_throttled(ChainId(0)));
        // Occupancy falls into the LOW..HIGH band; chain 1's packets show
        // up. It never witnessed HIGH ∧ aged here, so it must NOT be
        // throttled — the old code re-marked it anyway.
        let both = [ChainId(0), ChainId(1)];
        b.evaluate(T, NfId(1), 70, CAP, age(200), both.iter());
        assert!(b.is_throttled(ChainId(0)), "existing mark persists");
        assert!(!b.is_throttled(ChainId(1)), "no new mark in the band");
        // Back over HIGH with an aged head: now chain 1 qualifies.
        b.evaluate(T, NfId(1), 90, CAP, age(200), both.iter());
        assert!(b.is_throttled(ChainId(1)));
    }

    #[test]
    fn trace_records_throttle_lifecycle() {
        let mut b = bp();
        let sink = TraceSink::recording();
        b.set_trace(sink.clone());
        let chains = [ChainId(0)];
        b.evaluate(
            SimTime::from_micros(1),
            NfId(1),
            90,
            CAP,
            age(200),
            chains.iter(),
        );
        b.evaluate(
            SimTime::from_micros(2),
            NfId(1),
            10,
            CAP,
            age(200),
            chains.iter(),
        );
        let evs = sink.take();
        let labels: Vec<&str> = evs.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            [
                "throttle_enter",
                "chain_mark",
                "throttle_exit",
                "chain_clear"
            ]
        );
        assert_eq!(evs[0].t, SimTime::from_micros(1));
        assert_eq!(evs[2].t, SimTime::from_micros(2));
    }

    #[test]
    fn clear_nf_releases_every_mark_and_resets_state() {
        let mut b = bp();
        let chains = [ChainId(0), ChainId(1)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), chains.iter());
        assert_eq!(b.state(NfId(1)), BpState::Throttle);
        assert!(b.is_throttled(ChainId(0)) && b.is_throttled(ChainId(1)));
        // The NF dies: it will never drain below LOW on its own.
        b.clear_nf(T, NfId(1));
        assert_eq!(b.state(NfId(1)), BpState::Watch);
        assert!(!b.is_throttled(ChainId(0)));
        assert!(!b.is_throttled(ChainId(1)));
        // Other bottlenecks' marks are untouched.
        b.evaluate(T, NfId(2), 90, CAP, age(200), [ChainId(0)].iter());
        b.clear_nf(T, NfId(1));
        assert!(b.is_throttled(ChainId(0)), "NF2's mark survives");
    }

    #[test]
    fn clear_nf_on_watch_state_is_a_no_op() {
        let mut b = bp();
        let sink = TraceSink::recording();
        b.set_trace(sink.clone());
        b.clear_nf(T, NfId(0));
        assert!(sink.take().is_empty(), "nothing to clear, nothing traced");
    }

    #[test]
    fn any_marks_tracks_the_global_mark_count() {
        let mut b = bp();
        assert!(!b.any_marks());
        let chains = [ChainId(0), ChainId(1)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), chains.iter());
        b.evaluate(T, NfId(2), 90, CAP, age(200), [ChainId(0)].iter());
        assert!(b.any_marks());
        // NF1 drains: NF2's mark keeps the gate up.
        b.evaluate(T, NfId(1), 0, CAP, None, [].iter());
        assert!(b.any_marks());
        // A crash clears the last mark.
        b.clear_nf(T, NfId(2));
        assert!(!b.any_marks());
    }

    #[test]
    fn quiescent_requires_no_marks_and_no_throttlers() {
        let mut b = bp();
        assert!(b.quiescent());
        let chains = [ChainId(0)];
        b.evaluate(T, NfId(1), 90, CAP, age(200), chains.iter());
        assert!(!b.quiescent());
        // NF2 throttles with no pending chains: a markless throttler.
        b.evaluate(T, NfId(2), 90, CAP, age(200), [].iter());
        b.evaluate(T, NfId(1), 0, CAP, None, [].iter());
        assert!(!b.quiescent(), "NF2 still in Throttle with no marks");
        b.evaluate(T, NfId(2), 0, CAP, None, [].iter());
        assert!(b.quiescent());
        // clear_nf path maintains the counter too.
        b.evaluate(T, NfId(1), 90, CAP, age(200), chains.iter());
        b.clear_nf(T, NfId(1));
        assert!(b.quiescent());
    }

    #[test]
    fn empty_queue_never_throttles() {
        let mut b = bp();
        b.evaluate(T, NfId(0), 0, CAP, None, [].iter());
        assert_eq!(b.state(NfId(0)), BpState::Watch);
    }
}
