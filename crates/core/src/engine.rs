//! The simulation engine: event loop wiring traffic, the platform
//! mechanisms, the OS scheduler and the NFVnice policy subsystems together.
//!
//! Manager threads (traffic generator, RX, TX, wakeup, monitor) are
//! periodic events on dedicated (unmodeled) cores, as in the paper's
//! deployment where the NF Manager's threads are pinned away from NF
//! cores. NF execution advances in batch-sized segments: `CoreRun` begins
//! a batch (dequeue + cost computation), `BatchDone` completes it (handler
//! execution, I/O, TX enqueue) and then makes the scheduling decision —
//! continue, preempt, or block — which is exactly the batch-boundary
//! yield/preemption model of `libnf` (§3.2).

use crate::backpressure::{Backpressure, BpState};
use crate::config::SimConfig;
use crate::ecn::EcnMarker;
use crate::invariants;
use crate::load::{compute_shares, LoadMonitor};
use crate::report::{ChainReport, FlowReport, NfReport, Report, Series};
use nfv_des::{Duration, EventQueue, Sanitizer, Severity, SimRng, SimTime};
use nfv_obs::{DropCause, MetricsRecorder, TraceEvent, TraceKind, TraceSink, NO_ID};
use nfv_pkt::{ChainId, FiveTuple, FlowId, NfId, Proto};
use nfv_platform::{BatchPlan, CostModel, NfSpec, PacketHandler, Platform, TcpEvent, TcpEventKind};
use nfv_sched::SwitchKind;
use nfv_traffic::{CbrFlow, Feedback, TcpSource};
use std::collections::BTreeMap;

/// A configuration change applied mid-run (Fig 15a changes an NF's cost at
/// t = 31 s and back at t = 60 s).
#[derive(Debug, Clone)]
pub enum Action {
    /// Replace an NF's cost model.
    SetCost(NfId, CostModel),
}

#[derive(Debug, Clone)]
enum Ev {
    Traffic,
    RxPoll,
    TxPoll,
    Wakeup,
    Monitor,
    StatsRoll,
    CoreRun { core: usize },
    BatchDone { core: usize },
    IoComplete { nf: NfId },
    TcpFeedback { src: usize, fb: Feedback },
    Action { idx: usize },
}

/// A stable encoding of an event for the sanitizer's trace digest:
/// variant discriminant in the high byte, payload below. Any pure
/// function of the event works; this one keeps distinct events distinct
/// for every payload the engine actually produces.
fn ev_tag(ev: &Ev) -> u64 {
    const SHIFT: u32 = 56;
    match ev {
        Ev::Traffic => 1 << SHIFT,
        Ev::RxPoll => 2 << SHIFT,
        Ev::TxPoll => 3 << SHIFT,
        Ev::Wakeup => 4 << SHIFT,
        Ev::Monitor => 5 << SHIFT,
        Ev::StatsRoll => 6 << SHIFT,
        Ev::CoreRun { core } => (7 << SHIFT) | *core as u64,
        Ev::BatchDone { core } => (8 << SHIFT) | *core as u64,
        Ev::IoComplete { nf } => (9 << SHIFT) | nf.index() as u64,
        Ev::TcpFeedback { src, fb } => {
            let (kind, seq) = match fb {
                Feedback::Delivered { seq, ce } => (if *ce { 1u64 } else { 0 }, *seq),
                Feedback::Dropped { seq } => (2, *seq),
            };
            (10 << SHIFT) | (kind << 48) | ((*src as u64 & 0xff) << 40) | (seq & 0xff_ffff_ffff)
        }
        Ev::Action { idx } => (11 << SHIFT) | *idx as u64,
    }
}

/// A configured simulation: build it, attach NFs/chains/traffic, `run`.
pub struct Simulation {
    cfg: SimConfig,
    /// The underlying platform (public for tests and custom inspection).
    pub platform: Platform,
    queue: EventQueue<Ev>,
    rng: SimRng,
    /// Runtime invariant auditor + event-trace digest (public so tests can
    /// inspect violations after `run`, e.g. `sim.sanitizer.assert_clean()`).
    pub sanitizer: Sanitizer,
    udp: Vec<CbrFlow>,
    tcp: Vec<TcpSource>,
    tcp_by_flow: BTreeMap<FlowId, usize>,
    flow_chain: Vec<ChainId>,
    bp: Backpressure,
    load: LoadMonitor,
    ecn: EcnMarker,
    core_active: Vec<bool>,
    actions: Vec<(SimTime, Action)>,
    trace: TraceSink,
    metrics: MetricsRecorder,
    mgr_cgroup_time: Duration,
    monitor_ticks: u64,
    tuple_counter: u32,
    last_roll: SimTime,
    traffic_rotor: usize,
    // per-second series bookkeeping
    series: Series,
    cpu_snapshot: Vec<Duration>,
    flow_bytes_snapshot: Vec<u64>,
    scratch_tcp: Vec<TcpEvent>,
    scratch_woken: Vec<NfId>,
    scratch_frames: Vec<nfv_pkt::WireFrame>,
}

impl Simulation {
    /// A new simulation with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let platform = Platform::new(cfg.platform.clone());
        let rng = SimRng::seed_from_u64(cfg.seed);
        Simulation {
            platform,
            queue: EventQueue::new(),
            rng,
            sanitizer: Sanitizer::new(cfg.sanitizer),
            udp: Vec::new(),
            tcp: Vec::new(),
            tcp_by_flow: BTreeMap::new(),
            flow_chain: Vec::new(),
            bp: Backpressure::new(cfg.nfvnice.bp, 0, 0),
            load: LoadMonitor::new(cfg.nfvnice.load, 0),
            ecn: EcnMarker::new(cfg.nfvnice.ecn_cfg, Vec::new()),
            core_active: vec![false; cfg.platform.nf_cores],
            actions: Vec::new(),
            trace: if cfg.obs.trace {
                TraceSink::recording()
            } else {
                TraceSink::off()
            },
            metrics: if cfg.obs.metrics {
                MetricsRecorder::recording()
            } else {
                MetricsRecorder::off()
            },
            mgr_cgroup_time: Duration::ZERO,
            monitor_ticks: 0,
            tuple_counter: 0,
            last_roll: SimTime::ZERO,
            traffic_rotor: 0,
            series: Series::default(),
            cpu_snapshot: Vec::new(),
            flow_bytes_snapshot: Vec::new(),
            scratch_tcp: Vec::new(),
            scratch_woken: Vec::new(),
            scratch_frames: Vec::new(),
            cfg,
        }
    }

    /// Deploy an NF.
    pub fn add_nf(&mut self, spec: NfSpec) -> NfId {
        self.platform.add_nf(spec)
    }

    /// Deploy an NF with a custom handler.
    pub fn add_nf_with_handler(&mut self, spec: NfSpec, handler: Box<dyn PacketHandler>) -> NfId {
        self.platform.add_nf_with_handler(spec, handler)
    }

    /// Install a service chain.
    pub fn add_chain(&mut self, path: &[NfId]) -> ChainId {
        self.platform.install_chain(path)
    }

    fn fresh_tuple(&mut self, proto: Proto) -> FiveTuple {
        self.tuple_counter += 1;
        FiveTuple::synthetic(self.tuple_counter, proto)
    }

    /// Attach a constant-rate UDP flow to `chain`.
    pub fn add_udp(&mut self, chain: ChainId, rate_pps: f64, frame_size: u32) -> FlowId {
        self.add_udp_with(chain, rate_pps, frame_size, |f| f)
    }

    /// Attach a UDP flow with extra configuration (window, Poisson, cost
    /// classes) applied by `customize`.
    pub fn add_udp_with(
        &mut self,
        chain: ChainId,
        rate_pps: f64,
        frame_size: u32,
        customize: impl FnOnce(CbrFlow) -> CbrFlow,
    ) -> FlowId {
        let tuple = self.fresh_tuple(Proto::Udp);
        let flow = self.platform.install_flow(tuple, chain);
        self.udp
            .push(customize(CbrFlow::new(tuple, frame_size, rate_pps)));
        self.note_flow(flow, chain);
        flow
    }

    /// Attach a TCP flow to `chain`.
    pub fn add_tcp(&mut self, chain: ChainId, frame_size: u32, rtt: Duration) -> FlowId {
        self.add_tcp_with(chain, frame_size, rtt, |s| s)
    }

    /// Attach a TCP flow with extra configuration (ECN, max cwnd).
    pub fn add_tcp_with(
        &mut self,
        chain: ChainId,
        frame_size: u32,
        rtt: Duration,
        customize: impl FnOnce(TcpSource) -> TcpSource,
    ) -> FlowId {
        let tuple = self.fresh_tuple(Proto::Tcp);
        let flow = self.platform.install_flow(tuple, chain);
        let src = customize(TcpSource::new(tuple, frame_size, rtt));
        self.tcp_by_flow.insert(flow, self.tcp.len());
        self.tcp.push(src);
        self.note_flow(flow, chain);
        flow
    }

    fn note_flow(&mut self, flow: FlowId, chain: ChainId) {
        while self.flow_chain.len() <= flow.index() {
            self.flow_chain.push(chain);
        }
        self.flow_chain[flow.index()] = chain;
    }

    /// Mark a flow as triggering storage I/O at I/O-capable NFs.
    pub fn mark_io_flow(&mut self, flow: FlowId) {
        self.platform.set_io_flow(flow);
    }

    /// Schedule a configuration change.
    pub fn at(&mut self, t: SimTime, action: Action) {
        self.actions.push((t, action));
    }

    /// Read access to a TCP source (for assertions on cwnd etc.).
    pub fn tcp_source(&self, flow: FlowId) -> &TcpSource {
        &self.tcp[self.tcp_by_flow[&flow]]
    }

    /// Drain the structured trace recorded so far (empty unless
    /// [`ObsConfig::trace`](crate::config::ObsConfig) was set).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Take the metrics time series recorded so far (empty unless
    /// [`ObsConfig::metrics`](crate::config::ObsConfig) was set).
    pub fn take_metrics(&mut self) -> MetricsRecorder {
        std::mem::take(&mut self.metrics)
    }

    // ------------------------------------------------------------------
    // main loop
    // ------------------------------------------------------------------

    /// Run for `duration` of simulated time and report.
    ///
    /// `run` consumes the simulation's timeline: call it once per
    /// `Simulation`. (A second call panics on the first event scheduled
    /// before the already-advanced clock.)
    pub fn run(&mut self, duration: Duration) -> Report {
        let end = SimTime::ZERO + duration;
        self.prime(end);
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (now, ev) = self.queue.pop().unwrap();
            self.handle(now, ev, end);
        }
        self.platform.roll_meters(end);
        // Close the final (possibly partial) measurement interval.
        let tail = end.since(self.last_roll).as_secs_f64();
        if tail > 1e-9 {
            self.snapshot_series(tail);
            self.last_roll = end;
        }
        self.build_report(duration)
    }

    fn prime(&mut self, end: SimTime) {
        let n_nfs = self.platform.nfs.len();
        let n_chains = self.platform.chains.count();
        self.bp = Backpressure::new(self.cfg.nfvnice.bp, n_nfs, n_chains);
        self.load = LoadMonitor::new(self.cfg.nfvnice.load, n_nfs);
        self.ecn = EcnMarker::new(
            self.cfg.nfvnice.ecn_cfg,
            self.platform
                .nfs
                .iter()
                .map(|nf| nf.rx.capacity())
                .collect(),
        );
        // Hand every subsystem the shared trace handle; recording is
        // observation only and never feeds back into any decision, so the
        // event-trace digest is unchanged whether or not it is on.
        self.bp.set_trace(self.trace.clone());
        self.platform.trace = self.trace.clone();
        self.platform.sched.set_trace(self.trace.clone());
        self.metrics.init(
            self.platform.nfs.iter().map(|nf| nf.spec.name.as_str()),
            n_chains,
        );
        self.cpu_snapshot = vec![Duration::ZERO; n_nfs];
        self.flow_bytes_snapshot = vec![0; self.platform.stats.flows.len()];
        self.series.cpu_pct = vec![Vec::new(); n_nfs];
        self.series.flow_mbps = vec![Vec::new(); self.platform.stats.flows.len()];

        let q = &mut self.queue;
        q.push(SimTime::ZERO + self.cfg.traffic_poll, Ev::Traffic);
        q.push(SimTime::ZERO + self.cfg.rx_poll, Ev::RxPoll);
        q.push(SimTime::ZERO + self.cfg.tx_poll, Ev::TxPoll);
        q.push(SimTime::ZERO + self.cfg.wakeup_period, Ev::Wakeup);
        q.push(
            SimTime::ZERO + self.cfg.nfvnice.load.sample_period,
            Ev::Monitor,
        );
        q.push(SimTime::ZERO + Duration::from_secs(1), Ev::StatsRoll);
        let actions = std::mem::take(&mut self.actions);
        for (idx, (t, _)) in actions.iter().enumerate() {
            if *t <= end {
                q.push(*t, Ev::Action { idx });
            }
        }
        self.actions = actions;
        // Initial TCP window.
        for i in 0..self.tcp.len() {
            self.pump_tcp(i, SimTime::ZERO);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev, end: SimTime) {
        self.sanitizer.on_event(now, ev_tag(&ev));
        match ev {
            Ev::Traffic => {
                self.do_traffic(now);
                self.reschedule(now, self.cfg.traffic_poll, end, Ev::Traffic);
            }
            Ev::RxPoll => {
                self.do_rx(now);
                self.reschedule(now, self.cfg.rx_poll, end, Ev::RxPoll);
            }
            Ev::TxPoll => {
                self.do_tx(now);
                self.reschedule(now, self.cfg.tx_poll, end, Ev::TxPoll);
            }
            Ev::Wakeup => {
                self.do_wakeup(now);
                self.reschedule(now, self.cfg.wakeup_period, end, Ev::Wakeup);
            }
            Ev::Monitor => {
                self.do_monitor(now);
                self.reschedule(now, self.cfg.nfvnice.load.sample_period, end, Ev::Monitor);
            }
            Ev::StatsRoll => {
                self.platform.roll_meters(now);
                self.snapshot_series(now.since(self.last_roll).as_secs_f64());
                self.last_roll = now;
                self.reschedule(now, Duration::from_secs(1), end, Ev::StatsRoll);
            }
            Ev::CoreRun { core } => self.do_core_run(core, now),
            Ev::BatchDone { core } => self.do_batch_done(core, now),
            Ev::IoComplete { nf } => self.do_io_complete(nf, now),
            Ev::TcpFeedback { src, fb } => {
                self.tcp[src].on_feedback(fb, now);
                self.pump_tcp(src, now);
            }
            Ev::Action { idx } => {
                let action = self.actions[idx].1.clone();
                match action {
                    Action::SetCost(nf, cost) => {
                        self.platform.nfs[nf.index()].spec.cost = cost;
                    }
                }
            }
        }
        if self.sanitizer.wants_conservation() {
            let ledger = invariants::conservation_ledger(&self.platform);
            self.sanitizer.check_conservation(
                now,
                ledger.classified,
                ledger.delivered,
                ledger.dropped,
                ledger.in_flight,
            );
            if !self.platform.packets_accounted() {
                let detail = format!(
                    "mempool in-use ({}) disagrees with ring/outbox/batch occupancy",
                    self.platform.mempool.in_use()
                );
                self.sanitizer
                    .record(Severity::Error, "conservation", now, detail);
            }
        }
    }

    fn reschedule(&mut self, now: SimTime, period: Duration, end: SimTime, ev: Ev) {
        let next = now + period;
        if next <= end {
            self.queue.push(next, ev);
        }
    }

    // ------------------------------------------------------------------
    // handlers
    // ------------------------------------------------------------------

    fn do_traffic(&mut self, now: SimTime) {
        let mut frames = std::mem::take(&mut self.scratch_frames);
        frames.clear();
        // Rotate the source order each poll: with a fixed order, the first
        // flow's burst would systematically win the last ring slots when a
        // shared NF's queue hovers near full, starving later flows.
        let n = self.udp.len();
        if n > 0 {
            self.traffic_rotor = (self.traffic_rotor + 1) % n;
            for i in 0..n {
                let idx = (self.traffic_rotor + i) % n;
                self.udp[idx].emit(now, self.cfg.traffic_poll, &mut self.rng, &mut frames);
            }
        }
        for f in frames.drain(..) {
            // UDP is non-responsive: NIC overflow is silent loss.
            if !self.platform.nic.deliver(f) {
                self.trace_nic_overflow(now);
            }
        }
        self.scratch_frames = frames;
    }

    fn trace_nic_overflow(&self, now: SimTime) {
        // Classification has not happened yet, so flow/chain are unknown.
        self.trace.record(
            now,
            TraceKind::PacketDrop {
                cause: DropCause::NicOverflow,
                flow: NO_ID,
                chain: NO_ID,
                nf: NO_ID,
            },
        );
    }

    fn pump_tcp(&mut self, src: usize, now: SimTime) {
        let mut frames = std::mem::take(&mut self.scratch_frames);
        frames.clear();
        self.tcp[src].pump(now, &mut frames);
        let rtt = self.tcp[src].rtt;
        for f in frames.drain(..) {
            if !self.platform.nic.deliver(f) {
                self.trace_nic_overflow(now);
                // Hardware drop: the sender finds out a round trip later.
                self.queue.push(
                    now + rtt,
                    Ev::TcpFeedback {
                        src,
                        fb: Feedback::Dropped { seq: f.seq },
                    },
                );
            }
        }
        self.scratch_frames = frames;
    }

    fn do_rx(&mut self, now: SimTime) {
        let Simulation {
            platform,
            bp,
            cfg,
            scratch_tcp,
            ..
        } = self;
        scratch_tcp.clear();
        let bp_on = cfg.nfvnice.backpressure;
        let mut admit = |chain: ChainId, _flow: FlowId| !bp_on || !bp.is_throttled(chain);
        platform.rx_poll(now, &mut admit, scratch_tcp);
        self.dispatch_tcp_events(now);
    }

    fn do_tx(&mut self, now: SimTime) {
        let Simulation {
            platform,
            ecn,
            cfg,
            scratch_tcp,
            scratch_woken,
            ..
        } = self;
        scratch_tcp.clear();
        scratch_woken.clear();
        let ecn_on = cfg.nfvnice.ecn;
        let mut mark = |nf: NfId| {
            if ecn_on && ecn.should_mark(nf.index()) {
                ecn.note_mark();
                true
            } else {
                false
            }
        };
        platform.tx_drain(now, &mut mark, scratch_tcp, scratch_woken);
        let woken = std::mem::take(&mut self.scratch_woken);
        for nf in &woken {
            if self.platform.wake_nf(*nf, now) {
                self.kick(self.platform.core_of(*nf), now);
            }
        }
        self.scratch_woken = woken;
        self.dispatch_tcp_events(now);
    }

    fn dispatch_tcp_events(&mut self, now: SimTime) {
        let events = std::mem::take(&mut self.scratch_tcp);
        for ev in &events {
            let Some(&src) = self.tcp_by_flow.get(&ev.flow) else {
                continue;
            };
            let rtt = self.tcp[src].rtt;
            let fb = match ev.kind {
                TcpEventKind::Delivered { ce } => Feedback::Delivered { seq: ev.seq, ce },
                TcpEventKind::Dropped => Feedback::Dropped { seq: ev.seq },
            };
            self.queue.push(now + rtt, Ev::TcpFeedback { src, fb });
        }
        self.scratch_tcp = events;
    }

    fn do_wakeup(&mut self, now: SimTime) {
        let bp_on = self.cfg.nfvnice.backpressure;
        if bp_on {
            // Control half of backpressure: run each NF through the
            // watermark state machine (detection happened implicitly via
            // ring occupancy).
            let Simulation {
                platform,
                bp,
                sanitizer,
                cfg,
                ..
            } = self;
            for idx in 0..platform.nfs.len() {
                let nf = &platform.nfs[idx];
                let head_age = platform.rx_head_age(NfId(idx as u32), now);
                bp.evaluate(
                    now,
                    NfId(idx as u32),
                    nf.rx.len(),
                    nf.rx.capacity(),
                    head_age,
                    nf.pending_by_chain.keys(),
                );
                // Hysteresis audit: a HIGH↔LOW flip faster than the
                // queuing-time threshold means the watermark gap is not
                // filtering transients.
                let throttled = matches!(bp.state(NfId(idx as u32)), BpState::Throttle);
                sanitizer.note_watermark(idx, now, throttled, cfg.nfvnice.bp.qtime_threshold);
            }
        }
        // Wake / yield classification.
        for idx in 0..self.platform.nfs.len() {
            let suppressed = bp_on && self.nf_suppressed(idx);
            if suppressed {
                self.audit_suppression(idx, now);
            }
            let nf = &mut self.platform.nfs[idx];
            use nfv_platform::BlockReason::*;
            match nf.blocked {
                Some(EmptyRx) | Some(Backpressure) if nf.pending() > 0 && !suppressed => {
                    let id = NfId(idx as u32);
                    self.platform.wake_nf(id, now);
                    self.kick(self.platform.core_of(id), now);
                }
                // Running or runnable: if its whole backlog is doomed
                // (every pending chain has a bottleneck downstream),
                // tell the NF to relinquish the CPU.
                None if suppressed && !nf.yield_flag => {
                    nf.yield_flag = true;
                    self.trace
                        .record(now, TraceKind::NfYield { nf: idx as u32 });
                }
                _ => {}
            }
        }
    }

    /// Sanitizer cross-check of a suppression decision: NF `idx` is about
    /// to be suppressed, so every chain pending at it must have an active
    /// bottleneck *strictly downstream*. If the NF is itself a throttler
    /// of one of those chains with nothing downstream of it, the wakeup
    /// logic just parked the only NF that can drain the congestion.
    fn audit_suppression(&mut self, idx: usize, now: SimTime) {
        if !self.sanitizer.wants_suppression() {
            return;
        }
        let me = NfId(idx as u32);
        let mut deadlocked: Vec<usize> = Vec::new();
        {
            let nf = &self.platform.nfs[idx];
            for &c in nf.pending_by_chain.keys() {
                let Some(my_pos) = self.platform.chains.first_position(c, me) else {
                    continue;
                };
                let me_throttler = self.bp.throttlers(c).any(|b| b == me);
                let downstream = self.bp.throttlers(c).any(|b| {
                    self.platform
                        .chains
                        .first_position(c, b)
                        .is_some_and(|p| p > my_pos)
                });
                if me_throttler && !downstream {
                    deadlocked.push(c.index());
                }
            }
        }
        for chain in deadlocked {
            self.sanitizer.note_bottleneck_suppressed(now, idx, chain);
        }
    }

    /// Is every packet queued at NF `idx` part of a chain with an active
    /// bottleneck *downstream* of this NF? Such work would only feed an
    /// already-overflowing queue, so the NF is suppressed (§3.3: "the
    /// upstream NF will not execute till the downstream NF gets to consume
    /// its receive buffers"). The bottleneck NF itself — and NFs after it —
    /// must keep running so the congestion can drain.
    fn nf_suppressed(&self, idx: usize) -> bool {
        let nf = &self.platform.nfs[idx];
        if nf.pending_by_chain.is_empty() {
            return false;
        }
        let me = NfId(idx as u32);
        nf.pending_by_chain.keys().all(|&c| {
            let Some(my_pos) = self.platform.chains.first_position(c, me) else {
                return false;
            };
            self.bp.throttlers(c).any(|b| {
                self.platform
                    .chains
                    .first_position(c, b)
                    .is_some_and(|p| p > my_pos)
            })
        })
    }

    fn do_monitor(&mut self, now: SimTime) {
        self.monitor_ticks += 1;
        for idx in 0..self.platform.nfs.len() {
            let nf = &self.platform.nfs[idx];
            self.load.sample(idx, now, nf.last_ppp, nf.arrivals);
            self.ecn.observe(idx, nf.rx.len());
        }
        self.sample_metrics(now);
        let ticks_per_weight_update = (self.cfg.nfvnice.load.weight_period.as_nanos()
            / self.cfg.nfvnice.load.sample_period.as_nanos())
        .max(1);
        if self.cfg.nfvnice.cgroup_weights
            && self.monitor_ticks.is_multiple_of(ticks_per_weight_update)
        {
            for core in 0..self.cfg.platform.nf_cores {
                let entries: Vec<(usize, f64, f64)> = (0..self.platform.nfs.len())
                    .filter(|&i| self.platform.nfs[i].spec.core == core)
                    .map(|i| (i, self.load.load(i), self.platform.nfs[i].spec.priority))
                    .collect();
                if entries.len() < 2 {
                    continue; // a lone NF owns its core regardless of weight
                }
                for (idx, shares) in compute_shares(&entries, self.cfg.nfvnice.load.shares_scale) {
                    // Each effective sysfs write costs manager-thread CPU
                    // time (redundant writes are filtered for free).
                    let cost = self.platform.set_nf_shares(NfId(idx as u32), shares);
                    if cost > Duration::ZERO {
                        self.mgr_cgroup_time += cost;
                        self.trace.record(
                            now,
                            TraceKind::ShareWrite {
                                nf: idx as u32,
                                shares,
                            },
                        );
                    }
                }
            }
        }
    }

    /// One metrics sample column per monitor tick (no-op when metrics are
    /// off).
    fn sample_metrics(&mut self, now: SimTime) {
        if !self.metrics.is_on() {
            return;
        }
        self.metrics
            .begin_tick(now, self.platform.mempool.in_use() as u64);
        for idx in 0..self.platform.nfs.len() {
            let nf = &self.platform.nfs[idx];
            let id = NfId(idx as u32);
            self.metrics.record_nf(
                idx,
                nf.rx.len() as u64,
                matches!(self.bp.state(id), BpState::Throttle),
                self.platform.cgroups.shares(nf.task),
                self.load.arrival_rate_pps(idx),
                self.load.service_time_ns(idx).unwrap_or(0),
            );
        }
        for c in 0..self.platform.chains.count() {
            let chain = ChainId(c as u32);
            self.metrics.record_chain(
                c,
                self.bp.is_throttled(chain),
                self.bp.throttlers(chain).count() as u64,
            );
        }
    }

    fn kick(&mut self, core: usize, now: SimTime) {
        if self.core_active[core] {
            return;
        }
        if let Some((_task, overhead)) = self.platform.sched.dispatch(core, now) {
            self.core_active[core] = true;
            self.queue.push(now + overhead, Ev::CoreRun { core });
        }
    }

    fn do_core_run(&mut self, core: usize, now: SimTime) {
        let nf = self
            .platform
            .running_nf(core)
            .expect("CoreRun with no current task");
        match self.platform.plan_batch(nf) {
            BatchPlan::Run { duration, .. } => {
                self.queue.push(now + duration, Ev::BatchDone { core });
            }
            BatchPlan::Block(reason) => {
                self.platform.sched.block_current(core, now);
                self.platform.mark_blocked(nf, reason, now);
                self.core_active[core] = false;
                self.kick(core, now);
            }
        }
    }

    fn do_batch_done(&mut self, core: usize, now: SimTime) {
        let nf = self
            .platform
            .running_nf(core)
            .expect("BatchDone with no current task");
        let (dur, _) = self.platform.nfs[nf.index()]
            .current_batch
            .expect("BatchDone without a batch");
        self.platform.sched.charge_current(core, dur);
        let fx = self.platform.finish_batch(nf, now);
        for c in fx.flush_completions {
            self.queue.push(c, Ev::IoComplete { nf });
        }
        if let Some(t) = fx.io_wake_at {
            self.queue.push(t, Ev::IoComplete { nf });
        }
        if let Some(reason) = fx.block {
            self.platform.sched.block_current(core, now);
            self.platform.mark_blocked(nf, reason, now);
            self.core_active[core] = false;
            self.kick(core, now);
        } else if self.platform.sched.need_resched(core, now) {
            self.platform
                .sched
                .requeue_current(core, now, SwitchKind::Involuntary);
            let (_t, ov) = self
                .platform
                .sched
                .dispatch(core, now)
                .expect("resched with nonempty runqueue");
            self.queue.push(now + ov, Ev::CoreRun { core });
        } else {
            self.queue.push(now, Ev::CoreRun { core });
        }
    }

    fn do_io_complete(&mut self, nf: NfId, now: SimTime) {
        let out = self.platform.on_io_complete(nf, now);
        if let Some(c) = out.next_completion {
            self.queue.push(c, Ev::IoComplete { nf });
        }
        if out.wake && self.platform.wake_nf(nf, now) {
            self.kick(self.platform.core_of(nf), now);
        }
    }

    // ------------------------------------------------------------------
    // reporting
    // ------------------------------------------------------------------

    fn snapshot_series(&mut self, span_secs: f64) {
        if span_secs <= 0.0 {
            return;
        }
        for idx in 0..self.platform.nfs.len() {
            let task = self.platform.nfs[idx].task;
            let cpu = self.platform.sched.task(task).cpu_time;
            let delta = cpu.saturating_sub(self.cpu_snapshot[idx]);
            self.cpu_snapshot[idx] = cpu;
            self.series.cpu_pct[idx].push(delta.as_secs_f64() / span_secs * 100.0);
        }
        // Wildcard classification can add flows mid-run; grow the
        // bookkeeping (their series start at the current interval).
        while self.flow_bytes_snapshot.len() < self.platform.stats.flows.len() {
            self.flow_bytes_snapshot.push(0);
            self.series.flow_mbps.push(Vec::new());
        }
        for f in 0..self.platform.stats.flows.len() {
            let bytes = self.platform.stats.flows[f].delivered_bytes;
            let delta = bytes - self.flow_bytes_snapshot[f];
            self.flow_bytes_snapshot[f] = bytes;
            self.series.flow_mbps[f].push(delta as f64 * 8.0 / span_secs / 1e6);
        }
    }

    fn build_report(&mut self, wall: Duration) -> Report {
        let secs = wall.as_secs_f64().max(1e-9);
        let nfs: Vec<NfReport> = (0..self.platform.nfs.len())
            .map(|idx| {
                let nf = &self.platform.nfs[idx];
                let task = self.platform.sched.task(nf.task);
                NfReport {
                    nf: NfId(idx as u32),
                    name: nf.spec.name.clone(),
                    core: nf.spec.core,
                    processed: nf.processed,
                    svc_rate_pps: nf.processed as f64 / secs,
                    wasted_drops: nf.wasted_drops,
                    wasted_rate_pps: nf.wasted_drops as f64 / secs,
                    cpu_time: task.cpu_time,
                    cpu_util: task.cpu_time.as_secs_f64() / secs,
                    cswch_per_sec: task.voluntary_switches as f64 / secs,
                    nvcswch_per_sec: task.involuntary_switches as f64 / secs,
                    avg_sched_latency: task.avg_sched_latency(),
                    final_shares: self.platform.cgroups.shares(nf.task),
                    output_rate_pps: nf.processed.saturating_sub(nf.wasted_drops) as f64 / secs,
                }
            })
            .collect();
        let flows: Vec<FlowReport> = (0..self.platform.stats.flows.len())
            .map(|f| {
                let fs = &self.platform.stats.flows[f];
                FlowReport {
                    flow: FlowId(f as u32),
                    chain: self.flow_chain.get(f).copied().unwrap_or(ChainId(0)),
                    delivered: fs.delivered,
                    delivered_pps: fs.delivered as f64 / secs,
                    mbps: fs.delivered_bytes as f64 * 8.0 / secs / 1e6,
                    dropped: fs.dropped,
                    entry_drops: fs.entry_drops,
                    latency_p50: fs.latency.median().unwrap_or(Duration::ZERO),
                    latency_p99: fs.latency.percentile(99.0).unwrap_or(Duration::ZERO),
                }
            })
            .collect();
        let chains: Vec<ChainReport> = self
            .platform
            .chains
            .ids()
            .map(|c| {
                let cs = &self.platform.stats.chains[c.index()];
                ChainReport {
                    chain: c,
                    delivered: cs.delivered,
                    pps: cs.delivered as f64 / secs,
                    entry_drops: cs.entry_drops,
                }
            })
            .collect();
        let total_delivered_pps = flows.iter().map(|f| f.delivered_pps).sum();
        Report {
            wall,
            policy: self.platform.sched.policy().label(),
            variant: self.cfg.nfvnice.label().to_string(),
            nfs,
            flows,
            chains,
            total_delivered_pps,
            nic_overflow: self.platform.nic.rx_overflow_drops,
            entry_drops: self.platform.stats.entry_throttle_drops,
            total_wasted_drops: self.platform.nfs.iter().map(|nf| nf.wasted_drops).sum(),
            cgroup_writes: self.platform.cgroups.writes,
            cgroup_write_time: self.mgr_cgroup_time,
            throttle_events: self.bp.throttle_events,
            ecn_marks: self.ecn.marks,
            trace_digest: self.sanitizer.digest(),
            series: std::mem::take(&mut self.series),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NfvniceConfig;
    use nfv_sched::Policy;

    fn base_cfg(cores: usize, policy: Policy, nfvnice: NfvniceConfig) -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.platform.nf_cores = cores;
        cfg.platform.policy = policy;
        cfg.nfvnice = nfvnice;
        cfg
    }

    #[test]
    fn single_nf_underload_delivers_everything() {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
        let nf = sim.add_nf(NfSpec::new("bridge", 0, 250));
        let chain = sim.add_chain(&[nf]);
        // 100 kpps against a ~10.4 Mpps capacity NF: zero loss expected.
        sim.add_udp(chain, 100_000.0, 64);
        let r = sim.run(Duration::from_millis(200));
        let f = &r.flows[0];
        let offered = 20_000; // 100 kpps * 0.2 s
        assert!(
            f.delivered as i64 >= offered - 300,
            "delivered {}",
            f.delivered
        );
        assert_eq!(f.dropped, 0);
        assert_eq!(r.total_wasted_drops, 0);
        assert!(invariants::packets_conserved(&sim.platform));
    }

    #[test]
    fn overloaded_nf_is_capacity_bound() {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
        // 26k cycles/packet at 2.6 GHz = 100k pps capacity.
        let nf = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
        let chain = sim.add_chain(&[nf]);
        sim.add_udp(chain, 1_000_000.0, 64); // 10x overload
        let r = sim.run(Duration::from_millis(200));
        let got = r.flows[0].delivered_pps;
        // ±22.5% of 90 kpps ≈ the sustainable floor … capacity ceiling
        // window (70–110 kpps).
        assert!(invariants::within_pct(got, 90_000.0, 22.5), "rate {got}");
        assert!(invariants::packets_conserved(&sim.platform));
    }

    #[test]
    fn sanitizer_audits_overloaded_chain_clean() {
        // Full NFVnice under 10x overload with every runtime check on:
        // conservation at each event, watermark hysteresis, suppression
        // safety. A clean pass means the invariants hold throughout the
        // run, not just at the end.
        let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::full());
        cfg.sanitizer = crate::SanitizerConfig::audit();
        let mut sim = Simulation::new(cfg);
        let a = sim.add_nf(NfSpec::new("light", 0, 120));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 26_000));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp(chain, 1_000_000.0, 64);
        let r = sim.run(Duration::from_millis(100));
        sim.sanitizer.assert_clean();
        assert!(invariants::packets_conserved(&sim.platform));
        assert!(sim.sanitizer.event_count() > 0);
        assert_eq!(r.trace_digest, sim.sanitizer.digest());
    }

    #[test]
    fn trace_digest_is_reproducible_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut cfg = base_cfg(1, Policy::CfsNormal, NfvniceConfig::full());
            cfg.seed = seed;
            let mut sim = Simulation::new(cfg);
            let nf = sim.add_nf(NfSpec::new("bridge", 0, 250));
            let chain = sim.add_chain(&[nf]);
            // Poisson arrivals so the seed actually shapes the event trace
            // (a pure constant-rate flow consumes no randomness).
            sim.add_udp_with(chain, 200_000.0, 64, |f| f.poisson());
            sim.run(Duration::from_millis(50)).trace_digest
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn chain_delivery_traverses_all_nfs() {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::off()));
        let a = sim.add_nf(NfSpec::new("a", 0, 100));
        let b = sim.add_nf(NfSpec::new("b", 0, 100));
        let c = sim.add_nf(NfSpec::new("c", 0, 100));
        let chain = sim.add_chain(&[a, b, c]);
        sim.add_udp(chain, 50_000.0, 64);
        let r = sim.run(Duration::from_millis(100));
        assert!(r.flows[0].delivered > 0);
        // every NF saw every delivered packet
        for nf in &r.nfs {
            assert!(nf.processed >= r.flows[0].delivered, "{}", nf.name);
        }
    }

    #[test]
    fn backpressure_sheds_at_entry_and_prevents_wasted_work() {
        let run = |nfvnice: NfvniceConfig| {
            let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, nfvnice));
            let cheap = sim.add_nf(NfSpec::new("cheap", 0, 100));
            let costly = sim.add_nf(NfSpec::new("costly", 0, 10_000));
            let chain = sim.add_chain(&[cheap, costly]);
            sim.add_udp(chain, 5_000_000.0, 64);
            sim.run(Duration::from_millis(300))
        };
        let default = run(NfvniceConfig::off());
        let nice = run(NfvniceConfig::full());
        assert!(
            default.total_wasted_drops > 100_000,
            "default wastes: {}",
            default.total_wasted_drops
        );
        assert!(
            nice.total_wasted_drops < default.total_wasted_drops / 20,
            "nfvnice {} vs default {}",
            nice.total_wasted_drops,
            default.total_wasted_drops
        );
        assert!(nice.entry_drops > 0, "shed at entry instead");
        assert!(nice.throttle_events > 0);
        // and throughput should not be worse
        assert!(nice.total_delivered_pps > default.total_delivered_pps * 0.8);
    }

    #[test]
    fn cgroup_weights_give_rate_cost_fairness() {
        // Two NFs, same arrival rate, 3x cost difference, one core.
        let run = |nfvnice: NfvniceConfig| {
            let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, nfvnice));
            let light = sim.add_nf(NfSpec::new("light", 0, 300));
            let heavy = sim.add_nf(NfSpec::new("heavy", 0, 900));
            let c1 = sim.add_chain(&[light]);
            let c2 = sim.add_chain(&[heavy]);
            // total demand = 4M*300 + 4M*900 cycles = 4.8G > 2.6G: overload
            sim.add_udp(c1, 4_000_000.0, 64);
            sim.add_udp(c2, 4_000_000.0, 64);
            sim.run(Duration::from_millis(400))
        };
        let nice = run(NfvniceConfig::cgroups_only());
        // rate-cost fairness: equal output rates despite 3x cost gap
        let ratio = nice.flows[0].delivered_pps / nice.flows[1].delivered_pps;
        assert!((0.8..1.4).contains(&ratio), "nfvnice output ratio {ratio}");
        let default = run(NfvniceConfig::off());
        let dratio = default.flows[0].delivered_pps / default.flows[1].delivered_pps;
        assert!(dratio > 1.8, "CFS favors the cheap NF: {dratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::full()));
            let a = sim.add_nf(NfSpec::new("a", 0, 120));
            let b = sim.add_nf(NfSpec::new("b", 0, 550));
            let chain = sim.add_chain(&[a, b]);
            sim.add_udp_with(chain, 3_000_000.0, 64, |f| f.poisson());
            let r = sim.run(Duration::from_millis(100));
            (r.flows[0].delivered, r.total_wasted_drops, r.entry_drops)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mid_run_action_changes_cost() {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
        let nf = sim.add_nf(NfSpec::new("morph", 0, 100));
        let chain = sim.add_chain(&[nf]);
        sim.add_udp(chain, 200_000.0, 64);
        // After 50ms the NF becomes 100x more expensive (10k cycles →
        // 260 kpps capacity — still above offered; then 100k → 26 kpps).
        sim.at(
            SimTime::from_millis(50),
            Action::SetCost(nf, CostModel::Fixed(100_000)),
        );
        let r = sim.run(Duration::from_millis(100));
        // delivered ≈ 50ms*200k + 50ms*26k ≈ 10k + 1.3k
        let d = r.flows[0].delivered;
        assert!((9_000..13_500).contains(&d), "delivered {d}");
    }

    #[test]
    fn shared_nf_keeps_serving_live_chain_under_throttle() {
        // Fig 8/9 in miniature: NF "shared" feeds both a clean chain and a
        // chain with a downstream bottleneck. Throttling the congested
        // chain must not suppress the shared NF — the clean chain keeps
        // its full rate.
        let mut sim = Simulation::new(base_cfg(2, Policy::CfsBatch, NfvniceConfig::full()));
        let shared = sim.add_nf(NfSpec::new("shared", 0, 300));
        let bneck = sim.add_nf(NfSpec::new("bneck", 1, 26_000)); // 100 kpps
        let clean = sim.add_chain(&[shared]);
        let congested = sim.add_chain(&[shared, bneck]);
        sim.add_udp(clean, 1_000_000.0, 64);
        sim.add_udp(congested, 1_000_000.0, 64);
        let r = sim.run(Duration::from_millis(300));
        assert!(r.throttle_events > 0, "bottleneck must throttle");
        assert!(
            r.flows[0].delivered_pps > 950_000.0,
            "clean flow degraded: {}",
            r.flows[0].delivered_pps
        );
        assert!(
            // ±33.4% of 105 kpps ≈ the old 70–140 kpps bottleneck window.
            invariants::within_pct(r.flows[1].delivered_pps, 105_000.0, 33.4),
            "congested flow should ride the bottleneck: {}",
            r.flows[1].delivered_pps
        );
    }

    #[test]
    fn bottleneck_nf_itself_is_never_suppressed() {
        // The NF whose queue triggered the throttle must keep draining,
        // otherwise the throttle never clears (deadlock regression test).
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::full()));
        let a = sim.add_nf(NfSpec::new("a", 0, 100));
        let b = sim.add_nf(NfSpec::new("b", 0, 5_000));
        let chain = sim.add_chain(&[a, b]);
        sim.add_udp(chain, 10_000_000.0, 64);
        let r = sim.run(Duration::from_millis(300));
        assert!(r.throttle_events > 0);
        // sustained delivery at roughly the bottleneck rate (≈ 510 kpps
        // capacity for NF b minus scheduling overhead)
        assert!(
            r.flows[0].delivered_pps > 300_000.0,
            "chain starved: {}",
            r.flows[0].delivered_pps
        );
    }

    #[test]
    fn cgroup_write_cost_charged_to_manager_time() {
        // Each effective cpu.shares write costs ~5 µs of manager CPU time;
        // the engine's weight-update path must account every one of them
        // (and nothing else — redundant writes are free).
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsBatch, NfvniceConfig::cgroups_only()));
        let a = sim.add_nf(NfSpec::new("light", 0, 120));
        let b = sim.add_nf(NfSpec::new("heavy", 0, 2_400));
        let ca = sim.add_chain(&[a]);
        let cb = sim.add_chain(&[b]);
        sim.add_udp(ca, 500_000.0, 64);
        sim.add_udp(cb, 500_000.0, 64);
        let r = sim.run(Duration::from_millis(100));
        assert!(r.cgroup_writes > 0, "no weight updates happened");
        assert_eq!(
            r.cgroup_write_time,
            nfv_sched::CgroupCpu::DEFAULT_WRITE_COST.times(r.cgroup_writes),
        );
    }

    #[test]
    fn ecn_marks_only_ect0_packets() {
        // Non-ECT traffic through a congested NF must never be CE-marked
        // even with the marker on: the platform checks the codepoint
        // before consulting the policy, so the marks counter stays zero.
        let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::off());
        cfg.nfvnice.ecn = true;
        let mut sim = Simulation::new(cfg);
        let a = sim.add_nf(NfSpec::new("fast", 0, 100));
        let slow = sim.add_nf(NfSpec::new("slow", 0, 26_000));
        let chain = sim.add_chain(&[a, slow]);
        sim.add_udp(chain, 1_000_000.0, 64); // NotEct by construction
        let r = sim.run(Duration::from_millis(200));
        assert!(
            r.flows[0].dropped + r.total_wasted_drops + r.nic_overflow > 0,
            "scenario failed to congest the slow NF"
        );
        assert_eq!(r.ecn_marks, 0, "NotEct packets must not be CE-marked");
    }

    #[test]
    fn ecn_disabled_never_marks() {
        let mut cfg = base_cfg(1, Policy::CfsBatch, NfvniceConfig::off());
        cfg.nfvnice.ecn = false;
        let mut sim = Simulation::new(cfg);
        let slow = sim.add_nf(NfSpec::new("slow", 0, 5_000));
        let chain = sim.add_chain(&[slow]);
        sim.add_tcp_with(chain, 1500, Duration::from_micros(100), |t| t.with_ecn());
        let r = sim.run(Duration::from_millis(200));
        assert_eq!(r.ecn_marks, 0);
    }

    #[test]
    fn tcp_flow_reaches_window_limited_rate() {
        let mut sim = Simulation::new(base_cfg(1, Policy::CfsNormal, NfvniceConfig::off()));
        let nf = sim.add_nf(NfSpec::new("fwd", 0, 200));
        let chain = sim.add_chain(&[nf]);
        let flow = sim.add_tcp_with(chain, 1500, Duration::from_micros(100), |s| {
            s.with_max_cwnd(33.0)
        });
        let r = sim.run(Duration::from_millis(500));
        // cap = 33 * 1500B * 8 / 100us = 3.96 Gbps
        let mbps = r.flows[flow.index()].mbps;
        assert!((3_000.0..4_200.0).contains(&mbps), "tcp rate {mbps} Mbps");
    }
}
