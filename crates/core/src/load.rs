//! Load estimation and rate-cost proportional CPU share computation (§3.2,
//! §3.5 of the paper).
//!
//! `libnf` samples each NF's per-packet processing time (our platform
//! observes it per batch); the monitor thread ingests one sample per NF per
//! millisecond into a 100 ms moving window and uses the *median* as the
//! service-time estimate `s` — robust to outliers from context switches and
//! I/O. Arrival rate `λ` is counted per tick over the same window. Then
//!
//! ```text
//! load(i)   = λᵢ · sᵢ                      (offered CPU utilization)
//! sharesᵢ   = priorityᵢ · load(i) / Σ load(core)   (normalized per core)
//! ```
//!
//! Shares are written through the cgroup controller every 10 ms (each
//! write costs ~5 µs of sysfs time, which is why they are batched).

use nfv_des::{Duration, SimTime, WindowedMedian};
use std::collections::VecDeque;

/// Tunables for the estimator.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Sampling period of the monitor thread (paper: 1 ms → 1000 Hz).
    pub sample_period: Duration,
    /// How often cgroup weights are written (paper: every 10 ms).
    pub weight_period: Duration,
    /// Moving window for the service-time median and arrival rate
    /// (paper: 100 ms).
    pub window: Duration,
    /// Scale such that shares average ~1024 per NF on a core.
    pub shares_scale: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sample_period: Duration::from_millis(1),
            weight_period: Duration::from_millis(10),
            window: Duration::from_millis(100),
            shares_scale: 1024,
        }
    }
}

/// Rolling per-NF load state.
#[derive(Debug)]
struct NfLoad {
    svc_ns: WindowedMedian,
    arrivals: VecDeque<(SimTime, u64)>,
    arrivals_in_window: u64,
    last_arrival_counter: u64,
}

/// The monitor-thread estimator for all NFs.
#[derive(Debug)]
pub struct LoadMonitor {
    cfg: LoadConfig,
    nfs: Vec<NfLoad>,
}

impl LoadMonitor {
    /// Estimator for `num_nfs` NFs.
    pub fn new(cfg: LoadConfig, num_nfs: usize) -> Self {
        LoadMonitor {
            nfs: (0..num_nfs)
                .map(|_| NfLoad {
                    svc_ns: WindowedMedian::new(cfg.window),
                    arrivals: VecDeque::new(),
                    arrivals_in_window: 0,
                    last_arrival_counter: 0,
                })
                .collect(),
            cfg,
        }
    }

    /// Append state for one more NF (elastic scale-out registers replicas
    /// after the estimator was sized at start-of-run).
    pub fn grow(&mut self) {
        self.nfs.push(NfLoad {
            svc_ns: WindowedMedian::new(self.cfg.window),
            arrivals: VecDeque::new(),
            arrivals_in_window: 0,
            last_arrival_counter: 0,
        });
    }

    /// Number of NFs tracked.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True when no NFs are tracked.
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// Ingest one monitor tick for NF `idx`: the latest observed per-packet
    /// time and the NF's cumulative arrival counter.
    pub fn sample(&mut self, idx: usize, now: SimTime, last_ppp: Duration, arrival_counter: u64) {
        let nf = &mut self.nfs[idx];
        if last_ppp > Duration::ZERO {
            nf.svc_ns.observe(now, last_ppp.as_nanos());
        }
        let delta = arrival_counter.saturating_sub(nf.last_arrival_counter);
        nf.last_arrival_counter = arrival_counter;
        nf.arrivals.push_back((now, delta));
        nf.arrivals_in_window += delta;
        let horizon = now - self.cfg.window;
        while let Some(&(t, d)) = nf.arrivals.front() {
            if t < horizon {
                nf.arrivals_in_window -= d;
                nf.arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Forget NF `idx`'s history (NF restart): fresh service-time window
    /// and arrival window, re-baselined at `arrival_counter` so the first
    /// post-restart sample doesn't read the entire pre-crash cumulative
    /// count as one tick's worth of arrivals. Stale medians from the dead
    /// incarnation would otherwise misallocate CPU shares to the fresh
    /// process for a full window.
    pub fn reset(&mut self, idx: usize, arrival_counter: u64) {
        let nf = &mut self.nfs[idx];
        nf.svc_ns = WindowedMedian::new(self.cfg.window);
        nf.arrivals.clear();
        nf.arrivals_in_window = 0;
        nf.last_arrival_counter = arrival_counter;
    }

    /// Median service time estimate (ns/packet).
    pub fn service_time_ns(&self, idx: usize) -> Option<u64> {
        self.nfs[idx].svc_ns.median()
    }

    /// Arrival rate estimate (packets/s) over the window.
    ///
    /// During warm-up (before one full window has elapsed) the divisor is
    /// the elapsed time, not the window: dividing early counts by the full
    /// 100 ms deflates λ — and therefore the NF's cgroup shares — for the
    /// entire first window of the run. "Elapsed" is measured from the
    /// oldest *retained* sample, not from t=0: after a mid-run
    /// [`LoadMonitor::reset`] (respawn, migration) the window restarts
    /// empty, and dividing a few ms of post-reset arrivals by the wall
    /// time since boot would re-introduce exactly the deflation the
    /// warm-up rule exists to prevent.
    pub fn arrival_rate_pps(&self, idx: usize) -> f64 {
        let nf = &self.nfs[idx];
        let (Some(&(first, _)), Some(&(last, _))) = (nf.arrivals.front(), nf.arrivals.back())
        else {
            return 0.0;
        };
        // Each sample covers the tick *ending* at its timestamp, so the
        // span of n retained samples is (last − first) + one period.
        let elapsed = (last.since(first) + self.cfg.sample_period)
            .max(self.cfg.sample_period)
            .min(self.cfg.window);
        nf.arrivals_in_window as f64 / elapsed.as_secs_f64()
    }

    /// `load = λ · s` (dimensionless demanded CPU utilization).
    pub fn load(&self, idx: usize) -> f64 {
        let s = self.service_time_ns(idx).unwrap_or(0) as f64 / 1e9;
        self.arrival_rate_pps(idx) * s
    }
}

/// Compute cgroup shares for the NFs sharing one core.
///
/// `entries` are `(index, load, priority)`. Returns `(index, shares)`;
/// shares sum to ≈ `shares_scale × n` so the average NF keeps the default
/// 1024 weight, and every NF gets at least the kernel minimum so even
/// zero-load NFs can make progress (§2.1's worst-case guarantee).
pub fn compute_shares(entries: &[(usize, f64, f64)], shares_scale: u64) -> Vec<(usize, u64)> {
    let total: f64 = entries.iter().map(|&(_, l, p)| l * p).sum();
    let n = entries.len() as f64;
    entries
        .iter()
        .map(|&(i, load, prio)| {
            let share = if total > 0.0 {
                // Round to nearest: truncation loses up to n−1 shares per
                // core per write, skewing small allocations.
                (prio * load / total * shares_scale as f64 * n).round() as u64
            } else {
                shares_scale // no load anywhere: default weight
            };
            (i, share.clamp(nfv_sched::MIN_SHARES, nfv_sched::MAX_SHARES))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_service_time_over_window() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        for ms in 0..50 {
            let t = SimTime::from_millis(ms);
            m.sample(0, t, Duration::from_nanos(100), ms * 10);
        }
        assert_eq!(m.service_time_ns(0), Some(100));
    }

    #[test]
    fn outlier_resistant_median() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        for ms in 0..99 {
            let ppp = if ms == 50 {
                Duration::from_millis(5) // context-switch outlier
            } else {
                Duration::from_nanos(200)
            };
            m.sample(0, SimTime::from_millis(ms), ppp, 0);
        }
        assert_eq!(m.service_time_ns(0), Some(200));
    }

    #[test]
    fn arrival_rate_over_window() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        // 1000 arrivals per ms tick for 100 ticks = 1 Mpps
        for ms in 1..=100 {
            m.sample(0, SimTime::from_millis(ms), Duration::ZERO, ms * 1000);
        }
        let rate = m.arrival_rate_pps(0);
        assert!((rate - 1_000_000.0).abs() < 20_000.0, "rate={rate}");
    }

    #[test]
    fn warmup_rate_divides_by_elapsed_not_full_window() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        // 1000 arrivals per ms tick, but only 10 ms into the run: the true
        // rate is 1 Mpps. Dividing by the full 100 ms window used to
        // report a 10× deflated 100 kpps.
        for ms in 1..=10 {
            m.sample(0, SimTime::from_millis(ms), Duration::ZERO, ms * 1000);
        }
        let rate = m.arrival_rate_pps(0);
        assert!((rate - 1_000_000.0).abs() < 20_000.0, "rate={rate}");
    }

    #[test]
    fn old_arrivals_age_out() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        m.sample(0, SimTime::from_millis(1), Duration::ZERO, 1_000_000);
        // long quiet period
        for ms in 200..300 {
            m.sample(0, SimTime::from_millis(ms), Duration::ZERO, 1_000_000);
        }
        assert_eq!(m.arrival_rate_pps(0), 0.0);
    }

    #[test]
    fn load_is_rate_times_service() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        // λ = 100k pps, s = 1µs → load = 0.1
        for ms in 1..=100 {
            m.sample(
                0,
                SimTime::from_millis(ms),
                Duration::from_micros(1),
                ms * 100,
            );
        }
        let load = m.load(0);
        assert!((load - 0.1).abs() < 0.01, "load={load}");
    }

    #[test]
    fn reset_rebaselines_instead_of_replaying_history() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        for ms in 1..=100 {
            m.sample(
                0,
                SimTime::from_millis(ms),
                Duration::from_micros(3),
                ms * 1000,
            );
        }
        assert!(m.arrival_rate_pps(0) > 0.0);
        assert_eq!(m.service_time_ns(0), Some(3000));
        // NF restart at t=100ms: counter continuity is broken on purpose.
        m.reset(0, 100 * 1000);
        assert_eq!(m.arrival_rate_pps(0), 0.0);
        assert_eq!(m.service_time_ns(0), None);
        // First post-restart tick sees only the post-restart delta — not
        // the 100k cumulative pre-crash arrivals as one tick's burst.
        m.sample(
            0,
            SimTime::from_millis(101),
            Duration::from_micros(1),
            100 * 1000 + 500,
        );
        let nf = &m.nfs[0];
        assert_eq!(nf.arrivals_in_window, 500);
        assert_eq!(m.service_time_ns(0), Some(1000));
    }

    #[test]
    fn post_reset_warmup_divides_by_elapsed_since_reset() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        for ms in 1..=500 {
            m.sample(0, SimTime::from_millis(ms), Duration::ZERO, ms * 1000);
        }
        // Respawn/migration at t=500ms re-baselines the estimator...
        m.reset(0, 500 * 1000);
        // ...and the next 10 ticks again carry 1000 arrivals each: the
        // true rate is still 1 Mpps. Measuring "elapsed" from t=0 made the
        // divisor saturate at the full 100 ms window, reporting a 10×
        // deflated 100 kpps — the t=0 warm-up bug all over again, for
        // every warm-up that doesn't start at t=0.
        for ms in 501..=510 {
            m.sample(0, SimTime::from_millis(ms), Duration::ZERO, ms * 1000);
        }
        let rate = m.arrival_rate_pps(0);
        assert!((rate - 1_000_000.0).abs() < 20_000.0, "rate={rate}");
    }

    #[test]
    fn grow_appends_fresh_estimator_state() {
        let mut m = LoadMonitor::new(LoadConfig::default(), 1);
        assert_eq!(m.len(), 1);
        m.grow();
        assert_eq!(m.len(), 2);
        assert_eq!(m.arrival_rate_pps(1), 0.0);
        m.sample(1, SimTime::from_millis(1), Duration::from_micros(1), 100);
        assert!(m.arrival_rate_pps(1) > 0.0);
    }

    #[test]
    fn shares_proportional_to_load() {
        // Fig 1b's desired outcome: cost ratio 2:1 at equal rates → 2:1 CPU.
        let shares = compute_shares(&[(0, 0.6, 1.0), (1, 0.3, 1.0)], 1024);
        let (s0, s1) = (shares[0].1 as i64, shares[1].1 as i64);
        assert!((s0 - 2 * s1).abs() <= 2, "ratio off: {s0} vs 2×{s1}");
        // With round-to-nearest the total stays within one share of the
        // scale (truncation used to lose up to n−1 shares per write).
        let sum: u64 = shares.iter().map(|&(_, s)| s).sum();
        assert!((sum as i64 - 2048).abs() <= 1, "sum={sum}");
    }

    #[test]
    fn priority_scales_share() {
        let shares = compute_shares(&[(0, 0.5, 2.0), (1, 0.5, 1.0)], 1024);
        assert!((shares[0].1 as f64 / shares[1].1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn zero_load_gets_minimum_not_zero() {
        let shares = compute_shares(&[(0, 0.9, 1.0), (1, 0.0, 1.0)], 1024);
        assert_eq!(shares[1].1, nfv_sched::MIN_SHARES);
        assert!(shares[0].1 > 1024);
    }

    #[test]
    fn no_load_anywhere_defaults() {
        let shares = compute_shares(&[(0, 0.0, 1.0), (1, 0.0, 1.0)], 1024);
        assert!(shares.iter().all(|&(_, s)| s == 1024));
    }

    #[test]
    fn extreme_diversity_clamped_to_kernel_range() {
        // diversity level 6 (Fig 15b): costs 1:2:5:20:40:60
        let costs = [1.0, 2.0, 5.0, 20.0, 40.0, 60.0];
        let entries: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, c, 1.0))
            .collect();
        let shares = compute_shares(&entries, 1024);
        for w in shares.windows(2) {
            assert!(w[0].1 <= w[1].1, "monotone in load");
        }
        assert!(shares
            .iter()
            .all(|&(_, s)| (nfv_sched::MIN_SHARES..=nfv_sched::MAX_SHARES).contains(&s)));
    }
}
