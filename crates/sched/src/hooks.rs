//! The pluggable scheduling-policy seam: a sched_ext-style [`Scheduler`]
//! trait, one implementation per policy, and the generic
//! [`SchedCore`] driver that runs any of them over a [`KernelCtx`].
//!
//! The hook set mirrors sched_ext's BPF callbacks (`select_cpu`,
//! `enqueue`, `tick`, `stopping`), adapted to this model's batch-boundary
//! granularity — see DESIGN.md §12 for when each hook fires relative to
//! the platform's dispatch/charge/requeue cycle. Policies are statically
//! dispatched: the engine-facing [`OsScheduler`](crate::OsScheduler)
//! instantiates `SchedCore<PolicyDispatch>`, an enum over the concrete
//! policy impls, so no `dyn Trait` crosses the layering rule.

use crate::kernel::KernelCtx;
use crate::params::{CfsParams, Policy, SLO_DEFAULT_BUDGET};
use crate::runqueue::RunQueue;
use crate::task::{SwitchKind, TaskId, TaskState};
use nfv_des::{Duration, SimTime};

/// Why a task is being enqueued — the analogue of sched_ext's
/// `SCX_ENQ_WAKEUP` vs. re-enqueue flags. Deadline policies assign a
/// fresh job deadline only on [`EnqueueFlags::Wakeup`]; a preempted task
/// keeps the deadline of its in-flight job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueFlags {
    /// The task just became runnable (semaphore post / respawn). Starts a
    /// new job: CFS applies the sleeper placement floor, EDF/SLO assign
    /// `now + rel_deadline`.
    Wakeup,
    /// The task left the CPU but stays runnable (slice expiry, yield).
    /// Same job continues: no placement bonus, deadline preserved.
    Requeue,
}

/// A scheduling policy, expressed as hooks over the neutral
/// [`KernelCtx`]. All hooks are infallible and must be deterministic.
///
/// Hook contract (relative to the platform's batch boundaries):
/// * [`runqueue`](Scheduler::runqueue) — once per core at construction;
///   picks the queue discipline.
/// * [`select_cpu`](Scheduler::select_cpu) — on wakeup, before enqueue.
///   Tasks are core-pinned in this model, so the default returns the
///   pinned core; the hook exists so a future policy can migrate.
/// * [`enqueue`](Scheduler::enqueue) — on wakeup and requeue; computes
///   the queue key (vruntime / deadline) and inserts the task.
/// * [`wakeup_preempt`](Scheduler::wakeup_preempt) — after a wakeup
///   enqueue while the core is occupied; `true` flags `resched_pending`,
///   which takes effect at the *next* batch boundary (like a kernel
///   preempting at the next tick). Also re-consulted when a queued task
///   is parked, to decide whether the pending preemption survives.
/// * [`slice`](Scheduler::slice) — at dispatch, after the pick; the
///   returned slice arms `slice_end`.
/// * [`tick`](Scheduler::tick) — after every execution segment is
///   charged to the running task (the model's scheduler tick).
/// * [`stopping`](Scheduler::stopping) — when the running task leaves
///   the CPU; `runnable` distinguishes requeue (true) from block (false).
pub trait Scheduler {
    /// A fresh runqueue of this policy's discipline.
    fn runqueue(&self) -> RunQueue;

    /// Relative deadline granted to newly registered tasks (zero for
    /// policies without deadlines).
    fn task_rel_deadline(&self) -> Duration {
        Duration::ZERO
    }

    /// Core to run `task` on when it wakes. Tasks are pinned, so the
    /// default is the pinned core.
    fn select_cpu(&self, ctx: &KernelCtx, task: TaskId) -> usize {
        ctx.tasks[task.index()].core
    }

    /// Place `task` on `core`'s runqueue.
    fn enqueue(
        &self,
        ctx: &mut KernelCtx,
        core: usize,
        task: TaskId,
        flags: EnqueueFlags,
        now: SimTime,
    );

    /// Should the waking `contender` preempt `core`'s current task at the
    /// next boundary? Only consulted while the core is occupied.
    fn wakeup_preempt(&self, _ctx: &KernelCtx, _core: usize, _contender: TaskId) -> bool {
        false
    }

    /// Time slice granted to `task`, dispatched on `core` (the task has
    /// already been popped from the queue).
    fn slice(&self, ctx: &KernelCtx, core: usize, task: TaskId) -> Duration;

    /// An execution segment of `dur` was charged to `task` on `core`.
    fn tick(&self, _ctx: &mut KernelCtx, _core: usize, _task: TaskId, _dur: Duration) {}

    /// `task` is leaving the CPU; `runnable` is true on requeue, false on
    /// block.
    fn stopping(&self, _ctx: &mut KernelCtx, _core: usize, _task: TaskId, _runnable: bool) {}
}

/// CFS: vruntime-ordered fairness. `wakeup_preemption` distinguishes
/// `SCHED_NORMAL` (true) from `SCHED_BATCH` (false) — the bookkeeping is
/// otherwise identical.
#[derive(Debug, Clone, Copy)]
pub struct CfsSched {
    /// Preempt the current task when a waking one lags it by more than
    /// `wakeup_granularity` (CFS Normal); Batch never does.
    pub wakeup_preemption: bool,
}

/// Advance `core`'s min_vruntime floor against the task `curr_vr` that
/// is on (or just leaving) the CPU: `max(floor, min(curr, leftmost))`,
/// exactly real CFS's `update_min_vruntime`. Called from `tick` and
/// `stopping` so the floor keeps moving while a task runs alone — the
/// staleness bug this PR fixes left the floor frozen between pops,
/// letting a task that woke after a long solo run monopolize the core.
fn advance_cfs_floor(ctx: &mut KernelCtx, core: usize, curr_vr: u64) {
    let rq = &mut ctx.cores[core].rq;
    let floor = rq.leftmost_key().map_or(curr_vr, |l| curr_vr.min(l));
    rq.advance_min_vruntime(floor);
}

impl Scheduler for CfsSched {
    fn runqueue(&self) -> RunQueue {
        RunQueue::cfs()
    }

    fn enqueue(
        &self,
        ctx: &mut KernelCtx,
        core: usize,
        task: TaskId,
        flags: EnqueueFlags,
        _now: SimTime,
    ) {
        if flags == EnqueueFlags::Wakeup {
            // CFS wake placement: a sleeper resumes at no less than
            // min_vruntime − latency/2, so it gets a modest wakeup bonus
            // but cannot monopolize the core after a long sleep.
            let floor = ctx.cores[core]
                .rq
                .min_vruntime()
                .saturating_sub(ctx.cfs.latency.as_nanos() / 2);
            let t = &mut ctx.tasks[task.index()];
            t.vruntime = t.vruntime.max(floor);
        }
        let vr = ctx.tasks[task.index()].vruntime;
        ctx.cores[core].rq.insert(task, vr);
    }

    fn wakeup_preempt(&self, ctx: &KernelCtx, core: usize, contender: TaskId) -> bool {
        if !self.wakeup_preemption {
            return false;
        }
        let Some(curr) = ctx.cores[core].current else {
            return false;
        };
        let curr_vr = ctx.tasks[curr.index()].vruntime;
        let cont_vr = ctx.tasks[contender.index()].vruntime;
        curr_vr > cont_vr + ctx.cfs.wakeup_granularity.as_nanos()
    }

    fn slice(&self, ctx: &KernelCtx, core: usize, task: TaskId) -> Duration {
        let nr = ctx.cores[core].rq.len() as u64 + 1;
        let scaled_gran = ctx.cfs.min_granularity.as_nanos() * nr;
        let period = ctx.cfs.latency.max(Duration::from_nanos(scaled_gran));
        let total_weight: u64 = ctx.cores[core]
            .rq
            .iter()
            .map(|t| ctx.tasks[t.index()].weight)
            .sum::<u64>()
            + ctx.tasks[task.index()].weight;
        let share = period.as_nanos() * ctx.tasks[task.index()].weight / total_weight.max(1);
        Duration::from_nanos(share).max(ctx.cfs.min_granularity)
    }

    fn tick(&self, ctx: &mut KernelCtx, core: usize, task: TaskId, _dur: Duration) {
        let curr_vr = ctx.tasks[task.index()].vruntime;
        advance_cfs_floor(ctx, core, curr_vr);
    }

    fn stopping(&self, ctx: &mut KernelCtx, core: usize, task: TaskId, runnable: bool) {
        if runnable {
            let curr_vr = ctx.tasks[task.index()].vruntime;
            advance_cfs_floor(ctx, core, curr_vr);
        }
    }
}

/// Real-time round robin: FIFO queue, fixed quantum, weights ignored.
#[derive(Debug, Clone, Copy)]
pub struct RrSched {
    /// The fixed time slice (`RR_TIMESLICE`).
    pub quantum: Duration,
}

impl Scheduler for RrSched {
    fn runqueue(&self) -> RunQueue {
        RunQueue::rr()
    }

    fn enqueue(
        &self,
        ctx: &mut KernelCtx,
        core: usize,
        task: TaskId,
        _flags: EnqueueFlags,
        _now: SimTime,
    ) {
        let vr = ctx.tasks[task.index()].vruntime;
        ctx.cores[core].rq.insert(task, vr); // key ignored by the FIFO
    }

    fn slice(&self, _ctx: &KernelCtx, _core: usize, _task: TaskId) -> Duration {
        self.quantum
    }
}

/// Slice long enough to never expire within a simulated run (one year);
/// used by policies whose tasks only leave the CPU voluntarily or via
/// wakeup preemption.
const SLICE_UNLIMITED: Duration = Duration::from_secs(31_536_000);

/// Cooperative FIFO: tasks run until they voluntarily yield.
#[derive(Debug, Clone, Copy)]
pub struct CoopSched;

impl Scheduler for CoopSched {
    fn runqueue(&self) -> RunQueue {
        RunQueue::rr()
    }

    fn enqueue(
        &self,
        ctx: &mut KernelCtx,
        core: usize,
        task: TaskId,
        _flags: EnqueueFlags,
        _now: SimTime,
    ) {
        let vr = ctx.tasks[task.index()].vruntime;
        ctx.cores[core].rq.insert(task, vr); // key ignored by the FIFO
    }

    fn slice(&self, _ctx: &KernelCtx, _core: usize, _task: TaskId) -> Duration {
        SLICE_UNLIMITED
    }
}

/// Earliest-deadline-first, also backing the SLO policy. Each wakeup
/// starts a job with absolute deadline `now + rel_deadline`; the queue is
/// deadline-ordered and an earlier-deadline waker preempts at the next
/// boundary. Non-preemptive between boundaries (slices never expire),
/// matching the batch-granularity contract of the other policies.
#[derive(Debug, Clone, Copy)]
pub struct EdfSched {
    /// Relative deadline handed to tasks registered without an explicit
    /// budget: the uniform EDF period, or [`SLO_DEFAULT_BUDGET`] under
    /// [`Policy::Slo`] (budgeted tasks are tightened afterwards via
    /// [`OsScheduler::set_task_budget`](crate::OsScheduler::set_task_budget)).
    pub default_deadline: Duration,
}

impl Scheduler for EdfSched {
    fn runqueue(&self) -> RunQueue {
        RunQueue::edf()
    }

    fn task_rel_deadline(&self) -> Duration {
        self.default_deadline
    }

    fn enqueue(
        &self,
        ctx: &mut KernelCtx,
        core: usize,
        task: TaskId,
        flags: EnqueueFlags,
        now: SimTime,
    ) {
        if flags == EnqueueFlags::Wakeup {
            let t = &mut ctx.tasks[task.index()];
            t.deadline = (now + t.rel_deadline).as_nanos();
        }
        let d = ctx.tasks[task.index()].deadline;
        ctx.cores[core].rq.insert(task, d);
    }

    fn wakeup_preempt(&self, ctx: &KernelCtx, core: usize, contender: TaskId) -> bool {
        let Some(curr) = ctx.cores[core].current else {
            return false;
        };
        ctx.tasks[contender.index()].deadline < ctx.tasks[curr.index()].deadline
    }

    fn slice(&self, _ctx: &KernelCtx, _core: usize, _task: TaskId) -> Duration {
        SLICE_UNLIMITED
    }
}

/// Static dispatch over the concrete policy implementations — the enum
/// the engine-facing [`OsScheduler`](crate::OsScheduler) instantiates
/// [`SchedCore`] with, keeping the whole stack `dyn`-free.
#[derive(Debug, Clone, Copy)]
pub enum PolicyDispatch {
    /// CFS Normal / Batch.
    Cfs(CfsSched),
    /// Round robin.
    Rr(RrSched),
    /// Cooperative FIFO.
    Coop(CoopSched),
    /// EDF / SLO.
    Deadline(EdfSched),
}

impl PolicyDispatch {
    /// The hook implementation for `policy`.
    pub fn for_policy(policy: Policy) -> PolicyDispatch {
        match policy {
            Policy::CfsNormal => PolicyDispatch::Cfs(CfsSched {
                wakeup_preemption: true,
            }),
            Policy::CfsBatch => PolicyDispatch::Cfs(CfsSched {
                wakeup_preemption: false,
            }),
            Policy::RoundRobin { quantum } => PolicyDispatch::Rr(RrSched { quantum }),
            Policy::Cooperative => PolicyDispatch::Coop(CoopSched),
            Policy::Edf { period } => PolicyDispatch::Deadline(EdfSched {
                default_deadline: period,
            }),
            Policy::Slo => PolicyDispatch::Deadline(EdfSched {
                default_deadline: SLO_DEFAULT_BUDGET,
            }),
        }
    }
}

impl Scheduler for PolicyDispatch {
    fn runqueue(&self) -> RunQueue {
        match self {
            PolicyDispatch::Cfs(s) => s.runqueue(),
            PolicyDispatch::Rr(s) => s.runqueue(),
            PolicyDispatch::Coop(s) => s.runqueue(),
            PolicyDispatch::Deadline(s) => s.runqueue(),
        }
    }

    fn task_rel_deadline(&self) -> Duration {
        match self {
            PolicyDispatch::Cfs(s) => s.task_rel_deadline(),
            PolicyDispatch::Rr(s) => s.task_rel_deadline(),
            PolicyDispatch::Coop(s) => s.task_rel_deadline(),
            PolicyDispatch::Deadline(s) => s.task_rel_deadline(),
        }
    }

    fn select_cpu(&self, ctx: &KernelCtx, task: TaskId) -> usize {
        match self {
            PolicyDispatch::Cfs(s) => s.select_cpu(ctx, task),
            PolicyDispatch::Rr(s) => s.select_cpu(ctx, task),
            PolicyDispatch::Coop(s) => s.select_cpu(ctx, task),
            PolicyDispatch::Deadline(s) => s.select_cpu(ctx, task),
        }
    }

    fn enqueue(
        &self,
        ctx: &mut KernelCtx,
        core: usize,
        task: TaskId,
        flags: EnqueueFlags,
        now: SimTime,
    ) {
        match self {
            PolicyDispatch::Cfs(s) => s.enqueue(ctx, core, task, flags, now),
            PolicyDispatch::Rr(s) => s.enqueue(ctx, core, task, flags, now),
            PolicyDispatch::Coop(s) => s.enqueue(ctx, core, task, flags, now),
            PolicyDispatch::Deadline(s) => s.enqueue(ctx, core, task, flags, now),
        }
    }

    fn wakeup_preempt(&self, ctx: &KernelCtx, core: usize, contender: TaskId) -> bool {
        match self {
            PolicyDispatch::Cfs(s) => s.wakeup_preempt(ctx, core, contender),
            PolicyDispatch::Rr(s) => s.wakeup_preempt(ctx, core, contender),
            PolicyDispatch::Coop(s) => s.wakeup_preempt(ctx, core, contender),
            PolicyDispatch::Deadline(s) => s.wakeup_preempt(ctx, core, contender),
        }
    }

    fn slice(&self, ctx: &KernelCtx, core: usize, task: TaskId) -> Duration {
        match self {
            PolicyDispatch::Cfs(s) => s.slice(ctx, core, task),
            PolicyDispatch::Rr(s) => s.slice(ctx, core, task),
            PolicyDispatch::Coop(s) => s.slice(ctx, core, task),
            PolicyDispatch::Deadline(s) => s.slice(ctx, core, task),
        }
    }

    fn tick(&self, ctx: &mut KernelCtx, core: usize, task: TaskId, dur: Duration) {
        match self {
            PolicyDispatch::Cfs(s) => s.tick(ctx, core, task, dur),
            PolicyDispatch::Rr(s) => s.tick(ctx, core, task, dur),
            PolicyDispatch::Coop(s) => s.tick(ctx, core, task, dur),
            PolicyDispatch::Deadline(s) => s.tick(ctx, core, task, dur),
        }
    }

    fn stopping(&self, ctx: &mut KernelCtx, core: usize, task: TaskId, runnable: bool) {
        match self {
            PolicyDispatch::Cfs(s) => s.stopping(ctx, core, task, runnable),
            PolicyDispatch::Rr(s) => s.stopping(ctx, core, task, runnable),
            PolicyDispatch::Coop(s) => s.stopping(ctx, core, task, runnable),
            PolicyDispatch::Deadline(s) => s.stopping(ctx, core, task, runnable),
        }
    }
}

/// The generic driver: one shared control flow running any [`Scheduler`]
/// over a [`KernelCtx`]. Mirrors the `SchedCore<S>` pattern from
/// sched_ext userspace models — the driver owns sequencing and state
/// transitions, the policy owns every decision.
#[derive(Debug)]
pub struct SchedCore<S: Scheduler> {
    /// The neutral kernel state the hooks operate on.
    pub ctx: KernelCtx,
    scheduler: S,
}

impl<S: Scheduler> SchedCore<S> {
    /// A driver for `num_cores` cores under `scheduler`.
    pub fn new(num_cores: usize, scheduler: S, cfs: CfsParams, cs_cost: Duration) -> Self {
        let ctx = KernelCtx::new(num_cores, || scheduler.runqueue(), cfs, cs_cost);
        SchedCore { ctx, scheduler }
    }

    /// Register a new task pinned to `core`, initially blocked.
    pub fn add_task(&mut self, name: impl Into<String>, core: usize) -> TaskId {
        let rel = self.scheduler.task_rel_deadline();
        self.ctx.add_task(name, core, rel)
    }

    /// Make `id` runnable (semaphore post). No-op if already runnable or
    /// running. Returns `true` if the task's core had been idle.
    pub fn wake(&mut self, id: TaskId, now: SimTime) -> bool {
        if self.ctx.tasks[id.index()].state != TaskState::Blocked {
            return false;
        }
        let core = self.scheduler.select_cpu(&self.ctx, id);
        self.ctx.tasks[id.index()].state = TaskState::Runnable;
        self.ctx.tasks[id.index()].runnable_since = now;
        self.scheduler
            .enqueue(&mut self.ctx, core, id, EnqueueFlags::Wakeup, now);
        if self.ctx.cores[core].current.is_some()
            && self.scheduler.wakeup_preempt(&self.ctx, core, id)
        {
            self.ctx.cores[core].resched_pending = true;
        }
        self.ctx.cores[core].current.is_none()
    }

    /// Forcibly block a task that is not on the CPU (crash/park). Returns
    /// `false` — and does nothing — when the task is currently running.
    pub fn park(&mut self, id: TaskId, _now: SimTime) -> bool {
        let core = self.ctx.tasks[id.index()].core;
        match self.ctx.tasks[id.index()].state {
            TaskState::Running => false,
            TaskState::Blocked => true,
            TaskState::Runnable => {
                let removed = self.ctx.cores[core].rq.remove(id);
                debug_assert!(removed, "runnable task {id} missing from its runqueue");
                self.ctx.tasks[id.index()].state = TaskState::Blocked;
                // The parked task may have been the wakeup-preemption
                // trigger; a stale flag would involuntarily switch the
                // current task for a competitor that no longer exists.
                // Re-evaluate against the strongest remaining candidate
                // (the queue head) — downgrade only, never upgrade.
                if self.ctx.cores[core].resched_pending {
                    let keep = match (self.ctx.cores[core].current, self.ctx.cores[core].rq.head())
                    {
                        (Some(_), Some(head)) => {
                            self.scheduler.wakeup_preempt(&self.ctx, core, head)
                        }
                        _ => false,
                    };
                    self.ctx.cores[core].resched_pending = keep;
                }
                true
            }
        }
    }

    /// Pick the next task to run on an idle `core`. Returns the task and
    /// the context-switch overhead to charge before useful work starts.
    ///
    /// # Panics
    /// Panics if the core already has a running task.
    pub fn dispatch(&mut self, core: usize, now: SimTime) -> Option<(TaskId, Duration)> {
        assert!(
            self.ctx.cores[core].current.is_none(),
            "dispatch on busy core {core}"
        );
        let id = self.ctx.cores[core].rq.pop_next()?;
        let slice = self.scheduler.slice(&self.ctx, core, id);
        Some(self.ctx.account_dispatch(core, id, slice, now))
    }

    /// Charge `dur` of execution to the running task on `core`.
    pub fn charge_current(&mut self, core: usize, dur: Duration) {
        let id = self.ctx.charge(core, dur);
        self.scheduler.tick(&mut self.ctx, core, id, dur);
    }

    /// The current task blocks. Voluntary switch.
    pub fn block_current(&mut self, core: usize, _now: SimTime) -> TaskId {
        let id = self.ctx.block_current(core);
        self.scheduler.stopping(&mut self.ctx, core, id, false);
        id
    }

    /// The current task leaves the CPU but stays runnable. `kind` selects
    /// which context-switch counter it lands in.
    pub fn requeue_current(&mut self, core: usize, now: SimTime, kind: SwitchKind) -> TaskId {
        let id = self.ctx.begin_requeue(core, now, kind);
        self.scheduler.stopping(&mut self.ctx, core, id, true);
        self.scheduler
            .enqueue(&mut self.ctx, core, id, EnqueueFlags::Requeue, now);
        id
    }
}
