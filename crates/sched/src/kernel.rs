//! The neutral kernel context: task table, per-core runqueues and the
//! accounting *mechanism* every scheduling policy shares.
//!
//! [`KernelCtx`] deliberately contains no policy decisions — which task
//! runs next, how long its slice is, whether a wakeup preempts — those
//! live behind the [`Scheduler`](crate::hooks::Scheduler) hooks (or, for
//! the differential oracle, inline in
//! [`ClassicScheduler`](crate::classic::ClassicScheduler)). What it does
//! own is everything both backends must do identically: state
//! transitions, context-switch cost and trace records, switch counters,
//! CPU-time and scheduling-latency accounting.

use crate::params::{CfsParams, NICE0_WEIGHT};
use crate::runqueue::RunQueue;
use crate::task::{SwitchKind, Task, TaskId, TaskState};
use nfv_des::{Duration, SimTime};
use nfv_obs::{TraceKind, TraceSink};

/// Per-core scheduling state (one CPU of the machine).
#[derive(Debug)]
pub struct CoreCtx {
    /// Runnable (not running) tasks pinned here.
    pub rq: RunQueue,
    /// The task occupying the CPU, if any.
    pub current: Option<TaskId>,
    /// Absolute time the current task's slice expires.
    pub slice_end: SimTime,
    /// Set by wakeup preemption; consumed at the next segment boundary.
    pub resched_pending: bool,
    /// Task that most recently occupied the CPU (context-switch cost is
    /// only paid when the incoming task differs).
    pub last_ran: Option<TaskId>,
    /// Total busy time (any task executing).
    pub busy: Duration,
}

/// Task table, per-core state and tunables shared by every policy.
#[derive(Debug)]
pub struct KernelCtx {
    /// CFS tunables (also consulted for wake placement floors).
    pub cfs: CfsParams,
    /// Direct cost of a context switch, charged on each dispatch that
    /// changes tasks.
    pub cs_cost: Duration,
    /// All registered tasks, indexed by [`TaskId`].
    pub tasks: Vec<Task>,
    /// Per-core state.
    pub cores: Vec<CoreCtx>,
    /// Structured-event sink (off unless observability is enabled).
    pub trace: TraceSink,
}

impl KernelCtx {
    /// A context for `num_cores` cores whose runqueues are built by
    /// `mk_rq` (the policy decides the queue discipline).
    pub fn new(
        num_cores: usize,
        mk_rq: impl Fn() -> RunQueue,
        cfs: CfsParams,
        cs_cost: Duration,
    ) -> Self {
        KernelCtx {
            cfs,
            cs_cost,
            tasks: Vec::new(),
            cores: (0..num_cores)
                .map(|_| CoreCtx {
                    rq: mk_rq(),
                    current: None,
                    slice_end: SimTime::ZERO,
                    resched_pending: false,
                    last_ran: None,
                    busy: Duration::ZERO,
                })
                .collect(),
            trace: TraceSink::off(),
        }
    }

    /// Register a new task pinned to `core`, initially blocked, with the
    /// given relative deadline (zero outside the deadline policies).
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        core: usize,
        rel_deadline: Duration,
    ) -> TaskId {
        assert!(core < self.cores.len(), "core {core} out of range");
        let id = TaskId(self.tasks.len() as u32);
        let mut t = Task::new(name, core, NICE0_WEIGHT);
        // Start at the core's current min_vruntime so the first wake is fair.
        t.vruntime = self.cores[core].rq.min_vruntime();
        t.rel_deadline = rel_deadline;
        self.tasks.push(t);
        id
    }

    /// Immutable task access.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of cores managed.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Update a task's scheduler weight (cgroup `cpu.shares` write).
    pub fn set_weight(&mut self, id: TaskId, weight: u64) {
        self.tasks[id.index()].weight = weight.max(1);
    }

    /// Re-pin a *blocked* task to another core (cross-core migration,
    /// `sched_setaffinity` style). The task re-enters competition at the
    /// destination's current min_vruntime — the same placement a freshly
    /// added task gets — so it neither starves the incumbents with stale
    /// credit nor loses its wakeup bonus. Backend-neutral mechanism: both
    /// backends read `task.core` from this table at wake time.
    ///
    /// # Panics
    /// Panics when `core` is out of range or the task is not blocked
    /// (callers park first; a Running task defers to its batch boundary).
    pub fn rehome_task(&mut self, id: TaskId, core: usize) {
        assert!(core < self.cores.len(), "core {core} out of range");
        let t = &mut self.tasks[id.index()];
        assert_eq!(
            t.state,
            TaskState::Blocked,
            "rehome of a task still on a runqueue"
        );
        t.core = core;
        t.vruntime = self.cores[core].rq.min_vruntime();
    }

    /// Currently running task on `core`.
    pub fn current(&self, core: usize) -> Option<TaskId> {
        self.cores[core].current
    }

    /// Runnable tasks queued (excluding the running one) on `core`.
    pub fn queued(&self, core: usize) -> usize {
        self.cores[core].rq.len()
    }

    /// True when `core` has neither a running task nor queued work.
    pub fn core_idle(&self, core: usize) -> bool {
        let c = &self.cores[core];
        c.current.is_none() && c.rq.is_empty()
    }

    /// Total busy time accumulated on `core`.
    pub fn core_busy(&self, core: usize) -> Duration {
        self.cores[core].busy
    }

    /// True when `id` is blocked.
    pub fn is_blocked(&self, id: TaskId) -> bool {
        self.tasks[id.index()].state == TaskState::Blocked
    }

    /// Install `id` as the running task on `core` with the given slice,
    /// performing all dispatch-side accounting: context-switch cost (and
    /// trace record) when the task differs from the last occupant,
    /// scheduling-latency and dispatch counters, the Runnable → Running
    /// transition. The policy has already *picked* `id`; this is the
    /// mechanism that seats it.
    pub fn account_dispatch(
        &mut self,
        core: usize,
        id: TaskId,
        slice: Duration,
        now: SimTime,
    ) -> (TaskId, Duration) {
        let c = &mut self.cores[core];
        c.current = Some(id);
        c.slice_end = now + slice;
        c.resched_pending = false;
        let overhead = if c.last_ran == Some(id) {
            Duration::ZERO
        } else {
            self.trace.record(
                now,
                TraceKind::CtxSwitch {
                    core: core as u32,
                    task: id.0,
                },
            );
            self.cs_cost
        };
        c.last_ran = Some(id);
        let t = &mut self.tasks[id.index()];
        debug_assert_eq!(t.state, TaskState::Runnable);
        t.state = TaskState::Running;
        t.sched_latency_sum += now.since(t.runnable_since);
        t.dispatches += 1;
        (id, overhead)
    }

    /// Charge `dur` of execution to the running task on `core`, returning
    /// its id so the policy can do post-charge bookkeeping (e.g. advance
    /// the CFS min_vruntime floor against `curr`).
    pub fn charge(&mut self, core: usize, dur: Duration) -> TaskId {
        let id = self.cores[core].current.expect("charge on idle core");
        self.tasks[id.index()].charge(dur);
        self.cores[core].busy += dur;
        id
    }

    /// Must the current task on `core` be descheduled at this boundary?
    /// True when its slice has expired (and a competitor is waiting) or a
    /// wakeup preemption is pending. Pure mechanism: the policy's only
    /// influence is via `slice_end` and `resched_pending`.
    pub fn need_resched(&self, core: usize, now: SimTime) -> bool {
        let c = &self.cores[core];
        if c.current.is_none() {
            return false;
        }
        if c.rq.is_empty() {
            return false; // nobody to switch to
        }
        c.resched_pending || now >= c.slice_end
    }

    /// The current task blocks. Voluntary switch; Running → Blocked.
    pub fn block_current(&mut self, core: usize) -> TaskId {
        let id = self.cores[core].current.take().expect("block on idle core");
        let t = &mut self.tasks[id.index()];
        t.state = TaskState::Blocked;
        t.voluntary_switches += 1;
        id
    }

    /// Take the current task off the CPU and mark it Runnable again,
    /// bumping the switch counter selected by `kind`. The caller (policy)
    /// must re-enqueue it — the queue key is a policy decision.
    pub fn begin_requeue(&mut self, core: usize, now: SimTime, kind: SwitchKind) -> TaskId {
        let id = self.cores[core]
            .current
            .take()
            .expect("requeue on idle core");
        self.cores[core].resched_pending = false;
        let t = &mut self.tasks[id.index()];
        t.state = TaskState::Runnable;
        t.runnable_since = now;
        match kind {
            SwitchKind::Voluntary => t.voluntary_switches += 1,
            SwitchKind::Involuntary => t.involuntary_switches += 1,
        }
        id
    }

    /// All registered task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }
}
