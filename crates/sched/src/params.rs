//! Scheduling policies and their tunables.

use nfv_des::Duration;

/// Kernel scheduling policy for NF tasks, mirroring the three policies the
/// paper evaluates (§2.2): `SCHED_NORMAL` (CFS), `SCHED_BATCH` (CFS without
/// wakeup preemption) and `SCHED_RR` (fixed quantum round robin, evaluated
/// at both 1 ms and 100 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Completely Fair Scheduler, default config: vruntime-ordered,
    /// fine-grained preemption including preemption on wakeup.
    CfsNormal,
    /// CFS batch variant: identical bookkeeping but no wakeup preemption,
    /// so fewer involuntary context switches and longer effective quanta.
    CfsBatch,
    /// Real-time round robin with a fixed time quantum; no notion of
    /// fairness beyond equal turns, and cgroup CPU shares have no effect.
    RoundRobin {
        /// The RR time slice (`RR_TIMESLICE`); the paper uses 1 ms / 100 ms.
        quantum: Duration,
    },
    /// Cooperative FIFO scheduling: tasks run until they voluntarily yield,
    /// never preempted — the user-space "L-threads" model the paper's
    /// related-work section discusses (§5). NFVnice's backpressure still
    /// works here because yields happen at `libnf` batch boundaries.
    Cooperative,
    /// Earliest-deadline-first: every job (wake → block span) gets the
    /// same relative deadline `period`, and the task with the earliest
    /// absolute deadline runs. Not in the paper — the baseline for the
    /// SLO study the paper's rate-cost shares can't express.
    Edf {
        /// Uniform relative deadline assigned to each job on wakeup.
        period: Duration,
    },
    /// SLO-aware EDF: per-task relative deadlines are derived from
    /// configured per-chain latency budgets (cost-proportional split,
    /// tightest chain wins), so a latency-sensitive chain's NFs always
    /// outrank bulk traffic regardless of load. Tasks with no budgeted
    /// chain fall back to [`SLO_DEFAULT_BUDGET`].
    Slo,
}

impl Policy {
    /// The paper's "RR(1ms)" configuration.
    pub fn rr_1ms() -> Policy {
        Policy::RoundRobin {
            quantum: Duration::from_millis(1),
        }
    }
    /// The paper's "RR(100ms)" configuration (the kernel default
    /// `RR_TIMESLICE`).
    pub fn rr_100ms() -> Policy {
        Policy::RoundRobin {
            quantum: Duration::from_millis(100),
        }
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            Policy::CfsNormal => "NORMAL".into(),
            Policy::CfsBatch => "BATCH".into(),
            Policy::RoundRobin { quantum } => {
                format!("RR({}ms)", quantum.as_millis())
            }
            Policy::Cooperative => "COOP".into(),
            Policy::Edf { period } => {
                if period.as_nanos().is_multiple_of(1_000_000) {
                    format!("EDF({}ms)", period.as_millis())
                } else {
                    format!("EDF({}us)", period.as_nanos() / 1_000)
                }
            }
            Policy::Slo => "SLO".into(),
        }
    }
}

/// CFS tunables (`/proc/sys/kernel/sched_*`). Values are per-core; the
/// defaults are chosen so a core shared by three equal-weight tasks gives
/// each a ~1 ms slice, matching the per-second context-switch counts in
/// Tables 1–2 of the paper.
#[derive(Debug, Clone, Copy)]
pub struct CfsParams {
    /// Target scheduling latency: every runnable task should run once per
    /// this period when the core is uncongested.
    pub latency: Duration,
    /// Minimum slice any task receives, bounding how small slices get as
    /// the runqueue grows.
    pub min_granularity: Duration,
    /// Wakeup preemption granularity: a waking task preempts the current
    /// one only if its vruntime lags by more than this (CFS Normal only).
    pub wakeup_granularity: Duration,
}

impl Default for CfsParams {
    fn default() -> Self {
        CfsParams {
            latency: Duration::from_millis(3),
            min_granularity: Duration::from_micros(400),
            wakeup_granularity: Duration::from_millis(1),
        }
    }
}

/// Weight assigned to a task with default cgroup shares (nice 0).
pub const NICE0_WEIGHT: u64 = 1024;

/// Relative deadline a task falls back to under [`Policy::Slo`] when no
/// chain it serves has a configured latency budget — loose enough that
/// budgeted chains always outrank it.
pub const SLO_DEFAULT_BUDGET: Duration = Duration::from_millis(100);

/// Lower bound the kernel enforces for `cpu.shares`.
pub const MIN_SHARES: u64 = 2;
/// Upper bound the kernel enforces for `cpu.shares`.
pub const MAX_SHARES: u64 = 262_144;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Policy::CfsNormal.label(), "NORMAL");
        assert_eq!(Policy::CfsBatch.label(), "BATCH");
        assert_eq!(Policy::rr_1ms().label(), "RR(1ms)");
        assert_eq!(Policy::rr_100ms().label(), "RR(100ms)");
    }

    #[test]
    fn default_cfs_slice_for_three_tasks_is_1ms() {
        let p = CfsParams::default();
        // period/nr = 3ms/3 = 1ms, above min_granularity.
        assert_eq!(p.latency.as_nanos() / 3, 1_000_000);
        assert!(p.min_granularity < Duration::from_millis(1));
    }
}
