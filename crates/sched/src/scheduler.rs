//! The OS CPU scheduler model.
//!
//! [`OsScheduler`] owns the task table and one runqueue per core, and is
//! *driven* by the platform's event loop: the platform asks which task to
//! dispatch, charges execution time in segments (batch boundaries), and
//! checks [`OsScheduler::need_resched`] at each segment boundary. This
//! mirrors how a tick-based kernel only acts at scheduler-tick/batch
//! granularity, and keeps the model single-threaded and deterministic.
//!
//! Preemption model:
//! * **Slice expiry** — each dispatch computes a time slice (CFS: from
//!   target latency, runqueue size and weights; RR: the fixed quantum).
//!   Once `now` passes the slice end *and* another task is waiting, the
//!   platform must requeue the current task (involuntary switch).
//! * **Wakeup preemption** (CFS Normal and the deadline policies) — a
//!   task waking with sufficiently smaller vruntime (or an earlier
//!   deadline) flags `resched_pending`; the preemption takes effect at
//!   the next segment boundary, a few microseconds later, just as a real
//!   kernel preempts at the next tick or interrupt return.
//!
//! Since the trait refactor (DESIGN.md §12), `OsScheduler` is a thin
//! facade over one of two interchangeable backends selected by
//! [`SchedBackend`]: the hook-based [`SchedCore`] driving
//! [`PolicyDispatch`], or the pre-trait monolithic
//! [`ClassicScheduler`](crate::classic::ClassicScheduler) kept as a
//! differential oracle. Both must produce byte-identical runs — CI's
//! `bench-variants` matrix enforces it the same way it pins the event
//! queue backends.

use crate::classic::ClassicScheduler;
use crate::hooks::{PolicyDispatch, SchedCore};
use crate::kernel::KernelCtx;
use crate::params::{CfsParams, Policy};
use crate::task::{SwitchKind, Task, TaskId};
use nfv_des::{Duration, SimTime};
use nfv_obs::TraceSink;

/// Which scheduler implementation drives the run. Both produce
/// byte-identical output for every policy; the classic monolith exists
/// only as a differential oracle for the hook seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedBackend {
    /// The hook-based `SchedCore<PolicyDispatch>` driver (default).
    Hooks,
    /// The pre-trait monolithic scheduler (oracle; default under
    /// `--features classic-sched`).
    Classic,
}

impl SchedBackend {
    /// The build's default backend: `Hooks`, or `Classic` when the
    /// `classic-sched` feature is enabled (so CI can run the whole suite
    /// against the oracle without touching configs).
    pub fn default_backend() -> SchedBackend {
        if cfg!(feature = "classic-sched") {
            SchedBackend::Classic
        } else {
            SchedBackend::Hooks
        }
    }
}

impl Default for SchedBackend {
    fn default() -> Self {
        SchedBackend::default_backend()
    }
}

/// The two interchangeable implementations behind [`OsScheduler`].
#[derive(Debug)]
enum Backend {
    Hooks(SchedCore<PolicyDispatch>),
    Classic(ClassicScheduler),
}

/// The simulated OS scheduler for all cores of the machine.
#[derive(Debug)]
pub struct OsScheduler {
    policy: Policy,
    backend: Backend,
}

impl OsScheduler {
    /// A scheduler for `num_cores` NF cores under `policy`, using the
    /// build's default backend.
    pub fn new(num_cores: usize, policy: Policy, cfs: CfsParams, cs_cost: Duration) -> Self {
        Self::with_backend(num_cores, policy, cfs, cs_cost, SchedBackend::default())
    }

    /// A scheduler with an explicit backend choice (differential tests;
    /// `PlatformConfig::sched_backend`).
    pub fn with_backend(
        num_cores: usize,
        policy: Policy,
        cfs: CfsParams,
        cs_cost: Duration,
        backend: SchedBackend,
    ) -> Self {
        let backend = match backend {
            SchedBackend::Hooks => Backend::Hooks(SchedCore::new(
                num_cores,
                PolicyDispatch::for_policy(policy),
                cfs,
                cs_cost,
            )),
            SchedBackend::Classic => {
                Backend::Classic(ClassicScheduler::new(num_cores, policy, cfs, cs_cost))
            }
        };
        OsScheduler { policy, backend }
    }

    /// The active backend kind.
    pub fn backend(&self) -> SchedBackend {
        match &self.backend {
            Backend::Hooks(_) => SchedBackend::Hooks,
            Backend::Classic(_) => SchedBackend::Classic,
        }
    }

    fn ctx(&self) -> &KernelCtx {
        match &self.backend {
            Backend::Hooks(s) => &s.ctx,
            Backend::Classic(s) => &s.ctx,
        }
    }

    fn ctx_mut(&mut self) -> &mut KernelCtx {
        match &mut self.backend {
            Backend::Hooks(s) => &mut s.ctx,
            Backend::Classic(s) => &mut s.ctx,
        }
    }

    /// Attach a trace sink recording paid context switches.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.ctx_mut().trace = trace;
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Register a new task pinned to `core`, initially blocked.
    pub fn add_task(&mut self, name: impl Into<String>, core: usize) -> TaskId {
        match &mut self.backend {
            Backend::Hooks(s) => s.add_task(name, core),
            Backend::Classic(s) => s.add_task(name, core),
        }
    }

    /// Immutable task access.
    pub fn task(&self, id: TaskId) -> &Task {
        self.ctx().task(id)
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.ctx().num_tasks()
    }

    /// Number of cores managed.
    pub fn num_cores(&self) -> usize {
        self.ctx().num_cores()
    }

    /// Update a task's scheduler weight (cgroup `cpu.shares` write).
    /// Takes effect from the next charge/dispatch; the queue position is
    /// keyed by vruntime, which is unaffected.
    pub fn set_weight(&mut self, id: TaskId, weight: u64) {
        self.ctx_mut().set_weight(id, weight);
    }

    /// Re-pin a blocked task to another core (cross-core migration). See
    /// [`KernelCtx::rehome_task`]; identical across backends since both
    /// consult the shared task table for wake placement.
    pub fn rehome_task(&mut self, id: TaskId, core: usize) {
        self.ctx_mut().rehome_task(id, core);
    }

    /// Grant `id` a per-job latency budget: each wakeup's deadline
    /// becomes `now + budget`. Only consulted by the deadline policies
    /// ([`Policy::Edf`] / [`Policy::Slo`]); the engine derives these from
    /// per-chain SLO budgets at prime time, before any task first wakes.
    pub fn set_task_budget(&mut self, id: TaskId, budget: Duration) {
        self.ctx_mut().tasks[id.index()].rel_deadline = budget;
    }

    /// Currently running task on `core`.
    pub fn current(&self, core: usize) -> Option<TaskId> {
        self.ctx().current(core)
    }

    /// Runnable tasks queued (excluding the running one) on `core`.
    pub fn queued(&self, core: usize) -> usize {
        self.ctx().queued(core)
    }

    /// True when `core` has neither a running task nor queued runnable
    /// work. The engine's per-core domain must be inactive exactly when
    /// its core is idle and no batch event is in flight.
    pub fn core_idle(&self, core: usize) -> bool {
        self.ctx().core_idle(core)
    }

    /// Total busy time accumulated on `core`.
    pub fn core_busy(&self, core: usize) -> Duration {
        self.ctx().core_busy(core)
    }

    /// Make `id` runnable (semaphore post). No-op if already runnable or
    /// running. Returns `true` if the task's core had been idle, so the
    /// caller knows to dispatch.
    pub fn wake(&mut self, id: TaskId, now: SimTime) -> bool {
        match &mut self.backend {
            Backend::Hooks(s) => s.wake(id, now),
            Backend::Classic(s) => s.wake(id, now),
        }
    }

    /// True when `id` is blocked.
    pub fn is_blocked(&self, id: TaskId) -> bool {
        self.ctx().is_blocked(id)
    }

    /// Forcibly block a task that is not on the CPU (crash/park). A
    /// runnable task is pulled out of its core's queue; a blocked task is
    /// left blocked. Returns `false` — and does nothing — when the task is
    /// currently `Running`: the caller owns the in-flight batch and must
    /// park again at the batch boundary (via [`OsScheduler::block_current`]).
    pub fn park(&mut self, id: TaskId, now: SimTime) -> bool {
        match &mut self.backend {
            Backend::Hooks(s) => s.park(id, now),
            Backend::Classic(s) => s.park(id, now),
        }
    }

    /// Pick the next task to run on an idle `core`. Returns the task and
    /// the context-switch overhead to charge before useful work starts.
    ///
    /// # Panics
    /// Panics if the core already has a running task.
    pub fn dispatch(&mut self, core: usize, now: SimTime) -> Option<(TaskId, Duration)> {
        match &mut self.backend {
            Backend::Hooks(s) => s.dispatch(core, now),
            Backend::Classic(s) => s.dispatch(core, now),
        }
    }

    /// Charge `dur` of execution to the running task on `core`.
    pub fn charge_current(&mut self, core: usize, dur: Duration) {
        match &mut self.backend {
            Backend::Hooks(s) => s.charge_current(core, dur),
            Backend::Classic(s) => s.charge_current(core, dur),
        }
    }

    /// Must the current task on `core` be descheduled at this boundary?
    /// True when its slice has expired (and a competitor is waiting) or a
    /// wakeup preemption is pending.
    pub fn need_resched(&self, core: usize, now: SimTime) -> bool {
        self.ctx().need_resched(core, now)
    }

    /// The current task blocks (empty ring, backpressure yield-to-sleep,
    /// I/O wait, full TX ring). Voluntary switch.
    pub fn block_current(&mut self, core: usize, now: SimTime) -> TaskId {
        match &mut self.backend {
            Backend::Hooks(s) => s.block_current(core, now),
            Backend::Classic(s) => s.block_current(core, now),
        }
    }

    /// The current task leaves the CPU but stays runnable (slice expiry or
    /// cooperative yield with work remaining). `kind` selects which context
    /// switch counter it lands in.
    pub fn requeue_current(&mut self, core: usize, now: SimTime, kind: SwitchKind) -> TaskId {
        match &mut self.backend {
            Backend::Hooks(s) => s.requeue_current(core, now, kind),
            Backend::Classic(s) => s.requeue_current(core, now, kind),
        }
    }

    /// All registered task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.num_tasks() as u32).map(TaskId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [SchedBackend; 2] = [SchedBackend::Hooks, SchedBackend::Classic];

    fn sched(policy: Policy) -> OsScheduler {
        OsScheduler::new(2, policy, CfsParams::default(), Duration::from_micros(2))
    }

    fn sched_with(policy: Policy, backend: SchedBackend) -> OsScheduler {
        OsScheduler::with_backend(
            2,
            policy,
            CfsParams::default(),
            Duration::from_micros(2),
            backend,
        )
    }

    #[test]
    fn dispatch_runs_lowest_vruntime_first() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.wake(a, SimTime::ZERO);
        s.wake(b, SimTime::ZERO);
        // run a for a while so its vruntime exceeds b's
        let (first, _) = s.dispatch(0, SimTime::ZERO).unwrap();
        assert_eq!(first, a); // tie broken by id
        s.charge_current(0, Duration::from_millis(2));
        s.requeue_current(0, SimTime::from_millis(2), SwitchKind::Involuntary);
        let (second, _) = s.dispatch(0, SimTime::from_millis(2)).unwrap();
        assert_eq!(second, b);
    }

    #[test]
    fn cs_cost_only_on_task_change() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        s.wake(a, SimTime::ZERO);
        let (_, cost1) = s.dispatch(0, SimTime::ZERO).unwrap();
        assert_eq!(cost1, Duration::from_micros(2)); // from idle/other
        s.block_current(0, SimTime::ZERO);
        s.wake(a, SimTime::from_micros(10));
        let (_, cost2) = s.dispatch(0, SimTime::from_micros(10)).unwrap();
        assert_eq!(cost2, Duration::ZERO); // same task resumes
    }

    #[test]
    fn weight_shifts_cpu_ratio() {
        // Two always-runnable tasks, weights 3:1, alternate via slice
        // expiry: cpu time ratio approaches 3:1.
        let mut s = sched(Policy::CfsNormal);
        let heavy = s.add_task("heavy", 0);
        let light = s.add_task("light", 0);
        s.set_weight(heavy, 3072);
        s.set_weight(light, 1024);
        let mut now = SimTime::ZERO;
        s.wake(heavy, now);
        s.wake(light, now);
        for _ in 0..4000 {
            if s.current(0).is_none() {
                s.dispatch(0, now);
            }
            let step = Duration::from_micros(100);
            s.charge_current(0, step);
            now += step;
            if s.need_resched(0, now) {
                s.requeue_current(0, now, SwitchKind::Involuntary);
            }
        }
        let h = s.task(heavy).cpu_time.as_nanos() as f64;
        let l = s.task(light).cpu_time.as_nanos() as f64;
        let ratio = h / l;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rr_ignores_weights() {
        let mut s = sched(Policy::rr_1ms());
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.set_weight(a, 8192);
        let mut now = SimTime::ZERO;
        s.wake(a, now);
        s.wake(b, now);
        for _ in 0..2000 {
            if s.current(0).is_none() {
                s.dispatch(0, now);
            }
            let step = Duration::from_micros(100);
            s.charge_current(0, step);
            now += step;
            if s.need_resched(0, now) {
                s.requeue_current(0, now, SwitchKind::Involuntary);
            }
        }
        let ra = s.task(a).cpu_time.as_nanos() as f64;
        let rb = s.task(b).cpu_time.as_nanos() as f64;
        assert!((ra / rb - 1.0).abs() < 0.05, "rr should split evenly");
    }

    #[test]
    fn wakeup_preemption_only_in_normal() {
        for (policy, expect_preempt) in [(Policy::CfsNormal, true), (Policy::CfsBatch, false)] {
            let mut s = sched(policy);
            let hog = s.add_task("hog", 0);
            let sleeper = s.add_task("sleeper", 0);
            let mut now = SimTime::ZERO;
            s.wake(hog, now);
            s.dispatch(0, now);
            // hog runs 2ms — still inside its 3ms uncontested slice, so any
            // resched must come from wakeup preemption, not slice expiry.
            // Its vruntime (2ms) now exceeds the sleeper's (0) by more than
            // the 1ms wakeup granularity.
            s.charge_current(0, Duration::from_millis(2));
            now = SimTime::from_millis(2);
            s.wake(sleeper, now);
            assert_eq!(s.need_resched(0, now), expect_preempt, "policy {policy:?}");
        }
    }

    #[test]
    fn no_resched_without_competitor() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let mut now = SimTime::ZERO;
        s.wake(a, now);
        s.dispatch(0, now);
        s.charge_current(0, Duration::from_secs(1));
        now = SimTime::from_secs(1);
        assert!(!s.need_resched(0, now), "alone on core: run forever");
    }

    #[test]
    fn sched_latency_recorded() {
        let mut s = sched(Policy::CfsBatch);
        let a = s.add_task("a", 0);
        s.wake(a, SimTime::from_millis(1));
        s.dispatch(0, SimTime::from_millis(3)).unwrap();
        assert_eq!(s.task(a).avg_sched_latency(), Duration::from_millis(2));
        assert_eq!(s.task(a).dispatches, 1);
    }

    #[test]
    fn switch_counters_classified() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        let now = SimTime::ZERO;
        s.wake(a, now);
        s.wake(b, now);
        s.dispatch(0, now); // picks a (vruntime tie broken by id)
        s.charge_current(0, Duration::from_micros(10)); // a falls behind b
        s.requeue_current(0, now, SwitchKind::Involuntary);
        s.dispatch(0, now); // now picks b
        s.block_current(0, now);
        assert_eq!(s.task(a).involuntary_switches, 1);
        assert_eq!(s.task(b).voluntary_switches, 1);
    }

    #[test]
    fn wake_returns_whether_core_idle() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        assert!(s.wake(a, SimTime::ZERO));
        s.dispatch(0, SimTime::ZERO);
        assert!(!s.wake(b, SimTime::ZERO)); // core busy
        assert!(!s.wake(b, SimTime::ZERO)); // already runnable: no-op
    }

    // Regression test for the vruntime-staleness starvation bug: before
    // the fix, min_vruntime only advanced on pops, so it froze at 0 while
    // the worker ran alone for 1 s; a waking sleeper then resumed at the
    // stale floor and monopolized the core until it burned through a full
    // second of vruntime deficit. With the floor tracking `curr`, the
    // sleeper's bonus is bounded to latency/2 (1.5 ms) of catch-up.
    #[test]
    fn waking_sleeper_catches_up_within_half_latency_after_solo_run() {
        for backend in BACKENDS {
            let mut s = sched_with(Policy::CfsNormal, backend);
            let worker = s.add_task("worker", 0);
            let sleeper = s.add_task("sleeper", 0);
            let mut now = SimTime::ZERO;
            s.wake(worker, now);
            s.dispatch(0, now);
            // worker accumulates 1s of vruntime in segments (the floor
            // advances at each charge boundary, as in the real engine)
            for _ in 0..1000 {
                s.charge_current(0, Duration::from_millis(1));
            }
            now = SimTime::from_secs(1);
            s.wake(sleeper, now);
            s.requeue_current(0, now, SwitchKind::Involuntary);
            let (next, _) = s.dispatch(0, now).unwrap();
            assert_eq!(next, sleeper, "sleeper gets its wakeup bonus first");
            // The sleeper was placed at min_vruntime − latency/2; after
            // 1.5 ms of execution it has caught up and the worker runs
            // again — not after a full second.
            s.charge_current(0, Duration::from_micros(1_500));
            now += Duration::from_micros(1_500);
            s.requeue_current(0, now, SwitchKind::Involuntary);
            let (back, _) = s.dispatch(0, now).unwrap();
            assert_eq!(
                back, worker,
                "bonus is bounded to latency/2 of catch-up ({backend:?})"
            );
        }
    }

    // Regression test for the stale wakeup-preemption flag: parking the
    // task that triggered the preemption must clear (re-evaluate)
    // `resched_pending`, even when another — insufficiently behind —
    // competitor remains queued.
    #[test]
    fn park_clears_stale_wakeup_preemption() {
        for backend in BACKENDS {
            let mut s = sched_with(Policy::CfsNormal, backend);
            let hog = s.add_task("hog", 0);
            let late = s.add_task("late", 0);
            let trigger = s.add_task("trigger", 0);
            let mut now = SimTime::ZERO;
            s.wake(hog, now);
            s.wake(late, now);
            s.dispatch(0, now); // hog runs (tie by id), late queued
            s.charge_current(0, Duration::from_millis(1));
            now = SimTime::from_millis(1);
            s.requeue_current(0, now, SwitchKind::Involuntary);
            s.dispatch(0, now); // late runs
            s.charge_current(0, Duration::from_millis(1));
            s.block_current(0, now);
            s.dispatch(0, now); // hog runs again, vruntime 1 ms
            s.charge_current(0, Duration::from_micros(200));
            now += Duration::from_micros(200);
            s.wake(trigger, now); // far behind: preemption trigger
            assert!(
                s.need_resched(0, now),
                "trigger wakes far behind: preempt ({backend:?})"
            );
            s.wake(late, now); // within the 1 ms granularity: not a trigger
            assert!(s.park(trigger, now));
            assert!(
                !s.need_resched(0, now),
                "preemption trigger is gone; queued competitor does not \
                 justify it ({backend:?})"
            );
        }
    }

    #[test]
    fn park_pulls_runnable_task_and_defers_running_one() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.wake(a, SimTime::ZERO);
        s.wake(b, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO); // a runs, b queued
        assert!(s.park(b, SimTime::ZERO), "runnable task parks immediately");
        assert!(s.is_blocked(b));
        assert!(!s.need_resched(0, SimTime::from_secs(1)), "queue is empty");
        assert!(!s.park(a, SimTime::ZERO), "running task defers to boundary");
        s.block_current(0, SimTime::ZERO);
        assert!(s.park(a, SimTime::ZERO), "blocked task stays parked");
    }

    #[test]
    fn rehome_moves_blocked_task_and_resets_vruntime_credit() {
        for backend in BACKENDS {
            let mut s = sched_with(Policy::CfsNormal, backend);
            let mover = s.add_task("mover", 0);
            let incumbent = s.add_task("incumbent", 1);
            let mut now = SimTime::ZERO;
            // Build up vruntime on core 1's queue so its floor is nonzero.
            s.wake(incumbent, now);
            s.dispatch(1, now);
            for _ in 0..100 {
                s.charge_current(1, Duration::from_millis(1));
            }
            now = SimTime::from_millis(100);
            // mover ran nothing: vruntime 0. Rehome to core 1 — it must be
            // re-placed at the destination floor, not keep 100 ms of credit.
            assert!(s.is_blocked(mover));
            s.rehome_task(mover, 1);
            s.wake(mover, now);
            assert_eq!(s.queued(1), 1, "mover queued on core 1 ({backend:?})");
            assert!(s.core_idle(0), "core 0 no longer owns it ({backend:?})");
            s.requeue_current(1, now, SwitchKind::Involuntary);
            s.dispatch(1, now);
            // mover's wakeup bonus is bounded: after latency/2 of execution
            // the incumbent runs again instead of starving for 100 ms.
            s.charge_current(1, Duration::from_micros(1_500));
            now += Duration::from_micros(1_500);
            s.requeue_current(1, now, SwitchKind::Involuntary);
            let (next, _) = s.dispatch(1, now).unwrap();
            assert_eq!(
                next, incumbent,
                "migrated task carries no stale credit ({backend:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "rehome of a task still on a runqueue")]
    fn rehome_of_runnable_task_panics() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        s.wake(a, SimTime::ZERO);
        s.rehome_task(a, 1);
    }

    #[test]
    fn edf_runs_earliest_deadline_and_preempts_on_wakeup() {
        for backend in BACKENDS {
            let mut s = sched_with(
                Policy::Edf {
                    period: Duration::from_millis(2),
                },
                backend,
            );
            let a = s.add_task("a", 0);
            let b = s.add_task("b", 0);
            // a wakes at t=1ms (deadline 3ms), b at t=0 (deadline 2ms):
            // b runs first despite waking earlier in program order.
            s.wake(b, SimTime::ZERO);
            s.wake(a, SimTime::from_millis(1));
            let (first, _) = s.dispatch(0, SimTime::from_millis(1)).unwrap();
            assert_eq!(first, b, "earliest deadline first ({backend:?})");
            s.charge_current(0, Duration::from_millis(1));
            s.block_current(0, SimTime::from_millis(2));
            let (second, _) = s.dispatch(0, SimTime::from_millis(2)).unwrap();
            assert_eq!(second, a);
            // b wakes again at 2.5ms → deadline 4.5ms, later than a's 3ms:
            // no preemption.
            s.charge_current(0, Duration::from_micros(500));
            s.wake(b, SimTime::from_micros(2_500));
            assert!(!s.need_resched(0, SimTime::from_micros(2_500)));
        }
    }

    #[test]
    fn slo_budget_tightens_deadline() {
        for backend in BACKENDS {
            let mut s = sched_with(Policy::Slo, backend);
            let tight = s.add_task("tight", 0);
            let lax = s.add_task("lax", 0);
            // Both default to SLO_DEFAULT_BUDGET; tighten one to 100 µs.
            s.set_task_budget(tight, Duration::from_micros(100));
            // lax wakes first, then tight: tight's much nearer deadline
            // flags a preemption against the running lax.
            s.wake(lax, SimTime::ZERO);
            s.dispatch(0, SimTime::ZERO);
            s.charge_current(0, Duration::from_micros(10));
            s.wake(tight, SimTime::from_micros(10));
            assert!(
                s.need_resched(0, SimTime::from_micros(10)),
                "tighter budget preempts ({backend:?})"
            );
            s.requeue_current(0, SimTime::from_micros(10), SwitchKind::Involuntary);
            let (next, _) = s.dispatch(0, SimTime::from_micros(10)).unwrap();
            assert_eq!(next, tight);
            assert_eq!(s.task(tight).rel_deadline, Duration::from_micros(100));
            assert_eq!(s.task(tight).deadline, 110_000);
        }
    }

    #[test]
    #[should_panic(expected = "dispatch on busy core")]
    fn double_dispatch_panics() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.wake(a, SimTime::ZERO);
        s.wake(b, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO);
    }
}
