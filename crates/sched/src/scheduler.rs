//! The OS CPU scheduler model.
//!
//! [`OsScheduler`] owns the task table and one runqueue per core, and is
//! *driven* by the platform's event loop: the platform asks which task to
//! dispatch, charges execution time in segments (batch boundaries), and
//! checks [`OsScheduler::need_resched`] at each segment boundary. This
//! mirrors how a tick-based kernel only acts at scheduler-tick/batch
//! granularity, and keeps the model single-threaded and deterministic.
//!
//! Preemption model:
//! * **Slice expiry** — each dispatch computes a time slice (CFS: from
//!   target latency, runqueue size and weights; RR: the fixed quantum).
//!   Once `now` passes the slice end *and* another task is waiting, the
//!   platform must requeue the current task (involuntary switch).
//! * **Wakeup preemption** (CFS Normal only) — a task waking with
//!   sufficiently smaller vruntime flags `resched_pending`; the preemption
//!   takes effect at the next segment boundary, a few microseconds later,
//!   just as a real kernel preempts at the next tick or interrupt return.

use crate::params::{CfsParams, Policy, NICE0_WEIGHT};
use crate::runqueue::RunQueue;
use crate::task::{SwitchKind, Task, TaskId, TaskState};
use nfv_des::{Duration, SimTime};
use nfv_obs::{TraceKind, TraceSink};

/// Per-core scheduling state.
#[derive(Debug)]
struct Core {
    rq: RunQueue,
    current: Option<TaskId>,
    /// Absolute time the current task's slice expires.
    slice_end: SimTime,
    /// Set by wakeup preemption; consumed at the next segment boundary.
    resched_pending: bool,
    /// Task that most recently occupied the CPU (context-switch cost is
    /// only paid when the incoming task differs).
    last_ran: Option<TaskId>,
    /// Total busy time (any task executing).
    busy: Duration,
}

/// The simulated OS scheduler for all cores of the machine.
#[derive(Debug)]
pub struct OsScheduler {
    policy: Policy,
    cfs: CfsParams,
    /// Direct cost of a context switch, charged on each dispatch that
    /// changes tasks.
    cs_cost: Duration,
    tasks: Vec<Task>,
    cores: Vec<Core>,
    /// Structured-event sink (off unless observability is enabled).
    trace: TraceSink,
}

impl OsScheduler {
    /// A scheduler for `num_cores` NF cores under `policy`.
    pub fn new(num_cores: usize, policy: Policy, cfs: CfsParams, cs_cost: Duration) -> Self {
        let mk_rq = || match policy {
            Policy::CfsNormal | Policy::CfsBatch => RunQueue::cfs(),
            Policy::RoundRobin { .. } | Policy::Cooperative => RunQueue::rr(),
        };
        OsScheduler {
            policy,
            cfs,
            cs_cost,
            tasks: Vec::new(),
            cores: (0..num_cores)
                .map(|_| Core {
                    rq: mk_rq(),
                    current: None,
                    slice_end: SimTime::ZERO,
                    resched_pending: false,
                    last_ran: None,
                    busy: Duration::ZERO,
                })
                .collect(),
            trace: TraceSink::off(),
        }
    }

    /// Attach a trace sink recording paid context switches.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Register a new task pinned to `core`, initially blocked.
    pub fn add_task(&mut self, name: impl Into<String>, core: usize) -> TaskId {
        assert!(core < self.cores.len(), "core {core} out of range");
        let id = TaskId(self.tasks.len() as u32);
        let mut t = Task::new(name, core, NICE0_WEIGHT);
        // Start at the core's current min_vruntime so the first wake is fair.
        t.vruntime = self.cores[core].rq.min_vruntime();
        self.tasks.push(t);
        id
    }

    /// Immutable task access.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of cores managed.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Update a task's scheduler weight (cgroup `cpu.shares` write).
    /// Takes effect from the next charge/dispatch; the queue position is
    /// keyed by vruntime, which is unaffected.
    pub fn set_weight(&mut self, id: TaskId, weight: u64) {
        self.tasks[id.index()].weight = weight.max(1);
    }

    /// Currently running task on `core`.
    pub fn current(&self, core: usize) -> Option<TaskId> {
        self.cores[core].current
    }

    /// Runnable tasks queued (excluding the running one) on `core`.
    pub fn queued(&self, core: usize) -> usize {
        self.cores[core].rq.len()
    }

    /// True when `core` has neither a running task nor queued runnable
    /// work. The engine's per-core domain must be inactive exactly when
    /// its core is idle and no batch event is in flight.
    pub fn core_idle(&self, core: usize) -> bool {
        let c = &self.cores[core];
        c.current.is_none() && c.rq.is_empty()
    }

    /// Total busy time accumulated on `core`.
    pub fn core_busy(&self, core: usize) -> Duration {
        self.cores[core].busy
    }

    /// Make `id` runnable (semaphore post). No-op if already runnable or
    /// running. Returns `true` if the task's core had been idle, so the
    /// caller knows to dispatch.
    pub fn wake(&mut self, id: TaskId, now: SimTime) -> bool {
        let core_idx = self.tasks[id.index()].core;
        if self.tasks[id.index()].state != TaskState::Blocked {
            return false;
        }
        // CFS wake placement: a sleeper resumes at no less than
        // min_vruntime − latency/2, so it gets a modest wakeup bonus but
        // cannot monopolize the core after a long sleep.
        if matches!(self.policy, Policy::CfsNormal | Policy::CfsBatch) {
            let floor = self.cores[core_idx]
                .rq
                .min_vruntime()
                .saturating_sub(self.cfs.latency.as_nanos() / 2);
            let t = &mut self.tasks[id.index()];
            t.vruntime = t.vruntime.max(floor);
        }
        let vr = self.tasks[id.index()].vruntime;
        self.tasks[id.index()].state = TaskState::Runnable;
        self.tasks[id.index()].runnable_since = now;
        self.cores[core_idx].rq.insert(id, vr);

        // Wakeup preemption (CFS Normal only).
        if self.policy == Policy::CfsNormal {
            if let Some(curr) = self.cores[core_idx].current {
                let curr_vr = self.tasks[curr.index()].vruntime;
                if curr_vr > vr + self.cfs.wakeup_granularity.as_nanos() {
                    self.cores[core_idx].resched_pending = true;
                }
            }
        }
        self.cores[core_idx].current.is_none()
    }

    /// True when `id` is blocked.
    pub fn is_blocked(&self, id: TaskId) -> bool {
        self.tasks[id.index()].state == TaskState::Blocked
    }

    /// Forcibly block a task that is not on the CPU (crash/park). A
    /// runnable task is pulled out of its core's queue; a blocked task is
    /// left blocked. Returns `false` — and does nothing — when the task is
    /// currently `Running`: the caller owns the in-flight batch and must
    /// park again at the batch boundary (via [`OsScheduler::block_current`]).
    pub fn park(&mut self, id: TaskId, _now: SimTime) -> bool {
        let core = self.tasks[id.index()].core;
        match self.tasks[id.index()].state {
            TaskState::Running => false,
            TaskState::Blocked => true,
            TaskState::Runnable => {
                let removed = self.cores[core].rq.remove(id);
                debug_assert!(removed, "runnable task {id} missing from its runqueue");
                self.tasks[id.index()].state = TaskState::Blocked;
                true
            }
        }
    }

    /// Pick the next task to run on an idle `core`. Returns the task and
    /// the context-switch overhead to charge before useful work starts.
    ///
    /// # Panics
    /// Panics if the core already has a running task.
    pub fn dispatch(&mut self, core: usize, now: SimTime) -> Option<(TaskId, Duration)> {
        assert!(
            self.cores[core].current.is_none(),
            "dispatch on busy core {core}"
        );
        let id = self.cores[core].rq.pop_next()?;
        let slice = self.slice_for(core, id);
        let c = &mut self.cores[core];
        c.current = Some(id);
        c.slice_end = now + slice;
        c.resched_pending = false;
        let overhead = if c.last_ran == Some(id) {
            Duration::ZERO
        } else {
            self.trace.record(
                now,
                TraceKind::CtxSwitch {
                    core: core as u32,
                    task: id.0,
                },
            );
            self.cs_cost
        };
        c.last_ran = Some(id);
        let t = &mut self.tasks[id.index()];
        debug_assert_eq!(t.state, TaskState::Runnable);
        t.state = TaskState::Running;
        t.sched_latency_sum += now.since(t.runnable_since);
        t.dispatches += 1;
        Some((id, overhead))
    }

    /// Compute the slice the dispatched task receives.
    fn slice_for(&self, core: usize, id: TaskId) -> Duration {
        match self.policy {
            Policy::RoundRobin { quantum } => quantum,
            // Cooperative tasks are never preempted; give an effectively
            // infinite slice (a year of simulated time).
            Policy::Cooperative => Duration::from_secs(31_536_000),
            Policy::CfsNormal | Policy::CfsBatch => {
                let nr = self.cores[core].rq.len() as u64 + 1;
                let period = self.cfs.latency.max(Duration::from_nanos(
                    self.cfs.min_granularity.as_nanos() * nr,
                ));
                let total_weight: u64 = self.cores[core]
                    .rq
                    .iter()
                    .map(|t| self.tasks[t.index()].weight)
                    .sum::<u64>()
                    + self.tasks[id.index()].weight;
                let share = period.as_nanos() * self.tasks[id.index()].weight / total_weight.max(1);
                Duration::from_nanos(share).max(self.cfs.min_granularity)
            }
        }
    }

    /// Charge `dur` of execution to the running task on `core`.
    pub fn charge_current(&mut self, core: usize, dur: Duration) {
        let id = self.cores[core].current.expect("charge on idle core");
        self.tasks[id.index()].charge(dur);
        self.cores[core].busy += dur;
    }

    /// Must the current task on `core` be descheduled at this boundary?
    /// True when its slice has expired (and a competitor is waiting) or a
    /// wakeup preemption is pending.
    pub fn need_resched(&self, core: usize, now: SimTime) -> bool {
        let c = &self.cores[core];
        if c.current.is_none() {
            return false;
        }
        if c.rq.is_empty() {
            return false; // nobody to switch to
        }
        c.resched_pending || now >= c.slice_end
    }

    /// The current task blocks (empty ring, backpressure yield-to-sleep,
    /// I/O wait, full TX ring). Voluntary switch.
    pub fn block_current(&mut self, core: usize, _now: SimTime) -> TaskId {
        let id = self.cores[core].current.take().expect("block on idle core");
        let t = &mut self.tasks[id.index()];
        t.state = TaskState::Blocked;
        t.voluntary_switches += 1;
        id
    }

    /// The current task leaves the CPU but stays runnable (slice expiry or
    /// cooperative yield with work remaining). `kind` selects which context
    /// switch counter it lands in.
    pub fn requeue_current(&mut self, core: usize, now: SimTime, kind: SwitchKind) -> TaskId {
        let id = self.cores[core]
            .current
            .take()
            .expect("requeue on idle core");
        self.cores[core].resched_pending = false;
        let vr = self.tasks[id.index()].vruntime;
        let t = &mut self.tasks[id.index()];
        t.state = TaskState::Runnable;
        t.runnable_since = now;
        match kind {
            SwitchKind::Voluntary => t.voluntary_switches += 1,
            SwitchKind::Involuntary => t.involuntary_switches += 1,
        }
        self.cores[core].rq.insert(id, vr);
        id
    }

    /// All registered task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: Policy) -> OsScheduler {
        OsScheduler::new(2, policy, CfsParams::default(), Duration::from_micros(2))
    }

    #[test]
    fn dispatch_runs_lowest_vruntime_first() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.wake(a, SimTime::ZERO);
        s.wake(b, SimTime::ZERO);
        // run a for a while so its vruntime exceeds b's
        let (first, _) = s.dispatch(0, SimTime::ZERO).unwrap();
        assert_eq!(first, a); // tie broken by id
        s.charge_current(0, Duration::from_millis(2));
        s.requeue_current(0, SimTime::from_millis(2), SwitchKind::Involuntary);
        let (second, _) = s.dispatch(0, SimTime::from_millis(2)).unwrap();
        assert_eq!(second, b);
    }

    #[test]
    fn cs_cost_only_on_task_change() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        s.wake(a, SimTime::ZERO);
        let (_, cost1) = s.dispatch(0, SimTime::ZERO).unwrap();
        assert_eq!(cost1, Duration::from_micros(2)); // from idle/other
        s.block_current(0, SimTime::ZERO);
        s.wake(a, SimTime::from_micros(10));
        let (_, cost2) = s.dispatch(0, SimTime::from_micros(10)).unwrap();
        assert_eq!(cost2, Duration::ZERO); // same task resumes
    }

    #[test]
    fn weight_shifts_cpu_ratio() {
        // Two always-runnable tasks, weights 3:1, alternate via slice
        // expiry: cpu time ratio approaches 3:1.
        let mut s = sched(Policy::CfsNormal);
        let heavy = s.add_task("heavy", 0);
        let light = s.add_task("light", 0);
        s.set_weight(heavy, 3072);
        s.set_weight(light, 1024);
        let mut now = SimTime::ZERO;
        s.wake(heavy, now);
        s.wake(light, now);
        for _ in 0..4000 {
            if s.current(0).is_none() {
                s.dispatch(0, now);
            }
            let step = Duration::from_micros(100);
            s.charge_current(0, step);
            now += step;
            if s.need_resched(0, now) {
                s.requeue_current(0, now, SwitchKind::Involuntary);
            }
        }
        let h = s.task(heavy).cpu_time.as_nanos() as f64;
        let l = s.task(light).cpu_time.as_nanos() as f64;
        let ratio = h / l;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rr_ignores_weights() {
        let mut s = sched(Policy::rr_1ms());
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.set_weight(a, 8192);
        let mut now = SimTime::ZERO;
        s.wake(a, now);
        s.wake(b, now);
        for _ in 0..2000 {
            if s.current(0).is_none() {
                s.dispatch(0, now);
            }
            let step = Duration::from_micros(100);
            s.charge_current(0, step);
            now += step;
            if s.need_resched(0, now) {
                s.requeue_current(0, now, SwitchKind::Involuntary);
            }
        }
        let ra = s.task(a).cpu_time.as_nanos() as f64;
        let rb = s.task(b).cpu_time.as_nanos() as f64;
        assert!((ra / rb - 1.0).abs() < 0.05, "rr should split evenly");
    }

    #[test]
    fn wakeup_preemption_only_in_normal() {
        for (policy, expect_preempt) in [(Policy::CfsNormal, true), (Policy::CfsBatch, false)] {
            let mut s = sched(policy);
            let hog = s.add_task("hog", 0);
            let sleeper = s.add_task("sleeper", 0);
            let mut now = SimTime::ZERO;
            s.wake(hog, now);
            s.dispatch(0, now);
            // hog runs 2ms — still inside its 3ms uncontested slice, so any
            // resched must come from wakeup preemption, not slice expiry.
            // Its vruntime (2ms) now exceeds the sleeper's (0) by more than
            // the 1ms wakeup granularity.
            s.charge_current(0, Duration::from_millis(2));
            now = SimTime::from_millis(2);
            s.wake(sleeper, now);
            assert_eq!(s.need_resched(0, now), expect_preempt, "policy {policy:?}");
        }
    }

    #[test]
    fn no_resched_without_competitor() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let mut now = SimTime::ZERO;
        s.wake(a, now);
        s.dispatch(0, now);
        s.charge_current(0, Duration::from_secs(1));
        now = SimTime::from_secs(1);
        assert!(!s.need_resched(0, now), "alone on core: run forever");
    }

    #[test]
    fn sched_latency_recorded() {
        let mut s = sched(Policy::CfsBatch);
        let a = s.add_task("a", 0);
        s.wake(a, SimTime::from_millis(1));
        s.dispatch(0, SimTime::from_millis(3)).unwrap();
        assert_eq!(s.task(a).avg_sched_latency(), Duration::from_millis(2));
        assert_eq!(s.task(a).dispatches, 1);
    }

    #[test]
    fn switch_counters_classified() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        let now = SimTime::ZERO;
        s.wake(a, now);
        s.wake(b, now);
        s.dispatch(0, now); // picks a (vruntime tie broken by id)
        s.charge_current(0, Duration::from_micros(10)); // a falls behind b
        s.requeue_current(0, now, SwitchKind::Involuntary);
        s.dispatch(0, now); // now picks b
        s.block_current(0, now);
        assert_eq!(s.task(a).involuntary_switches, 1);
        assert_eq!(s.task(b).voluntary_switches, 1);
    }

    #[test]
    fn wake_returns_whether_core_idle() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        assert!(s.wake(a, SimTime::ZERO));
        s.dispatch(0, SimTime::ZERO);
        assert!(!s.wake(b, SimTime::ZERO)); // core busy
        assert!(!s.wake(b, SimTime::ZERO)); // already runnable: no-op
    }

    #[test]
    fn sleeper_gets_bounded_bonus_not_starvation_weapon() {
        let mut s = sched(Policy::CfsNormal);
        let worker = s.add_task("worker", 0);
        let sleeper = s.add_task("sleeper", 0);
        let mut now = SimTime::ZERO;
        s.wake(worker, now);
        s.dispatch(0, now);
        // worker accumulates 1s of vruntime
        s.charge_current(0, Duration::from_secs(1));
        now = SimTime::from_secs(1);
        s.requeue_current(0, now, SwitchKind::Involuntary);
        // min_vruntime still 0 (nothing popped since) — wake placement uses
        // the floor, then the sleeper runs but its slice is bounded, so the
        // worker is not starved indefinitely: after the sleeper accumulates
        // ~latency of vruntime it parks behind the worker's next slot.
        s.wake(sleeper, now);
        let (next, _) = s.dispatch(0, now).unwrap();
        assert_eq!(next, sleeper);
    }

    #[test]
    fn park_pulls_runnable_task_and_defers_running_one() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.wake(a, SimTime::ZERO);
        s.wake(b, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO); // a runs, b queued
        assert!(s.park(b, SimTime::ZERO), "runnable task parks immediately");
        assert!(s.is_blocked(b));
        assert!(!s.need_resched(0, SimTime::from_secs(1)), "queue is empty");
        assert!(!s.park(a, SimTime::ZERO), "running task defers to boundary");
        s.block_current(0, SimTime::ZERO);
        assert!(s.park(a, SimTime::ZERO), "blocked task stays parked");
    }

    #[test]
    #[should_panic(expected = "dispatch on busy core")]
    fn double_dispatch_panics() {
        let mut s = sched(Policy::CfsNormal);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.wake(a, SimTime::ZERO);
        s.wake(b, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO);
    }
}
