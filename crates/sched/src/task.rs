//! Schedulable task state and per-task accounting.

use nfv_des::{Duration, SimTime};
use std::fmt;

/// Identifier of a schedulable task (one NF process, in platform terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting on its semaphore (or I/O); not eligible to run.
    Blocked,
    /// On a runqueue, waiting for the CPU.
    Runnable,
    /// Currently executing on its core.
    Running,
}

/// Why a task left the CPU. Voluntary switches are yields/blocks initiated
/// by the task (NFVnice's goal is to make almost all switches voluntary);
/// involuntary ones are preemptions by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// The task blocked or yielded on its own (counted in `cswch/s`).
    Voluntary,
    /// The scheduler preempted the task (counted in `nvcswch/s`).
    Involuntary,
}

/// A schedulable entity pinned to one core.
#[derive(Debug)]
pub struct Task {
    /// Human-readable name (the NF's name).
    pub name: String,
    /// Core this task is pinned to.
    pub core: usize,
    /// Scheduler weight (cgroup `cpu.shares`; 1024 = default).
    pub weight: u64,
    /// CFS virtual runtime, in nanoseconds normalized to weight 1024.
    pub vruntime: u64,
    /// Current lifecycle state.
    pub state: TaskState,
    /// When the task last became runnable (for scheduling-latency stats).
    pub runnable_since: SimTime,
    /// Relative deadline granted to each job (wake → block span) under the
    /// deadline policies: the EDF period, or the task's share of its
    /// chain's latency budget under SLO. Unused (zero) elsewhere.
    pub rel_deadline: Duration,
    /// Absolute deadline (ns) of the current job, assigned on wakeup and
    /// preserved across preemptions. Orders the EDF/SLO runqueue.
    pub deadline: u64,

    // ---- accounting ----
    /// Total CPU time consumed.
    pub cpu_time: Duration,
    /// Voluntary context switches.
    pub voluntary_switches: u64,
    /// Involuntary context switches (preemptions).
    pub involuntary_switches: u64,
    /// Sum of (dispatch time − runnable_since) across dispatches.
    pub sched_latency_sum: Duration,
    /// Number of dispatches (denominator for average scheduling latency).
    pub dispatches: u64,
}

impl Task {
    /// A new blocked task with default weight.
    pub fn new(name: impl Into<String>, core: usize, weight: u64) -> Self {
        Task {
            name: name.into(),
            core,
            weight,
            vruntime: 0,
            state: TaskState::Blocked,
            runnable_since: SimTime::ZERO,
            rel_deadline: Duration::ZERO,
            deadline: 0,
            cpu_time: Duration::ZERO,
            voluntary_switches: 0,
            involuntary_switches: 0,
            sched_latency_sum: Duration::ZERO,
            dispatches: 0,
        }
    }

    /// Average scheduling delay (runnable → running), or zero if never
    /// dispatched.
    pub fn avg_sched_latency(&self) -> Duration {
        self.sched_latency_sum
            .as_nanos()
            .checked_div(self.dispatches)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Advance vruntime for `dur` of real execution: `Δv = Δt · 1024 / w`.
    pub fn charge(&mut self, dur: Duration) {
        self.cpu_time += dur;
        self.vruntime += dur.as_nanos() * crate::params::NICE0_WEIGHT / self.weight.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_scales_vruntime_by_weight() {
        let mut heavy = Task::new("heavy", 0, 2048);
        let mut light = Task::new("light", 0, 512);
        heavy.charge(Duration::from_micros(100));
        light.charge(Duration::from_micros(100));
        // Same wall time: heavy's vruntime advances half as fast as nominal,
        // light's twice as fast.
        assert_eq!(heavy.vruntime, 50_000);
        assert_eq!(light.vruntime, 200_000);
        assert_eq!(heavy.cpu_time, light.cpu_time);
    }

    #[test]
    fn zero_weight_does_not_divide_by_zero() {
        let mut t = Task::new("t", 0, 0);
        t.charge(Duration::from_nanos(10));
        assert!(t.vruntime > 0);
    }

    #[test]
    fn avg_sched_latency_handles_no_dispatches() {
        let t = Task::new("t", 0, 1024);
        assert_eq!(t.avg_sched_latency(), Duration::ZERO);
    }
}
