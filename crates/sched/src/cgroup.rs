//! cgroup `cpu.shares` controller model.
//!
//! NFVnice never modifies the kernel scheduler; it adjusts each NF's cgroup
//! CPU shares through the sysfs virtual filesystem. Two properties of that
//! interface matter to the system and are modeled here:
//!
//! 1. shares are clamped to the kernel's `[2, 262144]` range and map
//!    directly onto CFS weights (1024 = default / nice 0);
//! 2. each write costs real time (~5 µs measured in the paper, §4.3.8),
//!    which is why NFVnice batches weight updates at 10 ms granularity
//!    instead of writing on every load change.

use crate::params::{MAX_SHARES, MIN_SHARES};
use crate::scheduler::OsScheduler;
use crate::task::TaskId;
use nfv_des::Duration;

/// The cgroup CPU controller: one group per task.
#[derive(Debug)]
pub struct CgroupCpu {
    shares: Vec<u64>,
    /// Cost of one `cpu.shares` sysfs write.
    pub write_cost: Duration,
    /// Number of writes performed (each also costing `write_cost`).
    pub writes: u64,
}

impl CgroupCpu {
    /// Default sysfs write cost measured by the paper.
    pub const DEFAULT_WRITE_COST: Duration = Duration(5_000);

    /// A controller with no groups yet.
    pub fn new(write_cost: Duration) -> Self {
        CgroupCpu {
            shares: Vec::new(),
            write_cost,
            writes: 0,
        }
    }

    /// Create the cgroup for a (newly added) task with default shares.
    /// Tasks must be registered in creation order — ids are dense.
    pub fn register(&mut self, task: TaskId) {
        assert_eq!(task.index(), self.shares.len(), "register in id order");
        self.shares.push(1024);
    }

    /// Current shares of a task's group.
    pub fn shares(&self, task: TaskId) -> u64 {
        self.shares[task.index()]
    }

    /// Write `cpu.shares` for `task`, clamping to the kernel's valid range
    /// and propagating the weight into the scheduler. Returns the time the
    /// write consumed (zero when the value is unchanged — NFVnice skips
    /// redundant writes).
    pub fn set_shares(&mut self, sched: &mut OsScheduler, task: TaskId, shares: u64) -> Duration {
        let clamped = shares.clamp(MIN_SHARES, MAX_SHARES);
        if self.shares[task.index()] == clamped {
            return Duration::ZERO;
        }
        self.shares[task.index()] = clamped;
        sched.set_weight(task, clamped);
        self.writes += 1;
        self.write_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CfsParams, Policy};
    use nfv_des::Duration;

    fn setup() -> (OsScheduler, CgroupCpu, TaskId) {
        let mut s = OsScheduler::new(1, Policy::CfsNormal, CfsParams::default(), Duration::ZERO);
        let t = s.add_task("t", 0);
        let mut cg = CgroupCpu::new(CgroupCpu::DEFAULT_WRITE_COST);
        cg.register(t);
        (s, cg, t)
    }

    #[test]
    fn default_shares_are_1024() {
        let (_, cg, t) = setup();
        assert_eq!(cg.shares(t), 1024);
    }

    #[test]
    fn set_shares_clamps_to_kernel_range() {
        let (mut s, mut cg, t) = setup();
        cg.set_shares(&mut s, t, 0);
        assert_eq!(cg.shares(t), MIN_SHARES);
        cg.set_shares(&mut s, t, u64::MAX);
        assert_eq!(cg.shares(t), MAX_SHARES);
    }

    #[test]
    fn redundant_write_is_free() {
        let (mut s, mut cg, t) = setup();
        let c1 = cg.set_shares(&mut s, t, 2048);
        let c2 = cg.set_shares(&mut s, t, 2048);
        assert_eq!(c1, CgroupCpu::DEFAULT_WRITE_COST);
        assert_eq!(c2, Duration::ZERO);
        assert_eq!(cg.writes, 1);
    }

    #[test]
    fn shares_propagate_to_scheduler_weight() {
        let (mut s, mut cg, t) = setup();
        cg.set_shares(&mut s, t, 4096);
        // charge and observe vruntime scaling with the new weight
        use nfv_des::SimTime;
        s.wake(t, SimTime::ZERO);
        s.dispatch(0, SimTime::ZERO);
        s.charge_current(0, Duration::from_micros(4));
        assert_eq!(s.task(t).vruntime, 1_000); // 4000ns * 1024/4096
    }
}
