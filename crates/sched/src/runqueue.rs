//! Per-core runqueues: a CFS red-black-tree equivalent, an RR FIFO and a
//! deadline-ordered tree for the EDF/SLO policies.

use crate::task::TaskId;
use std::collections::{BTreeSet, VecDeque};

/// The queue of runnable (not running) tasks on one core.
///
/// CFS keeps tasks ordered by `(vruntime, id)` — the kernel uses a
/// red-black tree; a B-tree set gives the same ordering guarantees and
/// complexity. RR keeps strict FIFO arrival order. EDF orders by
/// `(absolute deadline, id)`.
#[derive(Debug)]
pub enum RunQueue {
    /// Virtual-runtime ordered queue (CFS Normal and Batch).
    Cfs {
        /// Tasks keyed by (vruntime, id); leftmost runs next.
        tree: BTreeSet<(u64, TaskId)>,
        /// Monotonic floor of vruntime on this core, used to place waking
        /// tasks so sleepers neither starve nor dominate. Advanced on pop
        /// *and* against the running task at every charge boundary (real
        /// CFS tracks `curr` too — a floor that only moves on pops
        /// freezes while one task runs alone).
        min_vruntime: u64,
    },
    /// FIFO queue (round robin and cooperative).
    Rr {
        /// Tasks in arrival order.
        fifo: VecDeque<TaskId>,
    },
    /// Deadline-ordered queue (EDF and SLO policies).
    Edf {
        /// Tasks keyed by (absolute deadline ns, id); earliest runs next.
        tree: BTreeSet<(u64, TaskId)>,
    },
}

impl RunQueue {
    /// Empty CFS queue.
    pub fn cfs() -> Self {
        RunQueue::Cfs {
            tree: BTreeSet::new(),
            min_vruntime: 0,
        }
    }

    /// Empty RR queue.
    pub fn rr() -> Self {
        RunQueue::Rr {
            fifo: VecDeque::new(),
        }
    }

    /// Empty deadline queue.
    pub fn edf() -> Self {
        RunQueue::Edf {
            tree: BTreeSet::new(),
        }
    }

    /// Insert a runnable task. `key` is the ordering key — vruntime for
    /// CFS, absolute deadline for EDF; ignored by RR.
    pub fn insert(&mut self, id: TaskId, key: u64) {
        match self {
            RunQueue::Cfs { tree, .. } | RunQueue::Edf { tree } => {
                let fresh = tree.insert((key, id));
                debug_assert!(fresh, "task {id} double-inserted");
            }
            RunQueue::Rr { fifo } => {
                debug_assert!(!fifo.contains(&id), "task {id} double-inserted");
                fifo.push_back(id);
            }
        }
    }

    /// Remove and return the next task to run, advancing `min_vruntime`
    /// for CFS.
    pub fn pop_next(&mut self) -> Option<TaskId> {
        match self {
            RunQueue::Cfs { tree, min_vruntime } => {
                let &(v, id) = tree.iter().next()?;
                tree.remove(&(v, id));
                *min_vruntime = (*min_vruntime).max(v);
                Some(id)
            }
            RunQueue::Rr { fifo } => fifo.pop_front(),
            RunQueue::Edf { tree } => {
                let &(d, id) = tree.iter().next()?;
                tree.remove(&(d, id));
                Some(id)
            }
        }
    }

    /// Current `min_vruntime` (0 for RR/EDF, which have no such notion).
    pub fn min_vruntime(&self) -> u64 {
        match self {
            RunQueue::Cfs { min_vruntime, .. } => *min_vruntime,
            RunQueue::Rr { .. } | RunQueue::Edf { .. } => 0,
        }
    }

    /// Raise `min_vruntime` to `floor` if it is behind (CFS only; no-op
    /// elsewhere). Called at charge boundaries with
    /// `min(curr.vruntime, leftmost)` so the floor keeps tracking a task
    /// running alone — the staleness that otherwise lets a waking sleeper
    /// monopolize the core.
    pub fn advance_min_vruntime(&mut self, floor: u64) {
        if let RunQueue::Cfs { min_vruntime, .. } = self {
            *min_vruntime = (*min_vruntime).max(floor);
        }
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn len(&self) -> usize {
        match self {
            RunQueue::Cfs { tree, .. } | RunQueue::Edf { tree } => tree.len(),
            RunQueue::Rr { fifo } => fifo.len(),
        }
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over queued task ids (order: next-to-run first for CFS and
    /// EDF, FIFO order for RR).
    pub fn iter(&self) -> QueuedIter<'_> {
        match self {
            RunQueue::Cfs { tree, .. } | RunQueue::Edf { tree } => QueuedIter::Keyed(tree.iter()),
            RunQueue::Rr { fifo } => QueuedIter::Rr(fifo.iter()),
        }
    }

    /// The task that would run next, without removing it.
    pub fn head(&self) -> Option<TaskId> {
        self.iter().next()
    }

    /// Remove a specific queued task (wherever it sits), returning whether
    /// it was present. Used when a runnable task is parked (e.g. its NF
    /// crashed) and must leave the queue without being dispatched.
    pub fn remove(&mut self, id: TaskId) -> bool {
        match self {
            RunQueue::Cfs { tree, .. } | RunQueue::Edf { tree } => {
                // The tree is keyed by (key, id); a linear scan finds the
                // entry without the caller having to know the key. Queues
                // hold at most a handful of NFs per core.
                match tree.iter().find(|&&(_, t)| t == id).copied() {
                    Some(key) => tree.remove(&key),
                    None => false,
                }
            }
            RunQueue::Rr { fifo } => {
                let before = fifo.len();
                fifo.retain(|&t| t != id);
                fifo.len() != before
            }
        }
    }

    /// Smallest queued ordering key, if any (CFS vruntime / EDF deadline).
    pub fn leftmost_key(&self) -> Option<u64> {
        match self {
            RunQueue::Cfs { tree, .. } | RunQueue::Edf { tree } => {
                tree.iter().next().map(|&(v, _)| v)
            }
            RunQueue::Rr { .. } => None,
        }
    }
}

/// Borrowing iterator over a [`RunQueue`]'s task ids. An enum over the
/// two backing collections' iterators — no `Box<dyn Iterator>`, which
/// would both violate the no-trait-objects layering convention and
/// allocate on the per-dispatch path (`slice` walks the queue to sum
/// runnable weights on every pick).
#[derive(Debug)]
pub enum QueuedIter<'a> {
    /// CFS/EDF: `(key, id)` pairs in tree order, next-to-run first.
    Keyed(std::collections::btree_set::Iter<'a, (u64, TaskId)>),
    /// RR: FIFO arrival order.
    Rr(std::collections::vec_deque::Iter<'a, TaskId>),
}

impl Iterator for QueuedIter<'_> {
    type Item = TaskId;
    fn next(&mut self) -> Option<TaskId> {
        match self {
            QueuedIter::Keyed(it) => it.next().map(|&(_, id)| id),
            QueuedIter::Rr(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            QueuedIter::Keyed(it) => it.size_hint(),
            QueuedIter::Rr(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfs_pops_lowest_vruntime() {
        let mut rq = RunQueue::cfs();
        rq.insert(TaskId(1), 300);
        rq.insert(TaskId(2), 100);
        rq.insert(TaskId(3), 200);
        assert_eq!(rq.pop_next(), Some(TaskId(2)));
        assert_eq!(rq.pop_next(), Some(TaskId(3)));
        assert_eq!(rq.pop_next(), Some(TaskId(1)));
        assert_eq!(rq.pop_next(), None);
    }

    #[test]
    fn cfs_equal_vruntime_breaks_by_id() {
        let mut rq = RunQueue::cfs();
        rq.insert(TaskId(5), 100);
        rq.insert(TaskId(1), 100);
        assert_eq!(rq.pop_next(), Some(TaskId(1)));
    }

    #[test]
    fn cfs_min_vruntime_monotonic() {
        let mut rq = RunQueue::cfs();
        rq.insert(TaskId(1), 500);
        rq.pop_next();
        assert_eq!(rq.min_vruntime(), 500);
        rq.insert(TaskId(2), 100); // a sleeper with old vruntime
        rq.pop_next();
        // min_vruntime never regresses
        assert_eq!(rq.min_vruntime(), 500);
    }

    #[test]
    fn advance_min_vruntime_is_monotonic_and_cfs_only() {
        let mut cfs = RunQueue::cfs();
        cfs.advance_min_vruntime(400);
        assert_eq!(cfs.min_vruntime(), 400);
        cfs.advance_min_vruntime(100); // never regresses
        assert_eq!(cfs.min_vruntime(), 400);
        let mut edf = RunQueue::edf();
        edf.advance_min_vruntime(400);
        assert_eq!(edf.min_vruntime(), 0);
    }

    #[test]
    fn rr_is_fifo() {
        let mut rq = RunQueue::rr();
        rq.insert(TaskId(3), 999);
        rq.insert(TaskId(1), 0);
        assert_eq!(rq.pop_next(), Some(TaskId(3)));
        assert_eq!(rq.pop_next(), Some(TaskId(1)));
    }

    #[test]
    fn edf_pops_earliest_deadline() {
        let mut rq = RunQueue::edf();
        rq.insert(TaskId(1), 3_000_000);
        rq.insert(TaskId(2), 1_000_000);
        rq.insert(TaskId(3), 2_000_000);
        assert_eq!(rq.leftmost_key(), Some(1_000_000));
        assert_eq!(rq.pop_next(), Some(TaskId(2)));
        assert_eq!(rq.pop_next(), Some(TaskId(3)));
        assert_eq!(rq.pop_next(), Some(TaskId(1)));
        assert_eq!(rq.pop_next(), None);
    }

    #[test]
    fn remove_by_id_from_all_kinds() {
        let mut cfs = RunQueue::cfs();
        cfs.insert(TaskId(1), 10);
        cfs.insert(TaskId(2), 5);
        assert!(cfs.remove(TaskId(1)));
        assert!(!cfs.remove(TaskId(1)), "second remove is a no-op");
        assert_eq!(cfs.pop_next(), Some(TaskId(2)));
        assert_eq!(cfs.pop_next(), None);

        let mut rr = RunQueue::rr();
        rr.insert(TaskId(3), 0);
        rr.insert(TaskId(4), 0);
        assert!(rr.remove(TaskId(4)));
        assert!(!rr.remove(TaskId(9)));
        assert_eq!(rr.pop_next(), Some(TaskId(3)));
        assert_eq!(rr.pop_next(), None);

        let mut edf = RunQueue::edf();
        edf.insert(TaskId(5), 100);
        edf.insert(TaskId(6), 50);
        assert!(edf.remove(TaskId(6)));
        assert_eq!(edf.pop_next(), Some(TaskId(5)));
        assert_eq!(edf.pop_next(), None);
    }

    #[test]
    fn iter_len_and_head() {
        let mut rq = RunQueue::cfs();
        rq.insert(TaskId(1), 10);
        rq.insert(TaskId(2), 5);
        assert_eq!(rq.len(), 2);
        assert!(!rq.is_empty());
        let order: Vec<_> = rq.iter().collect();
        assert_eq!(order, vec![TaskId(2), TaskId(1)]);
        assert_eq!(rq.head(), Some(TaskId(2)));
        assert_eq!(rq.leftmost_key(), Some(5));
    }
}
