//! # nfv-sched — simulated OS CPU schedulers
//!
//! Faithful-in-shape models of the three Linux scheduling policies the
//! NFVnice paper evaluates — CFS (`SCHED_NORMAL`), CFS batch
//! (`SCHED_BATCH`) and round robin (`SCHED_RR` at 1 ms / 100 ms quanta) —
//! plus the cgroup `cpu.shares` controller NFVnice drives from user space,
//! and two deadline policies the paper couldn't test: uniform EDF and an
//! SLO-aware variant driven by per-chain latency budgets.
//!
//! The scheduler is passive: the platform event loop dispatches tasks,
//! charges execution segments and consults [`OsScheduler::need_resched`] at
//! batch boundaries, the same granularity at which a tick-based kernel
//! makes preemption effective. Per-task accounting (voluntary/involuntary
//! context switches, CPU time, scheduling latency) reproduces the columns
//! of the paper's Tables 1, 2 and 4.
//!
//! Policies are implemented as sched_ext-style [`Scheduler`] hooks over a
//! neutral [`KernelCtx`] and driven by the generic [`SchedCore`]
//! (statically dispatched — no trait objects). The pre-trait monolithic
//! [`ClassicScheduler`] stays compiled as a differential oracle, selected
//! per run via [`SchedBackend`] or build-wide with
//! `--features classic-sched` (DESIGN.md §12).

#![warn(missing_docs)]

pub mod cgroup;
pub mod classic;
pub mod hooks;
pub mod kernel;
pub mod params;
pub mod runqueue;
pub mod scheduler;
pub mod task;

pub use cgroup::CgroupCpu;
pub use classic::ClassicScheduler;
pub use hooks::{
    CfsSched, CoopSched, EdfSched, EnqueueFlags, PolicyDispatch, RrSched, SchedCore, Scheduler,
};
pub use kernel::{CoreCtx, KernelCtx};
pub use params::{CfsParams, Policy, MAX_SHARES, MIN_SHARES, NICE0_WEIGHT, SLO_DEFAULT_BUDGET};
pub use scheduler::{OsScheduler, SchedBackend};
pub use task::{SwitchKind, Task, TaskId, TaskState};
