//! # nfv-sched — simulated OS CPU schedulers
//!
//! Faithful-in-shape models of the three Linux scheduling policies the
//! NFVnice paper evaluates — CFS (`SCHED_NORMAL`), CFS batch
//! (`SCHED_BATCH`) and round robin (`SCHED_RR` at 1 ms / 100 ms quanta) —
//! plus the cgroup `cpu.shares` controller NFVnice drives from user space.
//!
//! The scheduler is passive: the platform event loop dispatches tasks,
//! charges execution segments and consults [`OsScheduler::need_resched`] at
//! batch boundaries, the same granularity at which a tick-based kernel
//! makes preemption effective. Per-task accounting (voluntary/involuntary
//! context switches, CPU time, scheduling latency) reproduces the columns
//! of the paper's Tables 1, 2 and 4.

#![warn(missing_docs)]

pub mod cgroup;
pub mod params;
pub mod runqueue;
pub mod scheduler;
pub mod task;

pub use cgroup::CgroupCpu;
pub use params::{CfsParams, Policy, MAX_SHARES, MIN_SHARES, NICE0_WEIGHT};
pub use scheduler::OsScheduler;
pub use task::{SwitchKind, Task, TaskId, TaskState};
