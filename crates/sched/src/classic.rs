//! The classic monolithic scheduler, kept compiled as a differential
//! oracle for the hook-based driver — the same role the binary-heap event
//! queue plays for the timer wheel (DESIGN.md §10).
//!
//! [`ClassicScheduler`] is the pre-trait `OsScheduler` shape: one struct,
//! inline `match policy` at every decision point, no hook seam. It shares
//! the [`KernelCtx`] *mechanism* (state transitions and accounting are
//! not what the refactor changed) but makes every *decision* — queue key,
//! wake placement, preemption, slice — in place. Both bugfixes (the
//! min_vruntime staleness fix and the stale `resched_pending` clear on
//! park) and the EDF/SLO policies are implemented here too, so the full
//! quick suite runs under `--features classic-sched` and CI's
//! `bench-variants` matrix can byte-compare the two backends.

use crate::kernel::KernelCtx;
use crate::params::{CfsParams, Policy, SLO_DEFAULT_BUDGET};
use crate::runqueue::RunQueue;
use crate::task::{SwitchKind, TaskId, TaskState};
use nfv_des::{Duration, SimTime};

/// Effectively infinite slice (one simulated year) for policies whose
/// tasks only leave the CPU voluntarily or via wakeup preemption.
const SLICE_UNLIMITED: Duration = Duration::from_secs(31_536_000);

/// The monolithic scheduler: every policy decision inline.
#[derive(Debug)]
pub struct ClassicScheduler {
    policy: Policy,
    /// Shared task table / core state / accounting mechanism.
    pub ctx: KernelCtx,
}

impl ClassicScheduler {
    /// A scheduler for `num_cores` NF cores under `policy`.
    pub fn new(num_cores: usize, policy: Policy, cfs: CfsParams, cs_cost: Duration) -> Self {
        let mk_rq = || match policy {
            Policy::CfsNormal | Policy::CfsBatch => RunQueue::cfs(),
            Policy::RoundRobin { .. } | Policy::Cooperative => RunQueue::rr(),
            Policy::Edf { .. } | Policy::Slo => RunQueue::edf(),
        };
        ClassicScheduler {
            policy,
            ctx: KernelCtx::new(num_cores, mk_rq, cfs, cs_cost),
        }
    }

    /// Relative deadline for newly registered tasks under `policy`.
    fn default_rel_deadline(&self) -> Duration {
        match self.policy {
            Policy::Edf { period } => period,
            Policy::Slo => SLO_DEFAULT_BUDGET,
            _ => Duration::ZERO,
        }
    }

    /// Register a new task pinned to `core`, initially blocked.
    pub fn add_task(&mut self, name: impl Into<String>, core: usize) -> TaskId {
        let rel = self.default_rel_deadline();
        self.ctx.add_task(name, core, rel)
    }

    /// True under either CFS flavour.
    fn is_cfs(&self) -> bool {
        matches!(self.policy, Policy::CfsNormal | Policy::CfsBatch)
    }

    /// True under either deadline policy.
    fn is_deadline(&self) -> bool {
        matches!(self.policy, Policy::Edf { .. } | Policy::Slo)
    }

    /// The runqueue ordering key for `id` under the active policy.
    fn queue_key(&self, id: TaskId) -> u64 {
        if self.is_deadline() {
            self.ctx.tasks[id.index()].deadline
        } else {
            self.ctx.tasks[id.index()].vruntime
        }
    }

    /// Does `contender` (runnable, queued) preempt `curr` (running) on
    /// wakeup under the active policy?
    fn preempts(&self, contender: TaskId, curr: TaskId) -> bool {
        match self.policy {
            Policy::CfsNormal => {
                let curr_vr = self.ctx.tasks[curr.index()].vruntime;
                let cont_vr = self.ctx.tasks[contender.index()].vruntime;
                curr_vr > cont_vr + self.ctx.cfs.wakeup_granularity.as_nanos()
            }
            Policy::Edf { .. } | Policy::Slo => {
                self.ctx.tasks[contender.index()].deadline < self.ctx.tasks[curr.index()].deadline
            }
            Policy::CfsBatch | Policy::RoundRobin { .. } | Policy::Cooperative => false,
        }
    }

    /// Staleness fix: advance the CFS min_vruntime floor against the task
    /// on (or just leaving) the CPU — `max(floor, min(curr, leftmost))`.
    fn advance_floor(&mut self, core: usize, curr_vr: u64) {
        if self.is_cfs() {
            let rq = &mut self.ctx.cores[core].rq;
            let floor = rq.leftmost_key().map_or(curr_vr, |l| curr_vr.min(l));
            rq.advance_min_vruntime(floor);
        }
    }

    /// Make `id` runnable. Returns `true` if the task's core had been
    /// idle.
    pub fn wake(&mut self, id: TaskId, now: SimTime) -> bool {
        let core = self.ctx.tasks[id.index()].core;
        if self.ctx.tasks[id.index()].state != TaskState::Blocked {
            return false;
        }
        if self.is_cfs() {
            // Sleeper placement: resume at no less than min_vruntime −
            // latency/2.
            let floor = self.ctx.cores[core]
                .rq
                .min_vruntime()
                .saturating_sub(self.ctx.cfs.latency.as_nanos() / 2);
            let t = &mut self.ctx.tasks[id.index()];
            t.vruntime = t.vruntime.max(floor);
        }
        if self.is_deadline() {
            // A wakeup starts a new job: deadline = now + rel_deadline.
            let t = &mut self.ctx.tasks[id.index()];
            t.deadline = (now + t.rel_deadline).as_nanos();
        }
        self.ctx.tasks[id.index()].state = TaskState::Runnable;
        self.ctx.tasks[id.index()].runnable_since = now;
        let key = self.queue_key(id);
        self.ctx.cores[core].rq.insert(id, key);

        if let Some(curr) = self.ctx.cores[core].current {
            if self.preempts(id, curr) {
                self.ctx.cores[core].resched_pending = true;
            }
        }
        self.ctx.cores[core].current.is_none()
    }

    /// Forcibly block a task that is not on the CPU. Returns `false` —
    /// and does nothing — when the task is currently running.
    pub fn park(&mut self, id: TaskId, _now: SimTime) -> bool {
        let core = self.ctx.tasks[id.index()].core;
        match self.ctx.tasks[id.index()].state {
            TaskState::Running => false,
            TaskState::Blocked => true,
            TaskState::Runnable => {
                let removed = self.ctx.cores[core].rq.remove(id);
                debug_assert!(removed, "runnable task {id} missing from its runqueue");
                self.ctx.tasks[id.index()].state = TaskState::Blocked;
                // Stale-trigger fix: re-evaluate a pending wakeup
                // preemption against the strongest remaining candidate;
                // downgrade only.
                if self.ctx.cores[core].resched_pending {
                    let keep = match (self.ctx.cores[core].current, self.ctx.cores[core].rq.head())
                    {
                        (Some(curr), Some(head)) => self.preempts(head, curr),
                        _ => false,
                    };
                    self.ctx.cores[core].resched_pending = keep;
                }
                true
            }
        }
    }

    /// Pick the next task to run on an idle `core`.
    ///
    /// # Panics
    /// Panics if the core already has a running task.
    pub fn dispatch(&mut self, core: usize, now: SimTime) -> Option<(TaskId, Duration)> {
        assert!(
            self.ctx.cores[core].current.is_none(),
            "dispatch on busy core {core}"
        );
        let id = self.ctx.cores[core].rq.pop_next()?;
        let slice = self.slice_for(core, id);
        Some(self.ctx.account_dispatch(core, id, slice, now))
    }

    /// Compute the slice the dispatched task receives.
    fn slice_for(&self, core: usize, id: TaskId) -> Duration {
        match self.policy {
            Policy::RoundRobin { quantum } => quantum,
            Policy::Cooperative | Policy::Edf { .. } | Policy::Slo => SLICE_UNLIMITED,
            Policy::CfsNormal | Policy::CfsBatch => {
                let nr = self.ctx.cores[core].rq.len() as u64 + 1;
                let scaled_gran = self.ctx.cfs.min_granularity.as_nanos() * nr;
                let period = self.ctx.cfs.latency.max(Duration::from_nanos(scaled_gran));
                let total_weight: u64 = self.ctx.cores[core]
                    .rq
                    .iter()
                    .map(|t| self.ctx.tasks[t.index()].weight)
                    .sum::<u64>()
                    + self.ctx.tasks[id.index()].weight;
                let share =
                    period.as_nanos() * self.ctx.tasks[id.index()].weight / total_weight.max(1);
                Duration::from_nanos(share).max(self.ctx.cfs.min_granularity)
            }
        }
    }

    /// Charge `dur` of execution to the running task on `core`.
    pub fn charge_current(&mut self, core: usize, dur: Duration) {
        let id = self.ctx.charge(core, dur);
        let curr_vr = self.ctx.tasks[id.index()].vruntime;
        self.advance_floor(core, curr_vr);
    }

    /// The current task blocks. Voluntary switch.
    pub fn block_current(&mut self, core: usize, _now: SimTime) -> TaskId {
        self.ctx.block_current(core)
    }

    /// The current task leaves the CPU but stays runnable.
    pub fn requeue_current(&mut self, core: usize, now: SimTime, kind: SwitchKind) -> TaskId {
        let id = self.ctx.begin_requeue(core, now, kind);
        let curr_vr = self.ctx.tasks[id.index()].vruntime;
        self.advance_floor(core, curr_vr);
        let key = self.queue_key(id);
        self.ctx.cores[core].rq.insert(id, key);
        id
    }
}
