//! Differential testing of the two scheduler backends: random command
//! streams are applied identically to the hook-based driver and the
//! classic monolith, and the full observable state must match after
//! every command. This is the crate-level half of the equivalence
//! argument; the engine-level half (`sched_backends_produce_identical_runs`)
//! replays a full fig7-style simulation, and CI's `bench-variants`
//! matrix byte-diffs the quick suite.

use nfv_des::{Duration, SimTime};
use nfv_sched::{CfsParams, OsScheduler, Policy, SchedBackend, SwitchKind, TaskId, TaskState};
use proptest::prelude::*;

const CORES: usize = 2;

/// One step of the platform-facing API surface.
#[derive(Debug, Clone)]
enum Cmd {
    Wake(u32),
    Park(u32),
    SetWeight(u32, u64),
    SetBudget(u32, u64),
    /// Dispatch on a core if idle; otherwise charge a segment and honor
    /// `need_resched` — exactly the loop shape the platform drives.
    Step {
        core: usize,
        charge_us: u64,
        yield_if_done: bool,
    },
    Block(usize),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u32..6).prop_map(Cmd::Wake),
        (0u32..6).prop_map(Cmd::Park),
        (0u32..6, 1u64..8192).prop_map(|(t, w)| Cmd::SetWeight(t, w)),
        (0u32..6, 10u64..200_000).prop_map(|(t, b)| Cmd::SetBudget(t, b)),
        (0usize..CORES, 1u64..3000, prop::bool::ANY).prop_map(
            |(core, charge_us, yield_if_done)| Cmd::Step {
                core,
                charge_us,
                yield_if_done
            }
        ),
        (0usize..CORES).prop_map(Cmd::Block),
    ]
}

fn policies() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::CfsNormal),
        Just(Policy::CfsBatch),
        Just(Policy::rr_1ms()),
        Just(Policy::Cooperative),
        Just(Policy::Edf {
            period: Duration::from_millis(1)
        }),
        Just(Policy::Slo),
    ]
}

fn build(policy: Policy, backend: SchedBackend) -> OsScheduler {
    let mut s = OsScheduler::with_backend(
        CORES,
        policy,
        CfsParams::default(),
        Duration::from_micros(2),
        backend,
    );
    for i in 0..6 {
        s.add_task(format!("t{i}"), i % CORES);
    }
    s
}

/// Apply one command, advancing `now` identically on both sides.
fn apply(s: &mut OsScheduler, c: &Cmd, now: &mut SimTime) {
    match *c {
        Cmd::Wake(t) => {
            s.wake(TaskId(t), *now);
        }
        Cmd::Park(t) => {
            s.park(TaskId(t), *now);
        }
        Cmd::SetWeight(t, w) => s.set_weight(TaskId(t), w),
        Cmd::SetBudget(t, us) => s.set_task_budget(TaskId(t), Duration::from_micros(us)),
        Cmd::Step {
            core,
            charge_us,
            yield_if_done,
        } => {
            if s.current(core).is_none() {
                s.dispatch(core, *now);
                return;
            }
            let step = Duration::from_micros(charge_us);
            s.charge_current(core, step);
            *now += step;
            if s.need_resched(core, *now) {
                s.requeue_current(core, *now, SwitchKind::Involuntary);
            } else if yield_if_done {
                s.requeue_current(core, *now, SwitchKind::Voluntary);
            }
        }
        Cmd::Block(core) => {
            if s.current(core).is_some() {
                s.block_current(core, *now);
            }
        }
    }
}

/// Everything externally observable about a scheduler, for equality.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    tasks: Vec<(TaskState, u64, u64, u64, u64, u64, u64)>,
    cores: Vec<(Option<TaskId>, usize, bool, u64)>,
}

fn fingerprint(s: &OsScheduler, now: SimTime) -> Fingerprint {
    Fingerprint {
        tasks: s
            .task_ids()
            .map(|id| {
                let t = s.task(id);
                (
                    t.state,
                    t.vruntime,
                    t.deadline,
                    t.cpu_time.as_nanos(),
                    t.voluntary_switches,
                    t.involuntary_switches,
                    t.dispatches,
                )
            })
            .collect(),
        cores: (0..s.num_cores())
            .map(|c| {
                (
                    s.current(c),
                    s.queued(c),
                    s.need_resched(c, now),
                    s.core_busy(c).as_nanos(),
                )
            })
            .collect(),
    }
}

proptest! {
    /// For every policy, the hook-based driver and the classic monolith
    /// stay in lockstep over arbitrary command streams.
    #[test]
    fn backends_stay_in_lockstep(
        policy in policies(),
        cmds in prop::collection::vec(cmd(), 1..120),
    ) {
        let mut hooks = build(policy, SchedBackend::Hooks);
        let mut classic = build(policy, SchedBackend::Classic);
        let mut now_h = SimTime::ZERO;
        let mut now_c = SimTime::ZERO;
        for (i, c) in cmds.iter().enumerate() {
            apply(&mut hooks, c, &mut now_h);
            apply(&mut classic, c, &mut now_c);
            prop_assert_eq!(now_h, now_c);
            let fh = fingerprint(&hooks, now_h);
            let fc = fingerprint(&classic, now_c);
            prop_assert_eq!(fh, fc, "divergence after cmd {} = {:?} ({:?})", i, c, policy);
        }
    }
}
