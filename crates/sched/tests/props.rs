//! Property-based tests for the OS scheduler model: accounting
//! conservation, weight proportionality, and liveness under random
//! workloads.

use nfv_des::{Duration, SimTime};
use nfv_sched::{CfsParams, OsScheduler, Policy, SwitchKind, TaskId};
use proptest::prelude::*;

/// Drive a scheduler with always-runnable tasks for `steps` segments of
/// `step_us`, returning per-task CPU time.
fn drive(sched: &mut OsScheduler, tasks: &[TaskId], steps: u32, step_us: u64) -> Vec<Duration> {
    let mut now = SimTime::ZERO;
    for t in tasks {
        sched.wake(*t, now);
    }
    for _ in 0..steps {
        if sched.current(0).is_none() {
            sched.dispatch(0, now);
        }
        let step = Duration::from_micros(step_us);
        sched.charge_current(0, step);
        now += step;
        if sched.need_resched(0, now) {
            sched.requeue_current(0, now, SwitchKind::Involuntary);
        }
    }
    tasks.iter().map(|t| sched.task(*t).cpu_time).collect()
}

proptest! {
    /// Conservation: total charged time equals the core's busy time.
    #[test]
    fn cpu_time_conservation(
        n in 1usize..6,
        steps in 100u32..2000,
        policy_rr in prop::bool::ANY,
    ) {
        let policy = if policy_rr { Policy::rr_1ms() } else { Policy::CfsNormal };
        let mut s = OsScheduler::new(1, policy, CfsParams::default(), Duration::ZERO);
        let tasks: Vec<_> = (0..n).map(|i| s.add_task(format!("t{i}"), 0)).collect();
        let times = drive(&mut s, &tasks, steps, 50);
        let total: u64 = times.iter().map(|d| d.as_nanos()).sum();
        prop_assert_eq!(total, s.core_busy(0).as_nanos());
        prop_assert_eq!(total, steps as u64 * 50_000);
    }

    /// CFS allocates CPU in proportion to weights among always-runnable
    /// tasks (within 20% after enough slices).
    #[test]
    fn cfs_weight_proportionality(
        w1 in 1u64..8,
        w2 in 1u64..8,
    ) {
        let mut s = OsScheduler::new(1, Policy::CfsNormal, CfsParams::default(), Duration::ZERO);
        let a = s.add_task("a", 0);
        let b = s.add_task("b", 0);
        s.set_weight(a, w1 * 1024);
        s.set_weight(b, w2 * 1024);
        let times = drive(&mut s, &[a, b], 20_000, 50);
        let ratio = times[0].as_nanos() as f64 / times[1].as_nanos() as f64;
        let expected = w1 as f64 / w2 as f64;
        prop_assert!((ratio / expected - 1.0).abs() < 0.2,
            "ratio {ratio} vs expected {expected}");
    }

    /// Liveness: every runnable task eventually runs (no starvation), under
    /// any policy and any weights.
    #[test]
    fn no_starvation(
        n in 2usize..6,
        weights in prop::collection::vec(1u64..100, 5),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => Policy::CfsNormal,
            1 => Policy::CfsBatch,
            _ => Policy::rr_1ms(),
        };
        let mut s = OsScheduler::new(1, policy, CfsParams::default(), Duration::ZERO);
        let tasks: Vec<_> = (0..n).map(|i| s.add_task(format!("t{i}"), 0)).collect();
        for (i, t) in tasks.iter().enumerate() {
            s.set_weight(*t, weights[i % weights.len()].max(nfv_sched::MIN_SHARES));
        }
        let times = drive(&mut s, &tasks, 50_000, 20);
        for (i, t) in times.iter().enumerate() {
            prop_assert!(t.as_nanos() > 0, "task {i} starved (policy {policy:?})");
        }
    }

    /// Dispatch accounting: dispatches == voluntary + involuntary switches
    /// + (1 if currently running) for each task.
    #[test]
    fn switch_accounting_balances(steps in 100u32..3000) {
        let mut s = OsScheduler::new(1, Policy::CfsNormal, CfsParams::default(), Duration::ZERO);
        let tasks: Vec<_> = (0..3).map(|i| s.add_task(format!("t{i}"), 0)).collect();
        drive(&mut s, &tasks, steps, 100);
        for t in &tasks {
            let task = s.task(*t);
            let off_cpu = task.voluntary_switches + task.involuntary_switches;
            let running = s.current(0) == Some(*t);
            prop_assert_eq!(task.dispatches, off_cpu + running as u64);
        }
    }
}
