//! Property-based tests for rings, mempool and flow table.

use nfv_des::SimTime;
use nfv_pkt::{ChainId, FlowId, FlowTableKind, TuplePattern};
use nfv_pkt::{Enqueue, FiveTuple, FlowTable, Mempool, Packet, PktId, Proto, Ring};
use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

/// Reference model of the flow table's external contract: dense LIFO-
/// recycled ids, pinned-vs-learned aging, epoch eviction, cumulative
/// forgotten counters. Keyed by synthetic tuple index, no hashing at all.
#[derive(Default)]
struct ModelTable {
    live: BTreeMap<u16, ModelFlow>,
    free: Vec<u32>,
    next_id: u32,
    epoch: u32,
    wildcards: Vec<(i32, u32)>, // (priority, install seq) → chain by seq
    wildcard_chains: Vec<ChainId>,
    forgotten_packets: u64,
}

struct ModelFlow {
    id: u32,
    chain: ChainId,
    packets: u64,
    pinned: bool,
    last_seen: u32,
}

impl ModelTable {
    fn mint(&mut self, n: u16, chain: ChainId, pinned: bool) -> u32 {
        let id = self.free.pop().unwrap_or_else(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        });
        self.live.insert(
            n,
            ModelFlow {
                id,
                chain,
                packets: 0,
                pinned,
                last_seen: self.epoch,
            },
        );
        id
    }

    fn install(&mut self, n: u16, chain: ChainId) -> u32 {
        if let Some(f) = self.live.get_mut(&n) {
            f.chain = chain;
            f.pinned = true;
            return f.id;
        }
        self.mint(n, chain, true)
    }

    fn install_wildcard(&mut self, chain: ChainId, priority: i32) {
        let seq = self.wildcard_chains.len() as u32;
        self.wildcards.push((priority, seq));
        self.wildcard_chains.push(chain);
    }

    /// Winning rule: highest priority, then earliest install (all model
    /// rules are match-anything patterns).
    fn wildcard_winner(&self) -> Option<ChainId> {
        self.wildcards
            .iter()
            .max_by_key(|&&(p, seq)| (p, std::cmp::Reverse(seq)))
            .map(|&(_, seq)| self.wildcard_chains[seq as usize])
    }

    fn classify(&mut self, n: u16) -> Option<(u32, ChainId)> {
        let epoch = self.epoch;
        if let Some(f) = self.live.get_mut(&n) {
            f.packets += 1;
            if !f.pinned {
                f.last_seen = epoch;
            }
            return Some((f.id, f.chain));
        }
        let chain = self.wildcard_winner()?;
        let id = self.mint(n, chain, false);
        self.live.get_mut(&n).unwrap().packets += 1;
        Some((id, chain))
    }

    fn age(&mut self, idle_epochs: u32) -> Vec<u32> {
        self.epoch += 1;
        let epoch = self.epoch;
        let victims: Vec<u16> = self
            .live
            .iter()
            .filter(|(_, f)| !f.pinned && epoch - f.last_seen > idle_epochs)
            .map(|(&n, _)| n)
            .collect();
        let mut ids: Vec<u32> = Vec::new();
        for n in victims {
            let f = self.live.remove(&n).unwrap();
            self.forgotten_packets += f.packets;
            ids.push(f.id);
        }
        // The engine scans (and frees) in ascending id order.
        ids.sort_unstable();
        self.free.extend(ids.iter().copied());
        ids
    }
}

/// One step of the interleaved churn script.
#[derive(Debug, Clone)]
enum FtOp {
    Install { n: u16, chain: u8 },
    InstallWildcard { chain: u8, priority: i32 },
    Classify { n: u16 },
    Age { idle_epochs: u32 },
}

fn ft_op() -> impl Strategy<Value = FtOp> {
    // The stand-in `prop_oneof!` has no arm weights; repeating the
    // classify arm biases the script toward data-path traffic.
    prop_oneof![
        (0u16..48, 0u8..6).prop_map(|(n, chain)| FtOp::Install { n, chain }),
        (0u8..6, 0u8..4).prop_map(|(chain, priority)| FtOp::InstallWildcard {
            chain,
            priority: priority as i32,
        }),
        (0u16..48).prop_map(|n| FtOp::Classify { n }),
        (0u16..48).prop_map(|n| FtOp::Classify { n }),
        (0u16..48).prop_map(|n| FtOp::Classify { n }),
        (0u16..48).prop_map(|n| FtOp::Classify { n }),
        (1u32..3).prop_map(|idle_epochs| FtOp::Age { idle_epochs }),
    ]
}

proptest! {
    /// The ring behaves exactly like a bounded VecDeque under a random
    /// enqueue/dequeue script, and its counters add up.
    #[test]
    fn ring_matches_reference_model(
        capacity in 1usize..64,
        script in prop::collection::vec(prop::bool::ANY, 1..500),
    ) {
        let mut ring = Ring::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op_is_enqueue in script {
            if op_is_enqueue {
                let ok = ring.enqueue(PktId(next)).is_ok();
                if model.len() < capacity {
                    prop_assert!(ok);
                    model.push_back(next);
                } else {
                    prop_assert!(!ok);
                }
                next += 1;
            } else {
                prop_assert_eq!(ring.dequeue(), model.pop_front().map(PktId));
            }
            prop_assert_eq!(ring.len(), model.len());
        }
        prop_assert_eq!(ring.enqueued, ring.dequeued + ring.len() as u64);
    }

    /// Mempool: in_use + free == capacity at every step; allocated ids are
    /// unique; freed packets round-trip their content.
    #[test]
    fn mempool_conservation(
        capacity in 1usize..64,
        script in prop::collection::vec(prop::bool::ANY, 1..500),
    ) {
        let mut pool = Mempool::new(capacity);
        let mut live: Vec<PktId> = Vec::new();
        let mut seq = 0u64;
        for op_is_alloc in script {
            if op_is_alloc {
                let mut pkt = Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO);
                pkt.seq = seq;
                match pool.alloc(pkt) {
                    Some(id) => {
                        prop_assert!(!live.contains(&id), "duplicate live id");
                        prop_assert_eq!(pool.get(id).seq, seq);
                        live.push(id);
                        seq += 1;
                    }
                    None => prop_assert_eq!(live.len(), capacity),
                }
            } else if let Some(id) = live.pop() {
                pool.free(id);
            }
            prop_assert_eq!(pool.in_use(), live.len());
        }
    }

    /// Flow table: classification counters equal the number of classify
    /// calls per tuple; ids are stable.
    #[test]
    fn flow_table_counts(tuples in prop::collection::vec(0u32..8, 1..300)) {
        let mut ft = FlowTable::new();
        let mut expected = [0u64; 8];
        for &n in &tuples {
            let t = FiveTuple::synthetic(n, Proto::Udp);
            let id = ft.install(t, ChainId(n));
            let (flow, chain) = ft.classify(&t, 64).unwrap();
            prop_assert_eq!(flow, id);
            prop_assert_eq!(chain, ChainId(n));
            expected[n as usize] += 1;
        }
        for n in 0u32..8 {
            let t = FiveTuple::synthetic(n, Proto::Udp);
            if let Some(e) = ft.get(&t) {
                prop_assert_eq!(e.packets, expected[n as usize]);
            } else {
                prop_assert_eq!(expected[n as usize], 0);
            }
        }
    }

    /// Interleaved install / install_wildcard / classify / eviction churn:
    /// the sharded engine, the flat-table oracle and a BTreeMap model all
    /// agree on classification results, flow ids, counters, eviction order
    /// and the conservation accumulator at every step.
    #[test]
    fn flow_table_backends_match_model_under_churn(
        script in prop::collection::vec(ft_op(), 1..400),
    ) {
        let mut sharded = FlowTable::with_kind(FlowTableKind::Sharded);
        let mut flat = FlowTable::with_kind(FlowTableKind::Flat);
        let mut model = ModelTable::default();
        let mut scratch_s = Vec::new();
        let mut scratch_f = Vec::new();
        for op in script {
            match op {
                FtOp::Install { n, chain } => {
                    let t = FiveTuple::synthetic(n as u32, Proto::Udp);
                    let c = ChainId(chain as u32);
                    let fs = sharded.install(t, c);
                    let ff = flat.install(t, c);
                    let fm = model.install(n, c);
                    prop_assert_eq!(fs, ff);
                    prop_assert_eq!(fs, FlowId(fm));
                }
                FtOp::InstallWildcard { chain, priority } => {
                    let c = ChainId(chain as u32);
                    sharded.install_wildcard(TuplePattern::any(), c, priority);
                    flat.install_wildcard(TuplePattern::any(), c, priority);
                    model.install_wildcard(c, priority);
                }
                FtOp::Classify { n } => {
                    let t = FiveTuple::synthetic(n as u32, Proto::Udp);
                    let rs = sharded.classify(&t, 64);
                    let rf = flat.classify(&t, 64);
                    let rm = model.classify(n).map(|(id, c)| (FlowId(id), c));
                    prop_assert_eq!(rs, rf);
                    prop_assert_eq!(rs, rm);
                }
                FtOp::Age { idle_epochs } => {
                    scratch_s.clear();
                    scratch_f.clear();
                    sharded.age(idle_epochs, &mut scratch_s);
                    flat.age(idle_epochs, &mut scratch_f);
                    let em: Vec<FlowId> =
                        model.age(idle_epochs).into_iter().map(FlowId).collect();
                    prop_assert_eq!(&scratch_s, &scratch_f);
                    prop_assert_eq!(&scratch_s, &em);
                }
            }
            prop_assert_eq!(sharded.len(), model.live.len());
            prop_assert_eq!(flat.len(), model.live.len());
        }
        // Terminal state: every tuple's counters and chain agree.
        for n in 0u16..48 {
            let t = FiveTuple::synthetic(n as u32, Proto::Udp);
            let es = sharded.get(&t);
            prop_assert_eq!(es, flat.get(&t));
            match (es, model.live.get(&n)) {
                (Some(e), Some(m)) => {
                    prop_assert_eq!(e.flow, FlowId(m.id));
                    prop_assert_eq!(e.chain, m.chain);
                    prop_assert_eq!(e.packets, m.packets);
                }
                (None, None) => {}
                (e, _) => prop_assert!(false, "presence mismatch for tuple {}: {:?}", n, e),
            }
        }
        prop_assert_eq!(sharded.forgotten_packets(), model.forgotten_packets);
        prop_assert_eq!(flat.forgotten_packets(), model.forgotten_packets);
        prop_assert_eq!(sharded.id_space(), flat.id_space());
        // The running lifetime total must equal live counters + forgotten
        // (the O(1) conservation-ledger invariant).
        let live_sum: u64 = sharded.entries().map(|e| e.packets).sum();
        prop_assert_eq!(sharded.classified_packets(), live_sum + model.forgotten_packets);
        prop_assert_eq!(flat.classified_packets(), sharded.classified_packets());
    }

    /// Watermark comparison is exact integer arithmetic at all fill levels.
    #[test]
    fn watermark_exactness(capacity in 1usize..200, pct in 0u32..=100) {
        let mut ring = Ring::new(capacity);
        let mut i = 0u32;
        loop {
            let expect = ring.len() * 100 >= capacity * pct as usize;
            prop_assert_eq!(ring.at_or_above_percent(pct), expect);
            if let Enqueue::Full = ring.enqueue(PktId(i)) {
                break;
            }
            i += 1;
        }
    }
}
