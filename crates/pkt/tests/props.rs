//! Property-based tests for rings, mempool and flow table.

use nfv_des::SimTime;
use nfv_pkt::{ChainId, FlowId};
use nfv_pkt::{Enqueue, FiveTuple, FlowTable, Mempool, Packet, PktId, Proto, Ring};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// The ring behaves exactly like a bounded VecDeque under a random
    /// enqueue/dequeue script, and its counters add up.
    #[test]
    fn ring_matches_reference_model(
        capacity in 1usize..64,
        script in prop::collection::vec(prop::bool::ANY, 1..500),
    ) {
        let mut ring = Ring::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op_is_enqueue in script {
            if op_is_enqueue {
                let ok = ring.enqueue(PktId(next)).is_ok();
                if model.len() < capacity {
                    prop_assert!(ok);
                    model.push_back(next);
                } else {
                    prop_assert!(!ok);
                }
                next += 1;
            } else {
                prop_assert_eq!(ring.dequeue(), model.pop_front().map(PktId));
            }
            prop_assert_eq!(ring.len(), model.len());
        }
        prop_assert_eq!(ring.enqueued, ring.dequeued + ring.len() as u64);
    }

    /// Mempool: in_use + free == capacity at every step; allocated ids are
    /// unique; freed packets round-trip their content.
    #[test]
    fn mempool_conservation(
        capacity in 1usize..64,
        script in prop::collection::vec(prop::bool::ANY, 1..500),
    ) {
        let mut pool = Mempool::new(capacity);
        let mut live: Vec<PktId> = Vec::new();
        let mut seq = 0u64;
        for op_is_alloc in script {
            if op_is_alloc {
                let mut pkt = Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO);
                pkt.seq = seq;
                match pool.alloc(pkt) {
                    Some(id) => {
                        prop_assert!(!live.contains(&id), "duplicate live id");
                        prop_assert_eq!(pool.get(id).seq, seq);
                        live.push(id);
                        seq += 1;
                    }
                    None => prop_assert_eq!(live.len(), capacity),
                }
            } else if let Some(id) = live.pop() {
                pool.free(id);
            }
            prop_assert_eq!(pool.in_use(), live.len());
        }
    }

    /// Flow table: classification counters equal the number of classify
    /// calls per tuple; ids are stable.
    #[test]
    fn flow_table_counts(tuples in prop::collection::vec(0u32..8, 1..300)) {
        let mut ft = FlowTable::new();
        let mut expected = [0u64; 8];
        for &n in &tuples {
            let t = FiveTuple::synthetic(n, Proto::Udp);
            let id = ft.install(t, ChainId(n));
            let (flow, chain) = ft.classify(&t, 64).unwrap();
            prop_assert_eq!(flow, id);
            prop_assert_eq!(chain, ChainId(n));
            expected[n as usize] += 1;
        }
        for n in 0u32..8 {
            let t = FiveTuple::synthetic(n, Proto::Udp);
            if let Some(e) = ft.get(&t) {
                prop_assert_eq!(e.packets, expected[n as usize]);
            } else {
                prop_assert_eq!(expected[n as usize], 0);
            }
        }
    }

    /// Watermark comparison is exact integer arithmetic at all fill levels.
    #[test]
    fn watermark_exactness(capacity in 1usize..200, pct in 0u32..=100) {
        let mut ring = Ring::new(capacity);
        let mut i = 0u32;
        loop {
            let expect = ring.len() * 100 >= capacity * pct as usize;
            prop_assert_eq!(ring.at_or_above_percent(pct), expect);
            if let Enqueue::Full = ring.enqueue(PktId(i)) {
                break;
            }
            i += 1;
        }
    }
}
