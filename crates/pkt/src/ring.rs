//! Bounded descriptor rings.
//!
//! Models DPDK `rte_ring` as OpenNetVM uses it for per-NF RX/TX queues.
//! The enqueue API reports the post-enqueue occupancy — NFVnice's TX
//! threads use exactly this "feedback about the queue's state in the return
//! value" to detect overload without any extra bookkeeping (§3.5,
//! *separating overload detection and control*).

use crate::ids::PktId;
use std::collections::VecDeque;

/// Result of a ring enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Stored; `occupancy` is the queue length *after* the operation.
    Ok {
        /// Entries in the ring after this enqueue.
        occupancy: usize,
    },
    /// Ring full; the descriptor was not stored.
    Full,
}

impl Enqueue {
    /// True if the descriptor was stored.
    pub fn is_ok(self) -> bool {
        matches!(self, Enqueue::Ok { .. })
    }
}

/// A bounded FIFO of packet descriptors with occupancy statistics.
#[derive(Debug)]
pub struct Ring {
    buf: VecDeque<PktId>,
    capacity: usize,
    /// Total descriptors ever enqueued.
    pub enqueued: u64,
    /// Total descriptors ever dequeued.
    pub dequeued: u64,
    /// Enqueue attempts rejected because the ring was full.
    pub full_drops: u64,
}

impl Ring {
    /// A ring holding at most `capacity` descriptors.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            dequeued: 0,
            full_drops: 0,
        }
    }

    /// Attempt to enqueue one descriptor.
    #[inline]
    pub fn enqueue(&mut self, id: PktId) -> Enqueue {
        if self.buf.len() >= self.capacity {
            self.full_drops += 1;
            return Enqueue::Full;
        }
        self.buf.push_back(id);
        self.enqueued += 1;
        Enqueue::Ok {
            occupancy: self.buf.len(),
        }
    }

    /// Dequeue the oldest descriptor.
    #[inline]
    pub fn dequeue(&mut self) -> Option<PktId> {
        let id = self.buf.pop_front();
        if id.is_some() {
            self.dequeued += 1;
        }
        id
    }

    /// Dequeue up to `n` descriptors into `out` (batch receive).
    pub fn dequeue_burst(&mut self, n: usize, out: &mut Vec<PktId>) -> usize {
        let take = n.min(self.buf.len());
        for _ in 0..take {
            out.push(self.buf.pop_front().unwrap());
        }
        self.dequeued += take as u64;
        take
    }

    /// Peek at the head descriptor without removing it.
    #[inline]
    pub fn peek(&self) -> Option<PktId> {
        self.buf.front().copied()
    }

    /// Iterate over queued descriptors from head to tail (the manager scans
    /// a backlogged NF's queue to find which chains are affected).
    pub fn iter(&self) -> impl Iterator<Item = PktId> + '_ {
        self.buf.iter().copied()
    }

    /// Current queue length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        self.buf.len() as f64 / self.capacity as f64
    }

    /// True when occupancy is at or above `percent`% of capacity.
    /// This is the HIGH_WATER_MARK / LOW_WATER_MARK comparison; integer
    /// arithmetic so thresholds are exact.
    pub fn at_or_above_percent(&self, percent: u32) -> bool {
        self.buf.len() * 100 >= self.capacity * percent as usize
    }

    /// Drain every descriptor (used when a throttled chain's queue is
    /// flushed at simulation teardown).
    pub fn drain_all(&mut self, out: &mut Vec<PktId>) {
        self.dequeued += self.buf.len() as u64;
        out.extend(self.buf.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_reports_occupancy() {
        let mut r = Ring::new(4);
        assert_eq!(r.enqueue(PktId(0)), Enqueue::Ok { occupancy: 1 });
        assert_eq!(r.enqueue(PktId(1)), Enqueue::Ok { occupancy: 2 });
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut r = Ring::new(2);
        assert!(r.enqueue(PktId(0)).is_ok());
        assert!(r.enqueue(PktId(1)).is_ok());
        assert_eq!(r.enqueue(PktId(2)), Enqueue::Full);
        assert_eq!(r.full_drops, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.enqueue(PktId(i));
        }
        for i in 0..5 {
            assert_eq!(r.dequeue(), Some(PktId(i)));
        }
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn burst_dequeue() {
        let mut r = Ring::new(8);
        for i in 0..6 {
            r.enqueue(PktId(i));
        }
        let mut out = Vec::new();
        assert_eq!(r.dequeue_burst(4, &mut out), 4);
        assert_eq!(out, vec![PktId(0), PktId(1), PktId(2), PktId(3)]);
        assert_eq!(r.dequeue_burst(4, &mut out), 2);
        assert_eq!(r.len(), 0);
        assert_eq!(r.dequeued, 6);
    }

    #[test]
    fn watermark_comparisons_exact() {
        let mut r = Ring::new(10);
        for i in 0..8 {
            r.enqueue(PktId(i));
        }
        assert!(r.at_or_above_percent(80));
        assert!(!r.at_or_above_percent(81));
        assert!((r.fill_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn iter_and_peek_do_not_consume() {
        let mut r = Ring::new(4);
        r.enqueue(PktId(7));
        r.enqueue(PktId(8));
        assert_eq!(r.peek(), Some(PktId(7)));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![PktId(7), PktId(8)]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn drain_all_counts_dequeues() {
        let mut r = Ring::new(4);
        r.enqueue(PktId(0));
        r.enqueue(PktId(1));
        let mut out = Vec::new();
        r.drain_all(&mut out);
        assert_eq!(out.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dequeued, 2);
        assert_eq!(r.capacity(), 4);
    }
}
