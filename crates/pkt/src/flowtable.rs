//! Flow table: classifies arriving packets to flows and service chains.
//!
//! The NF manager's RX threads look up each arriving packet here to find
//! which chain (and therefore which first NF) it belongs to — the same role
//! as OpenNetVM's flow table + flow rule installer. Rules are installed at
//! configuration time by the harness (standing in for an SDN controller),
//! and an exact miss consults prioritized wildcard rules, caching the
//! decision as an exact entry (the reactive flow-director pattern).
//!
//! # Million-flow engine
//!
//! The table is built to hold millions of concurrent flows:
//!
//! - **SoA layout.** The classify hot path touches three parallel arrays
//!   indexed by flow id: `keys` (the 5-tuples, compared on probe), `hot`
//!   (chain + aging stamp, written every packet) and `cold` (packet/byte
//!   counters). Splitting hot from cold keeps the per-packet working set
//!   small.
//! - **Sharded open addressing.** The exact-match index is a set of
//!   power-of-two linear-probing shards selected by the *high* bits of a
//!   seed-free multiply-xor tuple hash (in-shard position uses the low
//!   bits). Growth rehashes one shard at a time, so the amortized rehash
//!   spike is 1/64th of a monolithic table's. The pre-shard flat table
//!   survives as a differential oracle: select per table via
//!   [`FlowTable::with_kind`] / [`FlowTableKind`], or build flat-default
//!   with `--features flat-flowtable`. Ids, classification results and
//!   eviction order are byte-identical across backends (CI
//!   `bench-variants` matrix); only internal probe/rehash counters differ, and those go to
//!   `BENCH_timings.json` only.
//! - **Deterministic aging.** Every entry carries an epoch-granular
//!   `last_seen` stamp. [`FlowTable::age`] advances the epoch and scans in
//!   flow-id order, evicting wildcard-learned entries idle for more than
//!   `idle_epochs` epochs. Explicitly installed entries are pinned and
//!   never aged out. Freed ids go on a free list (popped LIFO) so the id
//!   space stays dense at the peak concurrent flow count. Counters of
//!   evicted flows accumulate into `forgotten_packets`/`forgotten_bytes`
//!   so packet-conservation ledgers still balance.

use crate::ids::{ChainId, FlowId};
use crate::packet::FiveTuple;
use crate::pattern::TuplePattern;

/// Per-flow record: a by-value view assembled from the table's SoA
/// columns. Aging bookkeeping is deliberately not exposed here — it must
/// never leak into metrics or trace output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEntry {
    /// Interned flow id.
    pub flow: FlowId,
    /// Service chain assigned to this flow.
    pub chain: ChainId,
    /// Packets classified for this flow (since install or recycle).
    pub packets: u64,
    /// Bytes classified for this flow (since install or recycle).
    pub bytes: u64,
}

/// Exact-match index backend selector (mirrors `QueueKind` /
/// `SchedBackend`): the sharded engine is the default, the flat
/// single-table survives as a differential oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTableKind {
    /// Sharded open addressing: 64 shards by tuple-hash high bits.
    Sharded,
    /// One monolithic open-addressing table (the pre-shard engine).
    Flat,
}

impl FlowTableKind {
    /// The build-default backend: `Sharded`, unless the crate was built
    /// with `--features flat-flowtable`.
    pub fn default_kind() -> Self {
        if cfg!(feature = "flat-flowtable") {
            FlowTableKind::Flat
        } else {
            FlowTableKind::Sharded
        }
    }
}

impl Default for FlowTableKind {
    fn default() -> Self {
        Self::default_kind()
    }
}

/// Flow aging policy. `idle_epochs == 0` disables aging entirely (the
/// default — default configs stay byte-identical to the pre-aging
/// engine, same idiom as `FaultConfig::stall_ticks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowAging {
    /// Evict a wildcard-learned flow once it has been idle for more than
    /// this many completed epochs. `0` disables aging.
    pub idle_epochs: u32,
    /// Monitor ticks per aging epoch (the engine advances the epoch and
    /// runs the eviction scan every this many monitor ticks).
    pub epoch_ticks: u32,
}

impl FlowAging {
    /// Is aging enabled?
    pub fn enabled(&self) -> bool {
        self.idle_epochs > 0
    }
}

impl Default for FlowAging {
    fn default() -> Self {
        FlowAging {
            idle_epochs: 0,
            epoch_ticks: 16,
        }
    }
}

/// Internal flow-table counters. Probe/rehash numbers depend on the
/// index backend, so — like `QueueStats` — they are reported only through
/// `BENCH_timings.json`-style channels, never metrics or trace output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Fresh installs (explicit or wildcard-learned), including recycles.
    pub installs: u64,
    /// Installs that reused a freed flow id.
    pub recycled: u64,
    /// Entries evicted by aging.
    pub evicted: u64,
    /// Classify calls answered by the exact-match index.
    pub exact_hits: u64,
    /// Exact hits answered by the last-flow memo (no hash or probe).
    /// Subset of `exact_hits`.
    pub memo_hits: u64,
    /// Classify calls answered by a wildcard rule (installing a cache
    /// entry).
    pub wildcard_hits: u64,
    /// Cumulative probe steps across lookups and installs.
    pub probe_steps: u64,
    /// Longest single probe sequence observed.
    pub max_probe: u64,
    /// Shard grow-and-rehash events.
    pub rehashes: u64,
    /// Number of index shards.
    pub shards: u64,
    /// Total index slots across shards (current capacity).
    pub slots: u64,
    /// Live entries (pinned + wildcard-learned).
    pub live: u64,
    /// Live entries pinned by explicit install.
    pub pinned: u64,
}

/// A wildcard rule: pattern → chain at a priority (higher wins).
#[derive(Debug, Clone)]
struct WildcardRule {
    pattern: TuplePattern,
    chain: ChainId,
    priority: i32,
}

/// Memo sentinel: no flow cached (flow ids are dense from 0 and can
/// never reach `u32::MAX` — the `last_seen` sentinels cap the id space
/// well below it).
const NO_MEMO: u32 = u32::MAX;

/// `last_seen` sentinel: explicitly installed, never aged out.
const PINNED: u32 = u32::MAX;
/// `last_seen` sentinel: slot evicted, id parked on the free list.
const DEAD: u32 = u32::MAX - 1;
/// Epochs saturate below the sentinels.
const MAX_EPOCH: u32 = DEAD - 1;

/// Hot per-flow record: everything the per-packet path writes.
#[derive(Debug, Clone, Copy)]
struct HotSlot {
    chain: ChainId,
    last_seen: u32,
}

/// Cold per-flow counters: read on the control path only.
#[derive(Debug, Clone, Copy, Default)]
struct ColdSlot {
    packets: u64,
    bytes: u64,
}

/// Seed-free multiply-xor hash of a 5-tuple (the ports/proto and the two
/// addresses each get one round). Quality only affects probe length.
#[inline]
fn tuple_hash(t: &FiveTuple) -> u64 {
    const M: u64 = 0x9e37_79b9_7f4a_7c15;
    let a = ((t.src_ip as u64) << 32) | t.dst_ip as u64;
    let b = ((t.src_port as u64) << 24) | ((t.dst_port as u64) << 8) | t.proto as u64;
    let mut h = (a ^ M).wrapping_mul(M);
    h ^= h >> 32;
    h = (h ^ b).wrapping_mul(M);
    h ^ (h >> 29)
}

const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS;

/// One open-addressing region: power-of-two slot array, linear probing,
/// grown at 1/2 occupancy to keep probes short. `0` is empty, else
/// `flow_index + 1`. In-shard position comes from the hash's low bits.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<u32>,
    used: usize,
}

impl Shard {
    /// Find the flow holding `tuple`. Returns `(flow, probe steps)`.
    #[inline]
    fn get(&self, h: u64, tuple: &FiveTuple, keys: &[FiveTuple]) -> (Option<u32>, u64) {
        let (slot, steps) = self.find_slot(h, tuple, keys);
        (slot.map(|i| self.slots[i] - 1), steps)
    }

    /// Slot index holding `tuple`, or `None`, plus the probe length.
    #[inline]
    fn find_slot(&self, h: u64, tuple: &FiveTuple, keys: &[FiveTuple]) -> (Option<usize>, u64) {
        if self.slots.is_empty() {
            return (None, 0);
        }
        let mask = self.slots.len() - 1;
        let mut i = h as usize & mask;
        let mut steps = 1u64;
        loop {
            match self.slots[i] {
                0 => return (None, steps),
                f if keys[(f - 1) as usize] == *tuple => return (Some(i), steps),
                _ => {
                    i = (i + 1) & mask;
                    steps += 1;
                }
            }
        }
    }

    /// Insert a flow known to be absent. Returns `(rehashes, probe steps)`.
    fn insert(&mut self, h: u64, flow: u32, keys: &[FiveTuple]) -> (u64, u64) {
        let mut rehashes = 0;
        // Keep occupancy at or below 1/2 so probe sequences stay short
        // even under adversarial tuple mixes.
        if self.slots.len() < 2 * (self.used + 1) {
            self.grow(keys);
            rehashes = 1;
        }
        let mask = self.slots.len() - 1;
        let mut i = h as usize & mask;
        let mut steps = 1u64;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
            steps += 1;
        }
        self.slots[i] = flow + 1;
        self.used += 1;
        (rehashes, steps)
    }

    /// Grow to 4× the live count and rehash this shard only. Iterating the
    /// old slot array keeps the layout a pure function of the table's
    /// install/evict history.
    fn grow(&mut self, keys: &[FiveTuple]) {
        let cap = (4 * (self.used + 1)).next_power_of_two().max(8);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize(cap, 0);
        let mask = cap - 1;
        for f in old {
            if f == 0 {
                continue;
            }
            let mut i = tuple_hash(&keys[(f - 1) as usize]) as usize & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = f;
        }
    }

    /// Remove `tuple` with backward-shift deletion (no tombstones: later
    /// entries of the probe cluster are pulled back so lookups stay
    /// correct and probe lengths do not rot as flows churn).
    fn remove(&mut self, h: u64, tuple: &FiveTuple, keys: &[FiveTuple]) {
        let (Some(mut i), _) = self.find_slot(h, tuple, keys) else {
            return;
        };
        let mask = self.slots.len() - 1;
        self.slots[i] = 0;
        self.used -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let f = self.slots[j];
            if f == 0 {
                return;
            }
            let ideal = tuple_hash(&keys[(f - 1) as usize]) as usize & mask;
            // `f` may move into the hole iff its ideal slot is at or
            // before the hole in cyclic probe order.
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots[i] = f;
                self.slots[j] = 0;
                i = j;
            }
        }
    }
}

/// The exact-match index: one shard (flat oracle) or 64 (sharded engine).
#[derive(Debug)]
enum Index {
    Flat(Shard),
    Sharded(Vec<Shard>),
}

impl Index {
    fn with_kind(kind: FlowTableKind) -> Self {
        match kind {
            FlowTableKind::Flat => Index::Flat(Shard::default()),
            FlowTableKind::Sharded => {
                let mut shards = Vec::with_capacity(SHARDS);
                shards.resize_with(SHARDS, Shard::default);
                Index::Sharded(shards)
            }
        }
    }

    #[inline]
    fn shard(&self, h: u64) -> &Shard {
        match self {
            Index::Flat(s) => s,
            Index::Sharded(v) => &v[(h >> (64 - SHARD_BITS)) as usize],
        }
    }

    #[inline]
    fn shard_mut(&mut self, h: u64) -> &mut Shard {
        match self {
            Index::Flat(s) => s,
            Index::Sharded(v) => &mut v[(h >> (64 - SHARD_BITS)) as usize],
        }
    }

    fn shard_count(&self) -> usize {
        match self {
            Index::Flat(_) => 1,
            Index::Sharded(v) => v.len(),
        }
    }

    fn slot_count(&self) -> usize {
        match self {
            Index::Flat(s) => s.slots.len(),
            Index::Sharded(v) => v.iter().map(|s| s.slots.len()).sum(),
        }
    }
}

/// 5-tuple flow table: exact-match entries backed by prioritized wildcard
/// rules. See the module docs for the engine layout; all ordered views
/// (iteration, the eviction scan) go through flow-id order, never the
/// index, so external behavior is identical across index backends.
#[derive(Debug)]
pub struct FlowTable {
    /// Tuple keys by flow id (probed on lookup).
    keys: Vec<FiveTuple>,
    /// Hot per-flow records by flow id.
    hot: Vec<HotSlot>,
    /// Cold per-flow counters by flow id.
    cold: Vec<ColdSlot>,
    /// Freed flow ids, popped LIFO on install.
    free: Vec<u32>,
    /// Live entries (`keys.len()` minus dead slots).
    live: usize,
    /// Current aging epoch.
    epoch: u32,
    /// Running total of packets classified over the table's lifetime —
    /// always `Σ live entry packets + forgotten_packets`, maintained
    /// incrementally so the conservation ledger is O(1) even with a
    /// million live flows.
    classified_packets: u64,
    /// Packets classified to since-evicted flows (conservation ledger).
    forgotten_packets: u64,
    /// Bytes classified to since-evicted flows.
    forgotten_bytes: u64,
    wildcards: Vec<WildcardRule>,
    index: Index,
    kind: FlowTableKind,
    stats: FlowTableStats,
    /// Last flow id classified: traffic sources emit per-flow bursts, so
    /// consecutive classify calls usually repeat a tuple — an inline key
    /// compare (no slab load, so a miss costs one branch even with a
    /// million cold flows) skips the hash + probe entirely. The memo is
    /// invalidated at the only two places its slot's key can stop meaning
    /// this tuple — eviction ([`FlowTable::age`]) and slot recycling
    /// ([`FlowTable::intern`]) — so an armed memo always names a live
    /// slot whose key equals `memo_key`.
    memo: u32,
    /// Copy of the armed memo slot's tuple (valid iff `memo != NO_MEMO`).
    memo_key: FiveTuple,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::with_kind(FlowTableKind::default_kind())
    }
}

impl FlowTable {
    /// An empty table on the build-default backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table on an explicit index backend.
    pub fn with_kind(kind: FlowTableKind) -> Self {
        FlowTable {
            keys: Vec::new(),
            hot: Vec::new(),
            cold: Vec::new(),
            free: Vec::new(),
            live: 0,
            epoch: 0,
            classified_packets: 0,
            forgotten_packets: 0,
            forgotten_bytes: 0,
            wildcards: Vec::new(),
            index: Index::with_kind(kind),
            kind,
            stats: FlowTableStats::default(),
            memo: NO_MEMO,
            // Placeholder: never read while the memo is disarmed.
            memo_key: FiveTuple::synthetic(0, crate::Proto::Udp),
        }
    }

    /// The index backend this table runs on.
    pub fn kind(&self) -> FlowTableKind {
        self.kind
    }

    #[inline]
    fn note_probe(&mut self, steps: u64) {
        self.stats.probe_steps += steps;
        if steps > self.stats.max_probe {
            self.stats.max_probe = steps;
        }
    }

    /// Install a rule mapping `tuple` to `chain`, returning the interned
    /// [`FlowId`]. Reinstalling an existing tuple updates its chain (rule
    /// replacement) and keeps its id and counters. Explicit installs are
    /// pinned: they are never aged out.
    pub fn install(&mut self, tuple: FiveTuple, chain: ChainId) -> FlowId {
        self.intern(tuple, chain, PINNED)
    }

    /// Exact-match install shared by [`FlowTable::install`] (pinned) and
    /// the wildcard cache path (stamped with the current epoch).
    fn intern(&mut self, tuple: FiveTuple, chain: ChainId, stamp: u32) -> FlowId {
        let h = tuple_hash(&tuple);
        let (found, steps) = self.index.shard(h).get(h, &tuple, &self.keys);
        self.note_probe(steps);
        if let Some(f) = found {
            let hs = &mut self.hot[f as usize];
            hs.chain = chain;
            if stamp == PINNED {
                hs.last_seen = PINNED;
            } else if hs.last_seen != PINNED {
                hs.last_seen = stamp;
            }
            return FlowId(f);
        }
        let id = match self.free.pop() {
            Some(id) => {
                // Recycled slot: fresh key/counters, same dense id space.
                // The slot changes identity, so a memo naming it is stale.
                if self.memo == id {
                    self.memo = NO_MEMO;
                }
                self.stats.recycled += 1;
                self.keys[id as usize] = tuple;
                self.hot[id as usize] = HotSlot {
                    chain,
                    last_seen: stamp,
                };
                self.cold[id as usize] = ColdSlot::default();
                id
            }
            None => {
                let id = self.keys.len() as u32;
                self.keys.push(tuple);
                self.hot.push(HotSlot {
                    chain,
                    last_seen: stamp,
                });
                self.cold.push(ColdSlot::default());
                id
            }
        };
        let (rehashes, steps) = self.index.shard_mut(h).insert(h, id, &self.keys);
        self.stats.rehashes += rehashes;
        self.note_probe(steps);
        self.live += 1;
        self.stats.installs += 1;
        FlowId(id)
    }

    /// Install a wildcard rule at `priority` (higher wins on overlap).
    /// The rule list is kept sorted highest-priority-first; binary-search
    /// the insertion point so each install is O(log n) compare + shift,
    /// and equal priorities keep installation order.
    pub fn install_wildcard(&mut self, pattern: TuplePattern, chain: ChainId, priority: i32) {
        let at = self.wildcards.partition_point(|r| r.priority >= priority);
        self.wildcards.insert(
            at,
            WildcardRule {
                pattern,
                chain,
                priority,
            },
        );
    }

    /// Number of wildcard rules installed.
    pub fn wildcard_count(&self) -> usize {
        self.wildcards.len()
    }

    /// Classify a packet: exact match first; on miss, the wildcard rules.
    /// A wildcard hit installs an exact cache entry so subsequent packets
    /// of the flow take the fast path. Returns `None` for unmatched
    /// traffic (the RX thread drops it).
    #[inline]
    pub fn classify(&mut self, tuple: &FiveTuple, bytes: u32) -> Option<(FlowId, ChainId)> {
        // Last-flow memo: a hit here is exactly the exact-match path below
        // minus the hash + probe. The key copy lives inline so a memo
        // miss touches no slab memory — with a million cold flows the two
        // slab loads a slot-indexed check would take are guaranteed cache
        // misses. Eviction and recycling disarm the memo, so an armed
        // memo always names a live slot holding `memo_key`.
        let m = self.memo;
        if m != NO_MEMO && self.memo_key == *tuple {
            self.stats.exact_hits += 1;
            self.stats.memo_hits += 1;
            let hs = &mut self.hot[m as usize];
            if hs.last_seen != PINNED {
                hs.last_seen = self.epoch;
            }
            let chain = hs.chain;
            let c = &mut self.cold[m as usize];
            c.packets += 1;
            c.bytes += bytes as u64;
            self.classified_packets += 1;
            return Some((FlowId(m), chain));
        }
        let h = tuple_hash(tuple);
        let (found, steps) = self.index.shard(h).get(h, tuple, &self.keys);
        self.note_probe(steps);
        if let Some(f) = found {
            self.memo = f;
            self.memo_key = *tuple;
            self.stats.exact_hits += 1;
            let hs = &mut self.hot[f as usize];
            if hs.last_seen != PINNED {
                hs.last_seen = self.epoch;
            }
            let chain = hs.chain;
            let c = &mut self.cold[f as usize];
            c.packets += 1;
            c.bytes += bytes as u64;
            self.classified_packets += 1;
            return Some((FlowId(f), chain));
        }
        let chain = self
            .wildcards
            .iter()
            .find(|r| r.pattern.matches(tuple))?
            .chain;
        self.stats.wildcard_hits += 1;
        let flow = self.intern(*tuple, chain, self.epoch);
        self.memo = flow.index() as u32;
        self.memo_key = *tuple;
        let c = &mut self.cold[flow.index()];
        c.packets += 1;
        c.bytes += bytes as u64;
        self.classified_packets += 1;
        Some((flow, chain))
    }

    /// Advance the aging epoch and evict wildcard-learned entries idle
    /// for more than `idle_epochs` completed epochs, appending their ids
    /// (ascending) to `evicted`. Pinned entries always survive. The scan
    /// runs in flow-id order, so eviction (and therefore id recycling) is
    /// identical across index backends. No-op when `idle_epochs == 0`.
    pub fn age(&mut self, idle_epochs: u32, evicted: &mut Vec<FlowId>) {
        if idle_epochs == 0 {
            return;
        }
        if self.epoch < MAX_EPOCH {
            self.epoch += 1;
        }
        for id in 0..self.keys.len() as u32 {
            let seen = self.hot[id as usize].last_seen;
            if seen >= DEAD || self.epoch - seen <= idle_epochs {
                continue;
            }
            let tuple = self.keys[id as usize];
            let h = tuple_hash(&tuple);
            self.index.shard_mut(h).remove(h, &tuple, &self.keys);
            self.hot[id as usize].last_seen = DEAD;
            // An evicted slot keeps its key; disarm a memo naming it so
            // the next classify goes through the index (which no longer
            // holds the tuple).
            if self.memo == id {
                self.memo = NO_MEMO;
            }
            let c = self.cold[id as usize];
            self.forgotten_packets += c.packets;
            self.forgotten_bytes += c.bytes;
            self.live -= 1;
            self.stats.evicted += 1;
            self.free.push(id);
            evicted.push(FlowId(id));
        }
    }

    /// The current aging epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total packets classified over the table's lifetime — equal to the
    /// live entries' packet counters plus [`FlowTable::forgotten_packets`],
    /// maintained as a running total so packet-conservation ledgers stay
    /// O(1) regardless of table size.
    pub fn classified_packets(&self) -> u64 {
        self.classified_packets
    }

    /// Packets counted for flows that have since been evicted. Add this
    /// to the live entries' counters to get total classified packets
    /// (packet-conservation ledgers need the sum).
    pub fn forgotten_packets(&self) -> u64 {
        self.forgotten_packets
    }

    /// Bytes counted for flows that have since been evicted.
    pub fn forgotten_bytes(&self) -> u64 {
        self.forgotten_bytes
    }

    /// Look up without mutating counters or aging stamps.
    #[inline]
    pub fn get(&self, tuple: &FiveTuple) -> Option<FlowEntry> {
        let h = tuple_hash(tuple);
        let (found, _) = self.index.shard(h).get(h, tuple, &self.keys);
        found.map(|f| self.entry_of(f))
    }

    fn entry_of(&self, f: u32) -> FlowEntry {
        FlowEntry {
            flow: FlowId(f),
            chain: self.hot[f as usize].chain,
            packets: self.cold[f as usize].packets,
            bytes: self.cold[f as usize].bytes,
        }
    }

    /// The tuple for a given (live) flow id.
    pub fn tuple_of(&self, flow: FlowId) -> FiveTuple {
        debug_assert!(self.hot[flow.index()].last_seen != DEAD);
        self.keys[flow.index()]
    }

    /// Number of live flows (pinned + wildcard-learned, excluding evicted
    /// slots awaiting recycle).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no flows are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Size of the flow-id space (live + free slots): the upper bound any
    /// returned `FlowId` indexes into. Dense: peaks at the maximum
    /// concurrent flow count, not the total ever seen.
    pub fn id_space(&self) -> usize {
        self.keys.len()
    }

    /// Iterate over all live entries (deterministic order by flow id).
    pub fn entries(&self) -> impl Iterator<Item = FlowEntry> + '_ {
        (0..self.keys.len() as u32)
            .filter(|&id| self.hot[id as usize].last_seen != DEAD)
            .map(|id| self.entry_of(id))
    }

    /// Internal counters snapshot (occupancy fields filled on demand).
    /// Backend-dependent — report via `BENCH_timings.json` only.
    pub fn stats(&self) -> FlowTableStats {
        let mut s = self.stats;
        s.shards = self.index.shard_count() as u64;
        s.slots = self.index.slot_count() as u64;
        s.live = self.live as u64;
        s.pinned = self.hot.iter().filter(|h| h.last_seen == PINNED).count() as u64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Proto;

    #[test]
    fn install_and_classify() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let f = ft.install(t, ChainId(2));
        assert_eq!(ft.classify(&t, 64), Some((f, ChainId(2))));
        assert_eq!(ft.get(&t).unwrap().packets, 1);
        assert_eq!(ft.get(&t).unwrap().bytes, 64);
    }

    #[test]
    fn unknown_tuple_unclassified() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(9, Proto::Tcp);
        assert_eq!(ft.classify(&t, 64), None);
    }

    #[test]
    fn reinstall_keeps_id_and_counters() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let f1 = ft.install(t, ChainId(0));
        ft.classify(&t, 100);
        let f2 = ft.install(t, ChainId(5));
        assert_eq!(f1, f2);
        assert_eq!(ft.get(&t).unwrap().chain, ChainId(5));
        assert_eq!(ft.get(&t).unwrap().packets, 1);
        assert_eq!(ft.len(), 1);
    }

    #[test]
    fn wildcard_miss_then_hit_caches_exact_entry() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0a000000, 8)),
            ChainId(3),
            0,
        );
        let t = FiveTuple::synthetic(1, Proto::Udp); // src in 10/8
        assert_eq!(ft.len(), 0);
        let (flow, chain) = ft.classify(&t, 64).unwrap();
        assert_eq!(chain, ChainId(3));
        assert_eq!(ft.len(), 1, "exact entry cached");
        // second packet takes the exact path, same flow id
        assert_eq!(ft.classify(&t, 64), Some((flow, chain)));
        assert_eq!(ft.get(&t).unwrap().packets, 2);
    }

    #[test]
    fn wildcard_priority_order() {
        use crate::pattern::TuplePattern;
        let mut ft = FlowTable::new();
        ft.install_wildcard(TuplePattern::any(), ChainId(1), 0);
        ft.install_wildcard(TuplePattern::any().proto(Proto::Tcp), ChainId(2), 10);
        let tcp = FiveTuple::synthetic(1, Proto::Tcp);
        let udp = FiveTuple::synthetic(2, Proto::Udp);
        assert_eq!(ft.classify(&tcp, 64).unwrap().1, ChainId(2));
        assert_eq!(ft.classify(&udp, 64).unwrap().1, ChainId(1));
        assert_eq!(ft.wildcard_count(), 2);
    }

    #[test]
    fn unmatched_by_any_rule_is_none() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0b000000, 8)),
            ChainId(0),
            0,
        );
        let t = FiveTuple::synthetic(1, Proto::Udp); // src 10/8, not 11/8
        assert_eq!(ft.classify(&t, 64), None);
    }

    #[test]
    fn flow_ids_sequential_and_reversible() {
        let mut ft = FlowTable::new();
        let a = FiveTuple::synthetic(1, Proto::Udp);
        let b = FiveTuple::synthetic(2, Proto::Udp);
        let fa = ft.install(a, ChainId(0));
        let fb = ft.install(b, ChainId(0));
        assert_eq!(fa, FlowId(0));
        assert_eq!(fb, FlowId(1));
        assert_eq!(ft.tuple_of(fa), a);
        assert_eq!(ft.tuple_of(fb), b);
        assert_eq!(ft.entries().count(), 2);
    }

    #[test]
    fn equal_priority_wildcards_keep_install_order() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        // Both match src 10/8; first installed must win at equal priority.
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0a000000, 8)),
            ChainId(1),
            5,
        );
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0a000000, 8)),
            ChainId(2),
            5,
        );
        // Higher priority inserted later still wins.
        ft.install_wildcard(TuplePattern::any().proto(Proto::Tcp), ChainId(3), 9);
        let udp = FiveTuple::synthetic(1, Proto::Udp);
        let tcp = FiveTuple::synthetic(2, Proto::Tcp);
        assert_eq!(ft.classify(&udp, 64).unwrap().1, ChainId(1));
        assert_eq!(ft.classify(&tcp, 64).unwrap().1, ChainId(3));
    }

    fn aging_table(kind: FlowTableKind) -> FlowTable {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::with_kind(kind);
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0a000000, 8)),
            ChainId(0),
            0,
        );
        ft
    }

    #[test]
    fn aging_evicts_idle_learned_flows_and_recycles_ids() {
        let mut ft = aging_table(FlowTableKind::default_kind());
        let a = FiveTuple::synthetic(1, Proto::Udp);
        let b = FiveTuple::synthetic(2, Proto::Udp);
        let (fa, _) = ft.classify(&a, 100).unwrap();
        let (fb, _) = ft.classify(&b, 100).unwrap();
        assert_eq!(ft.len(), 2);

        let mut ev = Vec::new();
        ft.age(1, &mut ev); // epoch 1: idle for 1 epoch, not yet > 1
        assert!(ev.is_empty());
        ft.age(1, &mut ev); // epoch 2: idle for 2 epochs > 1 → evict
        assert_eq!(ev, vec![fa, fb], "evicted in ascending id order");
        assert_eq!(ft.len(), 0);
        assert!(ft.get(&a).is_none());
        assert_eq!(ft.forgotten_packets(), 2);
        assert_eq!(ft.forgotten_bytes(), 200);
        assert_eq!(ft.entries().count(), 0);

        // Recycle: free list pops LIFO, counters restart from zero.
        let c = FiveTuple::synthetic(3, Proto::Udp);
        let (fc, _) = ft.classify(&c, 64).unwrap();
        assert_eq!(fc, fb, "highest freed id reused first");
        assert_eq!(ft.get(&c).unwrap().packets, 1);
        assert_eq!(ft.id_space(), 2, "id space stays dense");
        assert_eq!(ft.stats().recycled, 1);
    }

    #[test]
    fn pinned_and_recently_seen_flows_survive_aging() {
        let mut ft = aging_table(FlowTableKind::default_kind());
        let pinned = FiveTuple::synthetic(1, Proto::Udp);
        let warm = FiveTuple::synthetic(2, Proto::Udp);
        let idle = FiveTuple::synthetic(3, Proto::Udp);
        ft.install(pinned, ChainId(0));
        ft.classify(&warm, 64).unwrap();
        let (f_idle, _) = ft.classify(&idle, 64).unwrap();

        let mut ev = Vec::new();
        for _ in 0..4 {
            ft.age(2, &mut ev);
            ft.classify(&warm, 64).unwrap(); // keep `warm` fresh each epoch
        }
        assert_eq!(ev, vec![f_idle], "only the idle learned flow ages out");
        assert!(ft.get(&pinned).is_some());
        assert!(ft.get(&warm).is_some());
    }

    #[test]
    fn explicit_install_pins_a_learned_flow() {
        let mut ft = aging_table(FlowTableKind::default_kind());
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let (f, _) = ft.classify(&t, 64).unwrap();
        ft.install(t, ChainId(7)); // promote to pinned, keep id
        let mut ev = Vec::new();
        for _ in 0..5 {
            ft.age(1, &mut ev);
        }
        assert!(ev.is_empty());
        assert_eq!(ft.get(&t).unwrap().flow, f);
        assert_eq!(ft.get(&t).unwrap().chain, ChainId(7));
    }

    #[test]
    fn backends_agree_under_install_classify_evict_churn() {
        let mut sharded = aging_table(FlowTableKind::Sharded);
        let mut flat = aging_table(FlowTableKind::Flat);
        for round in 0..6u32 {
            for n in 0..200u32 {
                let t = FiveTuple::synthetic(round * 97 + n, Proto::Udp);
                let a = sharded.classify(&t, 64);
                let b = flat.classify(&t, 64);
                assert_eq!(a, b);
            }
            let (mut ev_s, mut ev_f) = (Vec::new(), Vec::new());
            sharded.age(1, &mut ev_s);
            flat.age(1, &mut ev_f);
            assert_eq!(ev_s, ev_f, "eviction order identical across backends");
            assert_eq!(sharded.len(), flat.len());
            assert_eq!(sharded.id_space(), flat.id_space());
        }
        assert_eq!(
            sharded.stats().evicted,
            flat.stats().evicted,
            "same churn totals"
        );
        assert!(sharded.stats().shards == SHARDS as u64 && flat.stats().shards == 1);
    }

    #[test]
    fn memo_repeats_hit_without_probing_and_never_resurrects_evicted() {
        let mut ft = aging_table(FlowTableKind::default_kind());
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let (f, c) = ft.classify(&t, 64).unwrap();
        let probes_before = ft.stats().probe_steps;
        // Back-to-back packets of the same flow: memo path, no probes.
        assert_eq!(ft.classify(&t, 64), Some((f, c)));
        assert_eq!(ft.classify(&t, 64), Some((f, c)));
        assert_eq!(ft.stats().probe_steps, probes_before);
        assert_eq!(ft.stats().memo_hits, 2);
        assert_eq!(ft.get(&t).unwrap().packets, 3);

        // Evict the flow: its key stays in the slot, so a stale memo must
        // not produce a hit — the tuple is gone until re-learned.
        let mut ev = Vec::new();
        ft.age(1, &mut ev);
        ft.age(1, &mut ev);
        assert_eq!(ev, vec![f]);
        let (f2, _) = ft.classify(&t, 64).unwrap();
        assert_eq!(f2, f, "recycled id");
        assert_eq!(ft.get(&t).unwrap().packets, 1, "fresh counters");

        // A different tuple breaks the memo; the next repeat re-arms it.
        let other = FiveTuple::synthetic(2, Proto::Udp);
        ft.classify(&other, 64).unwrap();
        let memo_before = ft.stats().memo_hits;
        ft.classify(&other, 64).unwrap();
        assert_eq!(ft.stats().memo_hits, memo_before + 1);
    }

    #[test]
    fn probe_lengths_stay_bounded_at_scale() {
        let mut ft = FlowTable::with_kind(FlowTableKind::Sharded);
        for n in 0..100_000u32 {
            ft.install(FiveTuple::synthetic(n, Proto::Udp), ChainId(0));
        }
        let s = ft.stats();
        assert_eq!(s.live, 100_000);
        assert!(
            s.max_probe <= 64,
            "probe length {} exploded at 100k flows",
            s.max_probe
        );
    }
}
