//! Flow table: classifies arriving packets to flows and service chains.
//!
//! The NF manager's RX threads look up each arriving packet here to find
//! which chain (and therefore which first NF) it belongs to — the same role
//! as OpenNetVM's flow table + flow rule installer. Rules are installed at
//! configuration time by the harness (standing in for an SDN controller).

use crate::ids::{ChainId, FlowId};
use crate::packet::FiveTuple;
use crate::pattern::TuplePattern;
use std::collections::BTreeMap;

/// Per-flow record.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// Interned flow id.
    pub flow: FlowId,
    /// Service chain assigned to this flow.
    pub chain: ChainId,
    /// Packets classified for this flow.
    pub packets: u64,
    /// Bytes classified for this flow.
    pub bytes: u64,
}

/// A wildcard rule: pattern → chain at a priority (higher wins).
#[derive(Debug, Clone)]
struct WildcardRule {
    pattern: TuplePattern,
    chain: ChainId,
    priority: i32,
}

/// 5-tuple flow table: exact-match entries backed by prioritized wildcard
/// rules. An exact miss consults the wildcards (highest priority first,
/// then installation order) and, on a hit, caches the decision as a fresh
/// exact entry — the reactive flow-director pattern OpenNetVM inherits
/// from OpenFlow.
#[derive(Debug, Default)]
pub struct FlowTable {
    map: BTreeMap<FiveTuple, FlowEntry>,
    by_id: Vec<FiveTuple>,
    wildcards: Vec<WildcardRule>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a rule mapping `tuple` to `chain`, returning the interned
    /// [`FlowId`]. Reinstalling an existing tuple updates its chain (rule
    /// replacement) and keeps its id and counters.
    pub fn install(&mut self, tuple: FiveTuple, chain: ChainId) -> FlowId {
        if let Some(e) = self.map.get_mut(&tuple) {
            e.chain = chain;
            return e.flow;
        }
        let flow = FlowId(self.by_id.len() as u32);
        self.by_id.push(tuple);
        self.map.insert(
            tuple,
            FlowEntry {
                flow,
                chain,
                packets: 0,
                bytes: 0,
            },
        );
        flow
    }

    /// Install a wildcard rule at `priority` (higher wins on overlap).
    pub fn install_wildcard(&mut self, pattern: TuplePattern, chain: ChainId, priority: i32) {
        self.wildcards.push(WildcardRule {
            pattern,
            chain,
            priority,
        });
        // Highest priority first; stable sort keeps installation order for
        // equal priorities.
        self.wildcards
            .sort_by_key(|r| std::cmp::Reverse(r.priority));
    }

    /// Number of wildcard rules installed.
    pub fn wildcard_count(&self) -> usize {
        self.wildcards.len()
    }

    /// Classify a packet: exact match first; on miss, the wildcard rules.
    /// A wildcard hit installs an exact cache entry so subsequent packets
    /// of the flow take the fast path. Returns `None` for unmatched
    /// traffic (the RX thread drops it).
    pub fn classify(&mut self, tuple: &FiveTuple, bytes: u32) -> Option<(FlowId, ChainId)> {
        if let Some(e) = self.map.get_mut(tuple) {
            e.packets += 1;
            e.bytes += bytes as u64;
            return Some((e.flow, e.chain));
        }
        let chain = self
            .wildcards
            .iter()
            .find(|r| r.pattern.matches(tuple))?
            .chain;
        let flow = self.install(*tuple, chain);
        let e = self.map.get_mut(tuple).expect("just installed");
        e.packets += 1;
        e.bytes += bytes as u64;
        Some((flow, chain))
    }

    /// Look up without mutating counters.
    pub fn get(&self, tuple: &FiveTuple) -> Option<&FlowEntry> {
        self.map.get(tuple)
    }

    /// The tuple for a given flow id.
    pub fn tuple_of(&self, flow: FlowId) -> FiveTuple {
        self.by_id[flow.index()]
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over all entries (deterministic order by flow id).
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> + '_ {
        self.by_id.iter().map(move |t| &self.map[t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Proto;

    #[test]
    fn install_and_classify() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let f = ft.install(t, ChainId(2));
        assert_eq!(ft.classify(&t, 64), Some((f, ChainId(2))));
        assert_eq!(ft.get(&t).unwrap().packets, 1);
        assert_eq!(ft.get(&t).unwrap().bytes, 64);
    }

    #[test]
    fn unknown_tuple_unclassified() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(9, Proto::Tcp);
        assert_eq!(ft.classify(&t, 64), None);
    }

    #[test]
    fn reinstall_keeps_id_and_counters() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let f1 = ft.install(t, ChainId(0));
        ft.classify(&t, 100);
        let f2 = ft.install(t, ChainId(5));
        assert_eq!(f1, f2);
        assert_eq!(ft.get(&t).unwrap().chain, ChainId(5));
        assert_eq!(ft.get(&t).unwrap().packets, 1);
        assert_eq!(ft.len(), 1);
    }

    #[test]
    fn wildcard_miss_then_hit_caches_exact_entry() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0a000000, 8)),
            ChainId(3),
            0,
        );
        let t = FiveTuple::synthetic(1, Proto::Udp); // src in 10/8
        assert_eq!(ft.len(), 0);
        let (flow, chain) = ft.classify(&t, 64).unwrap();
        assert_eq!(chain, ChainId(3));
        assert_eq!(ft.len(), 1, "exact entry cached");
        // second packet takes the exact path, same flow id
        assert_eq!(ft.classify(&t, 64), Some((flow, chain)));
        assert_eq!(ft.get(&t).unwrap().packets, 2);
    }

    #[test]
    fn wildcard_priority_order() {
        use crate::pattern::TuplePattern;
        let mut ft = FlowTable::new();
        ft.install_wildcard(TuplePattern::any(), ChainId(1), 0);
        ft.install_wildcard(TuplePattern::any().proto(Proto::Tcp), ChainId(2), 10);
        let tcp = FiveTuple::synthetic(1, Proto::Tcp);
        let udp = FiveTuple::synthetic(2, Proto::Udp);
        assert_eq!(ft.classify(&tcp, 64).unwrap().1, ChainId(2));
        assert_eq!(ft.classify(&udp, 64).unwrap().1, ChainId(1));
        assert_eq!(ft.wildcard_count(), 2);
    }

    #[test]
    fn unmatched_by_any_rule_is_none() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0b000000, 8)),
            ChainId(0),
            0,
        );
        let t = FiveTuple::synthetic(1, Proto::Udp); // src 10/8, not 11/8
        assert_eq!(ft.classify(&t, 64), None);
    }

    #[test]
    fn flow_ids_sequential_and_reversible() {
        let mut ft = FlowTable::new();
        let a = FiveTuple::synthetic(1, Proto::Udp);
        let b = FiveTuple::synthetic(2, Proto::Udp);
        let fa = ft.install(a, ChainId(0));
        let fb = ft.install(b, ChainId(0));
        assert_eq!(fa, FlowId(0));
        assert_eq!(fb, FlowId(1));
        assert_eq!(ft.tuple_of(fa), a);
        assert_eq!(ft.tuple_of(fb), b);
        assert_eq!(ft.entries().count(), 2);
    }
}
