//! Flow table: classifies arriving packets to flows and service chains.
//!
//! The NF manager's RX threads look up each arriving packet here to find
//! which chain (and therefore which first NF) it belongs to — the same role
//! as OpenNetVM's flow table + flow rule installer. Rules are installed at
//! configuration time by the harness (standing in for an SDN controller).

use crate::ids::{ChainId, FlowId};
use crate::packet::FiveTuple;
use crate::pattern::TuplePattern;

/// Per-flow record.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// Interned flow id.
    pub flow: FlowId,
    /// Service chain assigned to this flow.
    pub chain: ChainId,
    /// Packets classified for this flow.
    pub packets: u64,
    /// Bytes classified for this flow.
    pub bytes: u64,
}

/// A wildcard rule: pattern → chain at a priority (higher wins).
#[derive(Debug, Clone)]
struct WildcardRule {
    pattern: TuplePattern,
    chain: ChainId,
    priority: i32,
}

/// 5-tuple flow table: exact-match entries backed by prioritized wildcard
/// rules. An exact miss consults the wildcards (highest priority first,
/// then installation order) and, on a hit, caches the decision as a fresh
/// exact entry — the reactive flow-director pattern OpenNetVM inherits
/// from OpenFlow.
///
/// The exact-match index is a hand-rolled open-addressing table (a
/// fixed-key multiply hash, linear probing) rather than `std` maps: the
/// lookup runs once per arriving frame, and the hash is seed-free so
/// results stay deterministic. All ordered views go through `by_id`
/// (flow-id order), never the index.
#[derive(Debug, Default)]
pub struct FlowTable {
    /// Entries indexed by flow id.
    entries: Vec<FlowEntry>,
    by_id: Vec<FiveTuple>,
    /// Open-addressing slots: `0` is empty, else `flow_index + 1`.
    /// Always a power of two; grown at 7/8 load.
    index: Vec<u32>,
    wildcards: Vec<WildcardRule>,
}

/// Seed-free multiply-xor hash of a 5-tuple (the ports/proto and the two
/// addresses each get one round). Quality only affects probe length.
#[inline]
fn tuple_hash(t: &FiveTuple) -> u64 {
    const M: u64 = 0x9e37_79b9_7f4a_7c15;
    let a = ((t.src_ip as u64) << 32) | t.dst_ip as u64;
    let b = ((t.src_port as u64) << 24) | ((t.dst_port as u64) << 8) | t.proto as u64;
    let mut h = (a ^ M).wrapping_mul(M);
    h ^= h >> 32;
    h = (h ^ b).wrapping_mul(M);
    h ^ (h >> 29)
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slot in `index` holding `tuple`, or the empty slot where it would
    /// be inserted.
    #[inline]
    fn probe(&self, tuple: &FiveTuple) -> usize {
        debug_assert!(self.index.len().is_power_of_two());
        let mask = self.index.len() - 1;
        let mut i = tuple_hash(tuple) as usize & mask;
        loop {
            match self.index[i] {
                0 => return i,
                f if self.by_id[(f - 1) as usize] == *tuple => return i,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Grow-and-rehash keeping at most 7/8 occupancy (insertion order is
    /// irrelevant for open addressing lookups; rehash iterates `by_id`, so
    /// the layout is a pure function of install order).
    fn maybe_grow(&mut self) {
        if self.index.len() >= 2 * (self.by_id.len() + 1) {
            return;
        }
        let cap = (4 * (self.by_id.len() + 1)).next_power_of_two();
        self.index.clear();
        self.index.resize(cap, 0);
        let mask = cap - 1;
        for (n, t) in self.by_id.iter().enumerate() {
            let mut i = tuple_hash(t) as usize & mask;
            while self.index[i] != 0 {
                i = (i + 1) & mask;
            }
            self.index[i] = n as u32 + 1;
        }
    }

    /// Install a rule mapping `tuple` to `chain`, returning the interned
    /// [`FlowId`]. Reinstalling an existing tuple updates its chain (rule
    /// replacement) and keeps its id and counters.
    pub fn install(&mut self, tuple: FiveTuple, chain: ChainId) -> FlowId {
        if self.index.is_empty() {
            self.maybe_grow();
        }
        let slot = self.probe(&tuple);
        if let Some(f) = self.index[slot].checked_sub(1) {
            self.entries[f as usize].chain = chain;
            return FlowId(f);
        }
        let flow = FlowId(self.by_id.len() as u32);
        self.index[slot] = flow.0 + 1;
        self.by_id.push(tuple);
        self.entries.push(FlowEntry {
            flow,
            chain,
            packets: 0,
            bytes: 0,
        });
        self.maybe_grow();
        flow
    }

    /// Install a wildcard rule at `priority` (higher wins on overlap).
    pub fn install_wildcard(&mut self, pattern: TuplePattern, chain: ChainId, priority: i32) {
        self.wildcards.push(WildcardRule {
            pattern,
            chain,
            priority,
        });
        // Highest priority first; stable sort keeps installation order for
        // equal priorities.
        self.wildcards
            .sort_by_key(|r| std::cmp::Reverse(r.priority));
    }

    /// Number of wildcard rules installed.
    pub fn wildcard_count(&self) -> usize {
        self.wildcards.len()
    }

    /// Classify a packet: exact match first; on miss, the wildcard rules.
    /// A wildcard hit installs an exact cache entry so subsequent packets
    /// of the flow take the fast path. Returns `None` for unmatched
    /// traffic (the RX thread drops it).
    #[inline]
    pub fn classify(&mut self, tuple: &FiveTuple, bytes: u32) -> Option<(FlowId, ChainId)> {
        if !self.index.is_empty() {
            if let Some(f) = self.index[self.probe(tuple)].checked_sub(1) {
                let e = &mut self.entries[f as usize];
                e.packets += 1;
                e.bytes += bytes as u64;
                return Some((e.flow, e.chain));
            }
        }
        let chain = self
            .wildcards
            .iter()
            .find(|r| r.pattern.matches(tuple))?
            .chain;
        let flow = self.install(*tuple, chain);
        let e = &mut self.entries[flow.index()];
        e.packets += 1;
        e.bytes += bytes as u64;
        Some((flow, chain))
    }

    /// Look up without mutating counters.
    #[inline]
    pub fn get(&self, tuple: &FiveTuple) -> Option<&FlowEntry> {
        if self.index.is_empty() {
            return None;
        }
        self.index[self.probe(tuple)]
            .checked_sub(1)
            .map(|f| &self.entries[f as usize])
    }

    /// The tuple for a given flow id.
    pub fn tuple_of(&self, flow: FlowId) -> FiveTuple {
        self.by_id[flow.index()]
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over all entries (deterministic order by flow id).
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> + '_ {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Proto;

    #[test]
    fn install_and_classify() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let f = ft.install(t, ChainId(2));
        assert_eq!(ft.classify(&t, 64), Some((f, ChainId(2))));
        assert_eq!(ft.get(&t).unwrap().packets, 1);
        assert_eq!(ft.get(&t).unwrap().bytes, 64);
    }

    #[test]
    fn unknown_tuple_unclassified() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(9, Proto::Tcp);
        assert_eq!(ft.classify(&t, 64), None);
    }

    #[test]
    fn reinstall_keeps_id_and_counters() {
        let mut ft = FlowTable::new();
        let t = FiveTuple::synthetic(1, Proto::Udp);
        let f1 = ft.install(t, ChainId(0));
        ft.classify(&t, 100);
        let f2 = ft.install(t, ChainId(5));
        assert_eq!(f1, f2);
        assert_eq!(ft.get(&t).unwrap().chain, ChainId(5));
        assert_eq!(ft.get(&t).unwrap().packets, 1);
        assert_eq!(ft.len(), 1);
    }

    #[test]
    fn wildcard_miss_then_hit_caches_exact_entry() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0a000000, 8)),
            ChainId(3),
            0,
        );
        let t = FiveTuple::synthetic(1, Proto::Udp); // src in 10/8
        assert_eq!(ft.len(), 0);
        let (flow, chain) = ft.classify(&t, 64).unwrap();
        assert_eq!(chain, ChainId(3));
        assert_eq!(ft.len(), 1, "exact entry cached");
        // second packet takes the exact path, same flow id
        assert_eq!(ft.classify(&t, 64), Some((flow, chain)));
        assert_eq!(ft.get(&t).unwrap().packets, 2);
    }

    #[test]
    fn wildcard_priority_order() {
        use crate::pattern::TuplePattern;
        let mut ft = FlowTable::new();
        ft.install_wildcard(TuplePattern::any(), ChainId(1), 0);
        ft.install_wildcard(TuplePattern::any().proto(Proto::Tcp), ChainId(2), 10);
        let tcp = FiveTuple::synthetic(1, Proto::Tcp);
        let udp = FiveTuple::synthetic(2, Proto::Udp);
        assert_eq!(ft.classify(&tcp, 64).unwrap().1, ChainId(2));
        assert_eq!(ft.classify(&udp, 64).unwrap().1, ChainId(1));
        assert_eq!(ft.wildcard_count(), 2);
    }

    #[test]
    fn unmatched_by_any_rule_is_none() {
        use crate::pattern::{IpPrefix, TuplePattern};
        let mut ft = FlowTable::new();
        ft.install_wildcard(
            TuplePattern::any().from_src(IpPrefix::new(0x0b000000, 8)),
            ChainId(0),
            0,
        );
        let t = FiveTuple::synthetic(1, Proto::Udp); // src 10/8, not 11/8
        assert_eq!(ft.classify(&t, 64), None);
    }

    #[test]
    fn flow_ids_sequential_and_reversible() {
        let mut ft = FlowTable::new();
        let a = FiveTuple::synthetic(1, Proto::Udp);
        let b = FiveTuple::synthetic(2, Proto::Udp);
        let fa = ft.install(a, ChainId(0));
        let fb = ft.install(b, ChainId(0));
        assert_eq!(fa, FlowId(0));
        assert_eq!(fb, FlowId(1));
        assert_eq!(ft.tuple_of(fa), a);
        assert_eq!(ft.tuple_of(fb), b);
        assert_eq!(ft.entries().count(), 2);
    }
}
