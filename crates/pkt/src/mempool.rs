//! Shared packet memory pool.
//!
//! Models DPDK's `rte_mempool` as used by OpenNetVM: a fixed number of
//! packet-buffer slots shared by the whole platform. Descriptors ([`PktId`])
//! index into the slab; exhaustion means the NIC driver cannot receive
//! (counted as an allocation failure, equivalent to an early NIC drop with
//! zero wasted work).

use crate::ids::PktId;
use crate::packet::Packet;

/// Fixed-capacity slab of packets with a free list.
///
/// Slots hold `Packet` directly (a parallel `live` bitmap catches stale
/// ids and double-frees): the per-packet alloc/free hot path writes the
/// payload exactly once and frees without moving it back out.
#[derive(Debug)]
pub struct Mempool {
    slots: Vec<Packet>,
    live: Vec<bool>,
    free: Vec<PktId>,
    /// Allocation failures observed (pool exhausted).
    pub alloc_failures: u64,
    in_use: usize,
    high_watermark: usize,
}

impl Mempool {
    /// A pool with `capacity` packet slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            slots: vec![Packet::default(); capacity],
            live: vec![false; capacity],
            free: (0..capacity).rev().map(|i| PktId(i as u32)).collect(),
            alloc_failures: 0,
            in_use: 0,
            high_watermark: 0,
        }
    }

    /// Allocate a slot for `pkt`. Returns `None` (and counts a failure) if
    /// the pool is exhausted.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> Option<PktId> {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(!self.live[id.index()]);
                self.slots[id.index()] = pkt;
                self.live[id.index()] = true;
                self.in_use += 1;
                self.high_watermark = self.high_watermark.max(self.in_use);
                Some(id)
            }
            None => {
                self.alloc_failures += 1;
                None
            }
        }
    }

    /// Release a slot. Callers needing the packet's contents must read
    /// them via [`Mempool::get`] *before* freeing — the payload is not
    /// moved out.
    ///
    /// # Panics
    /// Panics on double-free — that is always a simulator bug.
    #[inline]
    pub fn free(&mut self, id: PktId) {
        assert!(
            std::mem::replace(&mut self.live[id.index()], false),
            "double free of packet slot"
        );
        self.free.push(id);
        self.in_use -= 1;
    }

    /// Immutable access to a live packet.
    #[inline]
    pub fn get(&self, id: PktId) -> &Packet {
        assert!(self.live[id.index()], "stale packet id");
        &self.slots[id.index()]
    }

    /// Mutable access to a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PktId) -> &mut Packet {
        assert!(self.live[id.index()], "stale packet id");
        &mut self.slots[id.index()]
    }

    /// Packets currently allocated.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Peak simultaneous occupancy over the run.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChainId, FlowId};
    use nfv_des::SimTime;

    fn pkt() -> Packet {
        Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO)
    }

    #[test]
    fn alloc_free_cycle() {
        let mut p = Mempool::new(2);
        let a = p.alloc(pkt()).unwrap();
        let b = p.alloc(pkt()).unwrap();
        assert_ne!(a, b);
        assert_eq!(p.in_use(), 2);
        assert!(p.alloc(pkt()).is_none());
        assert_eq!(p.alloc_failures, 1);
        p.free(a);
        assert!(p.alloc(pkt()).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = Mempool::new(1);
        let a = p.alloc(pkt()).unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn get_mut_mutates() {
        let mut p = Mempool::new(1);
        let a = p.alloc(pkt()).unwrap();
        p.get_mut(a).hops_done = 3;
        assert_eq!(p.get(a).hops_done, 3);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut p = Mempool::new(4);
        let ids: Vec<_> = (0..3).map(|_| p.alloc(pkt()).unwrap()).collect();
        for id in ids {
            p.free(id);
        }
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.high_watermark(), 3);
        assert_eq!(p.capacity(), 4);
    }
}
