//! # nfv-pkt — packet substrate
//!
//! Models the data-plane machinery OpenNetVM gets from DPDK: a shared
//! packet mempool (descriptors are slab indices, zero-copy between NFs),
//! bounded descriptor rings whose enqueue reports post-enqueue occupancy
//! (the overload signal NFVnice's TX threads consume), an exact-match
//! 5-tuple flow table, and a NIC with a bounded hardware RX queue.
//!
//! Nothing here allocates per packet on the hot path: packets are slots in
//! a pre-sized slab, and rings move `u32` descriptor ids.

#![warn(missing_docs)]

pub mod flowtable;
pub mod ids;
pub mod mempool;
pub mod nic;
pub mod packet;
pub mod pattern;
pub mod ring;

pub use flowtable::{FlowAging, FlowEntry, FlowTable, FlowTableKind, FlowTableStats};
pub use ids::{ChainId, CoreId, FlowId, NfId, PktId};
pub use mempool::Mempool;
pub use nic::{Nic, WireFrame};
pub use packet::{line_rate_pps, Ecn, FiveTuple, Packet, Proto};
pub use pattern::{IpPrefix, TuplePattern};
pub use ring::{Enqueue, Ring};
