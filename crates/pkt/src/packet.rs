//! Packet descriptors and flow keys.
//!
//! As in OpenNetVM, packets live once in a shared memory pool and only
//! fixed-size *descriptors* move between NF queues (zero-copy). The
//! descriptor carries the metadata the scheduling and backpressure planes
//! need: flow, chain, arrival and enqueue timestamps, ECN codepoint and a
//! cost class used by the variable-processing-cost experiments.

use crate::ids::{ChainId, FlowId};
use nfv_des::SimTime;

/// Transport protocol of a flow; determines whether it responds to
/// congestion signals (TCP backs off, UDP does not — §4.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Proto {
    /// Non-responsive datagram traffic.
    Udp,
    /// Responsive traffic with congestion control and optional ECN.
    Tcp,
}

/// ECN codepoint in the IP header (RFC 3168).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ecn {
    /// Not ECN-capable transport.
    #[default]
    NotEct,
    /// ECN-capable, not marked.
    Ect0,
    /// Congestion experienced — set by the NF manager when the EWMA queue
    /// length crosses the marking threshold.
    Ce,
}

/// A classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FiveTuple {
    /// Convenience constructor for synthetic workloads: flow `n`, given
    /// protocol. Distinct `n` yield distinct tuples.
    pub fn synthetic(n: u32, proto: Proto) -> Self {
        FiveTuple {
            src_ip: 0x0a00_0000 | n,
            dst_ip: 0x0a01_0000 | n,
            src_port: 1024 + (n % 60000) as u16,
            dst_port: 9,
            proto,
        }
    }
}

/// Per-packet metadata (the "descriptor" that rides the rings).
#[derive(Debug, Clone)]
pub struct Packet {
    /// The packet's 5-tuple (header fields NFs may read and rewrite).
    pub tuple: FiveTuple,
    /// Owning flow.
    pub flow: FlowId,
    /// Service chain this packet follows.
    pub chain: ChainId,
    /// Wire size in bytes (64 B minimum-size frames in most experiments).
    pub size: u32,
    /// When the packet entered the system (NIC arrival).
    pub arrival: SimTime,
    /// When the packet was enqueued onto its *current* ring — the
    /// backpressure queuing-time threshold compares against this.
    pub enqueued_at: SimTime,
    /// How many NFs in the chain have already processed this packet.
    /// Non-zero at drop time means wasted work.
    pub hops_done: u8,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Sequence number assigned by the traffic source (used by the TCP
    /// model to correlate deliveries/drops).
    pub seq: u64,
    /// Cost class for variable per-packet processing cost experiments
    /// (Fig 10): index into an NF's cost table.
    pub cost_class: u8,
}

impl Default for Packet {
    /// A placeholder packet (flow 0, chain 0, minimum size, time zero) —
    /// used to pre-fill mempool slots.
    fn default() -> Self {
        Packet::new(FlowId(0), ChainId(0), Packet::MIN_SIZE, SimTime::ZERO)
    }
}

impl Packet {
    /// Minimum Ethernet frame size used by the paper's line-rate tests.
    pub const MIN_SIZE: u32 = 64;

    /// A fresh packet arriving at `now` for `flow` on `chain`.
    pub fn new(flow: FlowId, chain: ChainId, size: u32, now: SimTime) -> Self {
        Packet {
            tuple: FiveTuple::synthetic(flow.0, Proto::Udp),
            flow,
            chain,
            size,
            arrival: now,
            enqueued_at: now,
            hops_done: 0,
            ecn: Ecn::NotEct,
            seq: 0,
            cost_class: 0,
        }
    }
}

/// Line-rate packet arithmetic: packets per second achievable for a given
/// frame size on a link of `gbps` gigabits/s, accounting for the 20 B
/// Ethernet preamble + inter-frame gap (how 10 G line rate becomes the
/// familiar 14.88 Mpps at 64 B).
pub fn line_rate_pps(gbps: f64, frame_size: u32) -> f64 {
    let bits_per_frame = (frame_size as f64 + 20.0) * 8.0;
    gbps * 1e9 / bits_per_frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tuples_distinct() {
        let a = FiveTuple::synthetic(1, Proto::Udp);
        let b = FiveTuple::synthetic(2, Proto::Udp);
        let c = FiveTuple::synthetic(1, Proto::Tcp);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, FiveTuple::synthetic(1, Proto::Udp));
    }

    #[test]
    fn line_rate_64b_is_14_88mpps() {
        let pps = line_rate_pps(10.0, 64);
        assert!((pps - 14_880_952.0).abs() < 1000.0, "pps={pps}");
    }

    #[test]
    fn line_rate_decreases_with_frame_size() {
        assert!(line_rate_pps(10.0, 1024) < line_rate_pps(10.0, 64));
    }

    #[test]
    fn new_packet_defaults() {
        let p = Packet::new(FlowId(1), ChainId(2), 64, SimTime::from_micros(5));
        assert_eq!(p.hops_done, 0);
        assert_eq!(p.ecn, Ecn::NotEct);
        assert_eq!(p.arrival, p.enqueued_at);
    }
}
