//! NIC model: bounded hardware RX queue and TX counters.
//!
//! Traffic generators deposit *wire frames* into the RX queue; the NF
//! manager's RX thread polls frames out (DPDK poll-mode-driver style),
//! allocates mempool buffers and classifies them. If the RX queue
//! overflows, frames are lost in hardware — this is an *early* drop that
//! wasted no CPU work, in contrast to drops deep inside a service chain.

use crate::packet::{Ecn, FiveTuple};
use nfv_des::SimTime;

/// A frame on the wire, before it has a mempool buffer.
#[derive(Debug, Clone, Copy)]
pub struct WireFrame {
    /// Flow 5-tuple for classification.
    pub tuple: FiveTuple,
    /// Frame size in bytes.
    pub size: u32,
    /// Source-assigned sequence number (TCP model correlation).
    pub seq: u64,
    /// Cost class for variable-processing-cost workloads.
    pub cost_class: u8,
    /// ECN codepoint set by the sender.
    pub ecn: Ecn,
    /// Time the frame hit the wire.
    pub arrival: SimTime,
}

/// One simulated NIC port.
///
/// The RX queue is a plain `Vec`, not a deque: the manager's RX thread
/// always drains it wholesale ([`Nic::take_rx`] swap), so FIFO pops from
/// the front never happen on the hot path and burst delivery compiles to
/// a memcpy.
#[derive(Debug)]
pub struct Nic {
    rx: Vec<WireFrame>,
    rx_capacity: usize,
    /// Frames lost to RX queue overflow (no work wasted).
    pub rx_overflow_drops: u64,
    /// Frames received into the RX queue.
    pub rx_frames: u64,
    /// Frames transmitted out of the system.
    pub tx_frames: u64,
    /// Bytes transmitted out of the system.
    pub tx_bytes: u64,
}

impl Nic {
    /// Typical hardware RX descriptor ring size.
    pub const DEFAULT_RX_CAPACITY: usize = 4096;

    /// A NIC with the given RX descriptor ring capacity.
    pub fn new(rx_capacity: usize) -> Self {
        assert!(rx_capacity > 0);
        Nic {
            rx: Vec::with_capacity(rx_capacity),
            rx_capacity,
            rx_overflow_drops: 0,
            rx_frames: 0,
            tx_frames: 0,
            tx_bytes: 0,
        }
    }

    /// Deliver a frame from the wire. Returns `false` on overflow drop.
    #[inline]
    pub fn deliver(&mut self, frame: WireFrame) -> bool {
        if self.rx.len() >= self.rx_capacity {
            self.rx_overflow_drops += 1;
            return false;
        }
        self.rx.push(frame);
        self.rx_frames += 1;
        true
    }

    /// Deliver a burst of frames, draining `frames`. Accepts up to the
    /// remaining RX capacity in order and drops the rest (hardware
    /// overflow, same semantics as per-frame [`Nic::deliver`] in a loop —
    /// one capacity check instead of one per frame). Returns the number
    /// dropped.
    #[inline]
    pub fn deliver_burst(&mut self, frames: &mut Vec<WireFrame>) -> usize {
        let space = self.rx_capacity - self.rx.len();
        let take = space.min(frames.len());
        self.rx.extend_from_slice(&frames[..take]);
        self.rx_frames += take as u64;
        let dropped = frames.len() - take;
        self.rx_overflow_drops += dropped as u64;
        frames.clear();
        dropped
    }

    /// Poll up to `burst` frames (PMD receive burst). Front-of-queue
    /// removal shifts the remainder — fine off the hot path; the RX
    /// thread itself uses [`Nic::take_rx`].
    pub fn poll(&mut self, burst: usize, out: &mut Vec<WireFrame>) -> usize {
        let take = burst.min(self.rx.len());
        out.extend(self.rx.drain(..take));
        take
    }

    /// Drain the whole RX queue by swapping it with `out` (which must be
    /// empty): the full-queue poll without copying frames. Both queues'
    /// capacities survive, so a poll loop reusing `out` never reallocates.
    #[inline]
    pub fn take_rx(&mut self, out: &mut Vec<WireFrame>) {
        debug_assert!(out.is_empty());
        std::mem::swap(&mut self.rx, out);
    }

    /// Transmit a frame out of the box.
    #[inline]
    pub fn transmit(&mut self, size: u32) {
        self.tx_frames += 1;
        self.tx_bytes += size as u64;
    }

    /// Frames currently waiting in the RX queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }
}

impl Default for Nic {
    fn default() -> Self {
        Nic::new(Self::DEFAULT_RX_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Proto;

    fn frame(n: u32) -> WireFrame {
        WireFrame {
            tuple: FiveTuple::synthetic(n, Proto::Udp),
            size: 64,
            seq: n as u64,
            cost_class: 0,
            ecn: Ecn::NotEct,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn deliver_then_poll_in_order() {
        let mut nic = Nic::new(8);
        for i in 0..5 {
            assert!(nic.deliver(frame(i)));
        }
        let mut out = Vec::new();
        assert_eq!(nic.poll(3, &mut out), 3);
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[2].seq, 2);
        assert_eq!(nic.rx_pending(), 2);
    }

    #[test]
    fn overflow_drops_counted() {
        let mut nic = Nic::new(2);
        assert!(nic.deliver(frame(0)));
        assert!(nic.deliver(frame(1)));
        assert!(!nic.deliver(frame(2)));
        assert_eq!(nic.rx_overflow_drops, 1);
        assert_eq!(nic.rx_frames, 2);
    }

    #[test]
    fn transmit_counters() {
        let mut nic = Nic::default();
        nic.transmit(64);
        nic.transmit(1500);
        assert_eq!(nic.tx_frames, 2);
        assert_eq!(nic.tx_bytes, 1564);
    }

    #[test]
    fn poll_empty_returns_zero() {
        let mut nic = Nic::new(4);
        let mut out = Vec::new();
        assert_eq!(nic.poll(32, &mut out), 0);
        assert!(out.is_empty());
    }
}
