//! Wildcard tuple patterns for the flow director.
//!
//! OpenNetVM installs flow rules from a controller; exact 5-tuple rules
//! cover known flows, while *wildcard* rules ("anything from 10.0.0.0/8 to
//! port 443 → chain 2") classify the first packet of unknown flows. The
//! flow table consults wildcards on an exact-match miss and caches the
//! decision as a new exact rule — the classic OpenFlow reactive pattern.

use crate::packet::{FiveTuple, Proto};

/// An IPv4 prefix (`addr/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpPrefix {
    /// Network address (host bits zeroed).
    pub addr: u32,
    /// Prefix length, 0..=32 (0 matches everything).
    pub len: u8,
}

impl IpPrefix {
    /// Match-all prefix.
    pub const ANY: IpPrefix = IpPrefix { addr: 0, len: 0 };

    /// Construct, normalizing host bits away.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        IpPrefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Does `ip` fall inside this prefix?
    pub fn contains(self, ip: u32) -> bool {
        ip & Self::mask(self.len) == self.addr
    }
}

/// A wildcard-capable 5-tuple pattern. `None` fields match anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuplePattern {
    /// Source prefix.
    pub src: IpPrefix,
    /// Destination prefix.
    pub dst: IpPrefix,
    /// Exact source port, or any.
    pub src_port: Option<u16>,
    /// Exact destination port, or any.
    pub dst_port: Option<u16>,
    /// Protocol, or any.
    pub proto: Option<Proto>,
}

impl TuplePattern {
    /// A pattern matching every packet.
    pub fn any() -> Self {
        TuplePattern {
            src: IpPrefix::ANY,
            dst: IpPrefix::ANY,
            src_port: None,
            dst_port: None,
            proto: None,
        }
    }

    /// Restrict the source prefix.
    pub fn from_src(mut self, prefix: IpPrefix) -> Self {
        self.src = prefix;
        self
    }

    /// Restrict the destination prefix.
    pub fn to_dst(mut self, prefix: IpPrefix) -> Self {
        self.dst = prefix;
        self
    }

    /// Restrict the destination port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = Some(port);
        self
    }

    /// Restrict the protocol.
    pub fn proto(mut self, proto: Proto) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Does a concrete tuple match?
    pub fn matches(&self, t: &FiveTuple) -> bool {
        self.src.contains(t.src_ip)
            && self.dst.contains(t.dst_ip)
            && self.src_port.is_none_or(|p| p == t.src_port)
            && self.dst_port.is_none_or(|p| p == t.dst_port)
            && self.proto.is_none_or(|p| p == t.proto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_basics() {
        let p = IpPrefix::new(0x0a000000, 8);
        assert!(p.contains(0x0affffff));
        assert!(!p.contains(0x0b000000));
        assert!(IpPrefix::ANY.contains(0));
        assert_eq!(IpPrefix::new(0x0a0b0c0d, 16).addr, 0x0a0b0000);
    }

    #[test]
    fn pattern_any_matches_everything() {
        let t = FiveTuple::synthetic(7, Proto::Tcp);
        assert!(TuplePattern::any().matches(&t));
    }

    #[test]
    fn pattern_fields_combine() {
        let t = FiveTuple::synthetic(7, Proto::Tcp); // src 10.0.0.7, dst_port 9
        let hit = TuplePattern::any()
            .from_src(IpPrefix::new(0x0a000000, 8))
            .dst_port(9)
            .proto(Proto::Tcp);
        assert!(hit.matches(&t));
        let miss_port = TuplePattern::any().dst_port(80);
        assert!(!miss_port.matches(&t));
        let miss_proto = TuplePattern::any().proto(Proto::Udp);
        assert!(!miss_proto.matches(&t));
        let miss_prefix = TuplePattern::any().from_src(IpPrefix::new(0x0b000000, 8));
        assert!(!miss_prefix.matches(&t));
    }
}
