//! Shared identifier vocabulary.
//!
//! Small copyable newtypes used across the whole stack. Keeping them here
//! (the lowest packet-layer crate) lets the scheduler, platform and NFVnice
//! layers talk about the same entities without depending on each other.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A network function instance (one process/container in the paper).
    NfId,
    "nf"
);
id_type!(
    /// A service chain: an ordered path of NFs a class of traffic follows.
    /// Chains can be defined per-flow ("fine granularity" in §3.3).
    ChainId,
    "chain"
);
id_type!(
    /// A transport-level flow (5-tuple).
    FlowId,
    "flow"
);
id_type!(
    /// A CPU core of the simulated machine.
    CoreId,
    "core"
);
id_type!(
    /// A packet descriptor slot in the shared mempool.
    PktId,
    "pkt"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NfId(1) < NfId(2));
        assert_eq!(format!("{}", ChainId(3)), "chain3");
        assert_eq!(FlowId(7).index(), 7);
        assert_eq!(format!("{}", CoreId(0)), "core0");
        assert_eq!(format!("{}", PktId(9)), "pkt9");
    }
}
