//! A Reno-style TCP source model with ECN response (the iperf3 stand-in).
//!
//! The Fig 13 experiment needs exactly one property of TCP: *responsive*
//! flows back off when the chain drops or ECN-marks their packets, while
//! UDP does not. The model is a window-based AIMD state machine:
//!
//! * slow start below `ssthresh` (cwnd += 1 per ACK), congestion avoidance
//!   above (cwnd += 1/cwnd per ACK);
//! * a drop or an ECN congestion-experienced echo halves the window, at
//!   most once per round trip (per RFC 5681 / RFC 3168 semantics);
//! * dropped segments are retransmitted ahead of new data.
//!
//! Simplifications (documented per DESIGN.md): per-packet ACKs with a fixed
//! round-trip time, loss detected immediately (ideal fast retransmit, no
//! RTO), no receiver window. These only make the baseline *more* favorable
//! — TCP recovers as fast as possible — yet the paper's collapse without
//! NFVnice still reproduces.

use nfv_des::{Duration, SimTime};
use nfv_pkt::{Ecn, FiveTuple, WireFrame};
use std::collections::VecDeque;

/// Window-based TCP sender.
#[derive(Debug)]
pub struct TcpSource {
    /// Flow identity.
    pub tuple: FiveTuple,
    /// Segment size on the wire (bytes).
    pub frame_size: u32,
    /// Fixed round-trip time (data out + ACK back).
    pub rtt: Duration,
    /// Whether the sender negotiates ECN (ECT(0) on data packets).
    pub ecn_capable: bool,
    /// Upper bound on the window (receiver window / socket buffer stand-in;
    /// caps the flow's rate at `max_cwnd · frame_size · 8 / rtt` bits/s).
    pub max_cwnd: f64,
    cwnd: f64,
    ssthresh: f64,
    in_flight: u32,
    next_seq: u64,
    /// Highest sequence outstanding when the window was last cut; further
    /// congestion signals for older packets are ignored (once per RTT).
    recover_seq: u64,
    retransmit: VecDeque<u64>,
    /// Segments acknowledged (goodput numerator).
    pub acked: u64,
    /// Segments detected lost.
    pub losses: u64,
    /// ECN CE echoes honored.
    pub ecn_cuts: u64,
}

/// Feedback the platform reports to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// Segment left the chain and reached the receiver; `ce` is true if it
    /// carried an ECN congestion-experienced mark.
    Delivered {
        /// Sequence number.
        seq: u64,
        /// ECN CE observed at the receiver (echoed to the sender).
        ce: bool,
    },
    /// Segment was dropped inside the NFV box.
    Dropped {
        /// Sequence number.
        seq: u64,
    },
}

impl TcpSource {
    /// Initial congestion window (RFC 6928).
    pub const INIT_CWND: f64 = 10.0;

    /// A source with the given identity, segment size and RTT.
    pub fn new(tuple: FiveTuple, frame_size: u32, rtt: Duration) -> Self {
        TcpSource {
            tuple,
            frame_size,
            rtt,
            ecn_capable: false,
            max_cwnd: f64::INFINITY,
            cwnd: Self::INIT_CWND,
            ssthresh: f64::INFINITY,
            in_flight: 0,
            next_seq: 0,
            recover_seq: 0,
            retransmit: VecDeque::new(),
            acked: 0,
            losses: 0,
            ecn_cuts: 0,
        }
    }

    /// Enable ECN on this source.
    pub fn with_ecn(mut self) -> Self {
        self.ecn_capable = true;
        self
    }

    /// Cap the congestion window (receiver-window model).
    pub fn with_max_cwnd(mut self, w: f64) -> Self {
        self.max_cwnd = w.max(1.0);
        self
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Segments currently unacknowledged.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Emit as many segments as the window allows, retransmissions first.
    pub fn pump(&mut self, now: SimTime, out: &mut Vec<WireFrame>) {
        while (self.in_flight as f64) < self.cwnd.floor() {
            let seq = match self.retransmit.pop_front() {
                Some(s) => s,
                None => {
                    let s = self.next_seq;
                    self.next_seq += 1;
                    s
                }
            };
            out.push(WireFrame {
                tuple: self.tuple,
                size: self.frame_size,
                seq,
                cost_class: 0,
                ecn: if self.ecn_capable {
                    Ecn::Ect0
                } else {
                    Ecn::NotEct
                },
                arrival: now,
            });
            self.in_flight += 1;
        }
    }

    /// Apply delivery/drop feedback. Returns the time at which the
    /// (implicit) ACK clock lets the window move again — callers schedule a
    /// pump at that time (delivery feedback arrives when the packet exits
    /// the chain; the ACK takes a further `rtt/2`... the model folds the
    /// whole RTT into this delay).
    pub fn on_feedback(&mut self, fb: Feedback, now: SimTime) -> SimTime {
        match fb {
            Feedback::Delivered { seq, ce } => {
                self.in_flight = self.in_flight.saturating_sub(1);
                self.acked += 1;
                if ce && self.ecn_capable {
                    if self.cut_window(seq) {
                        self.ecn_cuts += 1;
                    }
                } else if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
                self.cwnd = self.cwnd.min(self.max_cwnd);
            }
            Feedback::Dropped { seq } => {
                self.in_flight = self.in_flight.saturating_sub(1);
                if self.cut_window(seq) {
                    self.losses += 1;
                }
                self.retransmit.push_back(seq);
            }
        }
        now + self.rtt
    }

    /// Multiplicative decrease, at most once per window of data.
    /// Returns whether a cut actually happened.
    fn cut_window(&mut self, seq: u64) -> bool {
        if seq < self.recover_seq {
            return false; // already reacted to this window
        }
        self.recover_seq = self.next_seq;
        self.cwnd = (self.cwnd / 2.0).max(1.0);
        self.ssthresh = self.cwnd;
        true
    }

    /// Goodput in bits/s given segments acked over `elapsed`.
    pub fn goodput_bps(&self, elapsed: Duration) -> f64 {
        if elapsed == Duration::ZERO {
            return 0.0;
        }
        self.acked as f64 * self.frame_size as f64 * 8.0 / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::Proto;

    fn src() -> TcpSource {
        TcpSource::new(
            FiveTuple::synthetic(0, Proto::Tcp),
            1500,
            Duration::from_millis(1),
        )
    }

    #[test]
    fn initial_pump_sends_init_cwnd() {
        let mut s = src();
        let mut out = Vec::new();
        s.pump(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(s.in_flight(), 10);
        // window exhausted: further pumps send nothing
        s.pump(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = src();
        let mut out = Vec::new();
        s.pump(SimTime::ZERO, &mut out);
        let now = SimTime::from_millis(1);
        for w in out.drain(..) {
            s.on_feedback(
                Feedback::Delivered {
                    seq: w.seq,
                    ce: false,
                },
                now,
            );
        }
        assert_eq!(s.cwnd() as u64, 20); // 10 acks, +1 each
    }

    #[test]
    fn drop_halves_window_once_per_rtt() {
        let mut s = src();
        let mut out = Vec::new();
        s.pump(SimTime::ZERO, &mut out);
        let now = SimTime::from_millis(1);
        // Two drops in the same flight: only one multiplicative decrease.
        s.on_feedback(Feedback::Dropped { seq: out[0].seq }, now);
        s.on_feedback(Feedback::Dropped { seq: out[1].seq }, now);
        assert_eq!(s.cwnd(), 5.0);
        assert_eq!(s.losses, 1);
        assert_eq!(s.retransmit.len(), 2);
    }

    #[test]
    fn retransmits_go_first() {
        let mut s = src();
        let mut out = Vec::new();
        s.pump(SimTime::ZERO, &mut out);
        let now = SimTime::from_millis(1);
        // Deliver most of the flight so the halved window still has room,
        // then lose the last segment.
        for seq in 0..9 {
            s.on_feedback(Feedback::Delivered { seq, ce: false }, now);
        }
        s.on_feedback(Feedback::Dropped { seq: 9 }, now);
        out.clear();
        s.pump(now, &mut out);
        assert!(!out.is_empty());
        assert_eq!(out[0].seq, 9);
    }

    #[test]
    fn ecn_cut_only_when_capable() {
        let mut plain = src();
        let mut out = Vec::new();
        plain.pump(SimTime::ZERO, &mut out);
        plain.on_feedback(Feedback::Delivered { seq: 0, ce: true }, SimTime::ZERO);
        assert!(plain.cwnd() > 10.0, "non-ECN source ignores CE");

        let mut ecn = src().with_ecn();
        out.clear();
        ecn.pump(SimTime::ZERO, &mut out);
        assert_eq!(out[0].ecn, Ecn::Ect0);
        ecn.on_feedback(Feedback::Delivered { seq: 0, ce: true }, SimTime::ZERO);
        assert_eq!(ecn.cwnd(), 5.0);
        assert_eq!(ecn.ecn_cuts, 1);
    }

    #[test]
    fn congestion_avoidance_linear_growth() {
        let mut s = src();
        let mut out = Vec::new();
        s.pump(SimTime::ZERO, &mut out);
        s.on_feedback(Feedback::Dropped { seq: 0 }, SimTime::ZERO); // ssthresh=5
                                                                    // Deliver the rest of the flight plus retransmit: cwnd ≥ ssthresh ⇒ CA.
        let before = s.cwnd();
        for seq in 1..10 {
            s.on_feedback(Feedback::Delivered { seq, ce: false }, SimTime::ZERO);
        }
        let after = s.cwnd();
        // 9 CA acks add roughly 9/cwnd ≈ 1.6, not 9.
        assert!(after - before < 3.0, "before={before} after={after}");
        assert!(after > before);
    }

    #[test]
    fn window_never_below_one() {
        let mut s = src();
        let mut out = Vec::new();
        s.pump(SimTime::ZERO, &mut out);
        for flight in 0..20u64 {
            let seq = s.next_seq; // force new recovery window each round
            s.on_feedback(Feedback::Dropped { seq: seq + flight }, SimTime::ZERO);
            s.recover_seq = 0; // simulate new windows
        }
        assert!(s.cwnd() >= 1.0);
    }

    #[test]
    fn max_cwnd_caps_growth() {
        let mut s = src().with_max_cwnd(12.0);
        let mut out = Vec::new();
        for _ in 0..5 {
            out.clear();
            s.pump(SimTime::ZERO, &mut out);
            let flight: Vec<u64> = out.iter().map(|w| w.seq).collect();
            for seq in flight {
                s.on_feedback(Feedback::Delivered { seq, ce: false }, SimTime::ZERO);
            }
        }
        assert!(s.cwnd() <= 12.0);
    }

    #[test]
    fn goodput_computation() {
        let mut s = src();
        s.acked = 1000;
        let bps = s.goodput_bps(Duration::from_secs(1));
        assert_eq!(bps, 1000.0 * 1500.0 * 8.0);
        assert_eq!(s.goodput_bps(Duration::ZERO), 0.0);
    }
}
