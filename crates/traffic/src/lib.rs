//! # nfv-traffic — workload generators
//!
//! Stand-ins for the paper's traffic tools: [`CbrFlow`] models MoonGen /
//! Pktgen-DPDK constant-rate (or Poisson) UDP flows with on/off windows and
//! per-packet cost classes; [`TcpSource`] models an iperf3-style responsive
//! flow with Reno AIMD dynamics and ECN response. Both are pure state
//! machines polled/fed by the platform's event loop, keeping the crate free
//! of any simulation-scheduling concerns.

#![warn(missing_docs)]

pub mod cbr;
pub mod scenarios;
pub mod tcp;

pub use cbr::{ArrivalProcess, CbrFlow, CostClassGen};
pub use scenarios::{
    diurnal_windows, heavy_tail_flows, heavy_tail_rates, sweep_index, tenant, ParetoShape,
    SweepSource, TenantSet, TenantSpec, TENANT_SPAN,
};
pub use tcp::{Feedback, TcpSource};
