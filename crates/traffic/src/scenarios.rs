//! Internet-scale traffic scenarios: heavy-tailed mixes, tuple sweeps,
//! diurnal ramps, flash crowds and multi-tenant chain sets.
//!
//! "Benchmarking NFV Software Dataplanes" argues paper-scale CBR traffic
//! says little about a dataplane under internet-like load; this module
//! generates that load while staying on the existing [`CbrFlow`] /
//! `WireFrame` emission path so every scenario remains deterministic and
//! byte-replayable:
//!
//! - [`SweepSource`] turns one pacer flow into millions of distinct
//!   5-tuples by rewriting each emitted frame's tuple along a coprime
//!   stride over a flow space — the load that fills the flow table.
//! - [`ParetoShape`] + [`heavy_tail_flows`] draw per-flow rates from a
//!   bounded Pareto (`SimRng::bounded_pareto`): many mice, few elephants.
//! - [`diurnal_windows`] splits a run into piecewise-constant rate steps
//!   following a raised-cosine day curve; pair each window with a source.
//! - [`SweepSource::flash`] models a flash crowd: a burst of brand-new
//!   flows arriving in a short window.
//! - [`TenantSpec`] / [`TenantSet`] carve the synthetic tuple space into
//!   per-tenant prefixes with a matching wildcard pattern per tenant, so
//!   multi-tenant chain sets share cores while the flow table learns each
//!   tenant's flows reactively.

use crate::cbr::CbrFlow;
use nfv_des::{Duration, SimRng, SimTime};
use nfv_pkt::{FiveTuple, IpPrefix, Proto, TuplePattern, WireFrame};

/// Knuth's multiplicative constant; prime, so it is coprime to every
/// flow-space size below it and the sweep visits each tuple exactly once
/// per `space` emitted frames.
const SWEEP_STRIDE: u64 = 2_654_435_761;

/// Map an emission sequence number onto a flow index in `[0, space)`.
/// Full-period: consecutive frames scatter across the space, and every
/// index is visited once per `space` frames.
#[inline]
pub fn sweep_index(seq: u64, space: u32) -> u32 {
    debug_assert!(space > 0 && (space as u64) < SWEEP_STRIDE);
    (seq.wrapping_mul(SWEEP_STRIDE) % space as u64) as u32
}

/// A traffic source sweeping a whole flow space: one [`CbrFlow`] pacer
/// provides the arrival process (constant or Poisson, windowed or not)
/// and each emitted frame is rewritten to the synthetic tuple
/// `base + sweep_index(seq, space)`. With `space` in the millions this is
/// the generator that pushes the flow table to production scale.
#[derive(Debug)]
pub struct SweepSource {
    /// Arrival-process pacer; its own tuple is never emitted.
    pub pacer: CbrFlow,
    /// Number of distinct flows in the sweep.
    pub space: u32,
    /// First synthetic tuple index (tenant offset).
    pub base: u32,
    /// Protocol of the emitted tuples.
    pub proto: Proto,
}

impl SweepSource {
    /// A sweep of `space` UDP flows starting at tuple index `base`.
    pub fn new(base: u32, space: u32, frame_size: u32, rate_pps: f64) -> Self {
        assert!(space > 0 && (space as u64) < SWEEP_STRIDE);
        SweepSource {
            pacer: CbrFlow::new(FiveTuple::synthetic(base, Proto::Udp), frame_size, rate_pps),
            space,
            base,
            proto: Proto::Udp,
        }
    }

    /// Restrict the sweep to the window `[start, stop)`.
    pub fn window(mut self, start: SimTime, stop: SimTime) -> Self {
        self.pacer = self.pacer.window(start, stop);
        self
    }

    /// Use Poisson arrivals for the pacer.
    pub fn poisson(mut self) -> Self {
        self.pacer = self.pacer.poisson();
        self
    }

    /// A flash crowd: `space` brand-new flows arriving at `rate_pps`
    /// inside `[at, at + dur)` and never seen again.
    pub fn flash(
        base: u32,
        space: u32,
        frame_size: u32,
        rate_pps: f64,
        at: SimTime,
        dur: Duration,
    ) -> Self {
        Self::new(base, space, frame_size, rate_pps).window(at, at + dur)
    }

    /// Frames emitted over the run so far.
    pub fn emitted(&self) -> u64 {
        self.pacer.emitted
    }

    /// Emit the frames due in the poll window ending at `now` of width
    /// `dt`, appending to `out` with swept tuples.
    pub fn emit(&mut self, now: SimTime, dt: Duration, rng: &mut SimRng, out: &mut Vec<WireFrame>) {
        let start = out.len();
        self.pacer.emit(now, dt, rng, out);
        for w in &mut out[start..] {
            let idx = sweep_index(w.seq, self.space);
            w.tuple = FiveTuple::synthetic(self.base + idx, self.proto);
        }
    }
}

/// Shape of a bounded-Pareto flow-rate distribution.
#[derive(Debug, Clone, Copy)]
pub struct ParetoShape {
    /// Tail exponent (smaller = heavier tail).
    pub alpha: f64,
    /// Minimum draw (mouse size).
    pub lo: f64,
    /// Maximum draw (largest elephant).
    pub hi: f64,
}

impl ParetoShape {
    /// The classic elephants-and-mice mix: α = 1.2 over three decades,
    /// so a few percent of flows carry most of the bytes.
    pub fn elephants_mice() -> Self {
        ParetoShape {
            alpha: 1.2,
            lo: 1.0,
            hi: 1000.0,
        }
    }
}

/// Draw `n` relative flow weights from the bounded Pareto and scale them
/// so they sum to `total_pps`. Deterministic given the rng state.
pub fn heavy_tail_rates(
    rng: &mut SimRng,
    n: usize,
    total_pps: f64,
    shape: ParetoShape,
) -> Vec<f64> {
    assert!(n > 0, "need at least one flow");
    let mut rates: Vec<f64> = (0..n)
        .map(|_| rng.bounded_pareto(shape.alpha, shape.lo, shape.hi))
        .collect();
    let sum: f64 = rates.iter().sum();
    let scale = total_pps / sum;
    for r in &mut rates {
        *r *= scale;
    }
    rates
}

/// Build `n` constant-rate UDP flows on consecutive synthetic tuples
/// starting at `base`, with heavy-tailed per-flow rates summing to
/// `total_pps`. Flow `i`'s rate is the `i`-th Pareto draw, so elephants
/// and mice are interleaved across the tuple space.
pub fn heavy_tail_flows(
    rng: &mut SimRng,
    base: u32,
    n: usize,
    total_pps: f64,
    frame_size: u32,
    shape: ParetoShape,
) -> Vec<CbrFlow> {
    heavy_tail_rates(rng, n, total_pps, shape)
        .into_iter()
        .enumerate()
        .map(|(i, rate)| {
            CbrFlow::new(
                FiveTuple::synthetic(base + i as u32, Proto::Udp),
                frame_size,
                rate,
            )
        })
        .collect()
}

/// Piecewise-constant diurnal rate profile: split `total` into `steps`
/// equal windows whose rates follow one raised-cosine period from `lo_pps`
/// (midnight) up to `hi_pps` (midday) and back. Returns
/// `(start, stop, rate_pps)` per window; pair each with a windowed source.
pub fn diurnal_windows(
    total: Duration,
    steps: usize,
    lo_pps: f64,
    hi_pps: f64,
) -> Vec<(SimTime, SimTime, f64)> {
    assert!(steps > 0, "need at least one step");
    let step_ns = total.as_nanos() / steps as u64;
    (0..steps)
        .map(|i| {
            let start = SimTime::from_nanos(i as u64 * step_ns);
            let stop = SimTime::from_nanos((i as u64 + 1) * step_ns);
            // Raised cosine over the window midpoints: 0 → lo, mid → hi.
            let phase = (i as f64 + 0.5) / steps as f64;
            let level = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
            (start, stop, lo_pps + (hi_pps - lo_pps) * level)
        })
        .collect()
}

/// One tenant of a multi-tenant chain set: a private slice of the
/// synthetic tuple space plus an offered load.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Tenant index (selects the tuple-space slice).
    pub index: u32,
    /// Concurrent flows the tenant's sweep covers.
    pub flows: u32,
    /// Offered rate in packets per second.
    pub rate_pps: f64,
    /// Frame size in bytes.
    pub frame_size: u32,
}

/// A tenant's generator plus the wildcard pattern that classifies its
/// slice of the tuple space (install it with the tenant's chain).
#[derive(Debug)]
pub struct TenantSet {
    /// Wildcard pattern matching exactly this tenant's source prefix.
    pub pattern: TuplePattern,
    /// The tenant's sweep generator.
    pub sweep: SweepSource,
}

/// Width of one tenant's tuple-space slice (2^20 = up to ~1M flows per
/// tenant; 16 tenants fit below the synthetic address bits).
pub const TENANT_SPAN: u32 = 1 << 20;

/// Build a tenant's sweep and its classifying wildcard pattern. Tenant
/// `index` owns synthetic tuple indices `[index * TENANT_SPAN, (index+1) *
/// TENANT_SPAN)`; its source prefix is exactly that block, so a per-tenant
/// wildcard rule steers the whole slice to the tenant's chain.
pub fn tenant(spec: TenantSpec) -> TenantSet {
    assert!(spec.index < 16, "tenant index must stay below 16");
    assert!(
        spec.flows <= TENANT_SPAN,
        "tenant flow space exceeds its slice"
    );
    let base = spec.index * TENANT_SPAN;
    // Synthetic src addresses are `0x0a00_0000 | n`; a block of TENANT_SPAN
    // aligned indices shares the top 12 bits.
    let prefix_len = 32 - TENANT_SPAN.trailing_zeros() as u8;
    TenantSet {
        pattern: TuplePattern::any().from_src(IpPrefix::new(0x0a00_0000 | base, prefix_len)),
        sweep: SweepSource::new(base, spec.flows.max(1), spec.frame_size, spec.rate_pps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_whole_space_exactly_once_per_period() {
        let space = 4096u32;
        let mut seen = vec![false; space as usize];
        for seq in 0..space as u64 {
            let idx = sweep_index(seq, space);
            assert!(!seen[idx as usize], "index {idx} visited twice");
            seen[idx as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sweep_source_emits_distinct_tuples_at_rate() {
        let mut s = SweepSource::new(0, 1000, 64, 1_000_000.0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            now += Duration::from_micros(20);
            s.emit(now, Duration::from_micros(20), &mut rng, &mut out);
        }
        // 1 Mpps for 1 ms = ~1000 frames covering the whole 1000-flow space.
        assert!((out.len() as i64 - 1000).abs() <= 1, "len={}", out.len());
        let mut tuples: Vec<u32> = out.iter().map(|w| w.tuple.src_ip).collect();
        tuples.sort_unstable();
        tuples.dedup();
        assert!(tuples.len() >= 999, "distinct tuples: {}", tuples.len());
    }

    #[test]
    fn heavy_tail_rates_sum_and_skew() {
        let mut rng = SimRng::seed_from_u64(42);
        let rates = heavy_tail_rates(&mut rng, 500, 1_000_000.0, ParetoShape::elephants_mice());
        let sum: f64 = rates.iter().sum();
        assert!((sum - 1_000_000.0).abs() < 1.0, "sum={sum}");
        let mut sorted = rates.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10: f64 = sorted.iter().take(50).sum();
        assert!(
            top10 / sum > 0.25,
            "top 10% of flows carry {:.1}% — not heavy-tailed",
            100.0 * top10 / sum
        );
    }

    #[test]
    fn diurnal_profile_ramps_up_and_back() {
        let w = diurnal_windows(Duration::from_millis(100), 10, 10_000.0, 90_000.0);
        assert_eq!(w.len(), 10);
        assert_eq!(w[0].0, SimTime::ZERO);
        assert_eq!(w[9].1, SimTime::from_millis(100));
        let rates: Vec<f64> = w.iter().map(|&(_, _, r)| r).collect();
        let peak = rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            rates[0] < rates[4] && rates[9] < rates[5],
            "not a ramp: {rates:?}"
        );
        assert!(peak <= 90_000.0 + 1e-6 && rates[0] >= 10_000.0 - 1e-6);
    }

    #[test]
    fn tenants_get_disjoint_patterns() {
        let a = tenant(TenantSpec {
            index: 0,
            flows: 1000,
            rate_pps: 1.0,
            frame_size: 64,
        });
        let b = tenant(TenantSpec {
            index: 1,
            flows: 1000,
            rate_pps: 1.0,
            frame_size: 64,
        });
        let ta = FiveTuple::synthetic(5, Proto::Udp);
        let tb = FiveTuple::synthetic(TENANT_SPAN + 5, Proto::Udp);
        assert!(a.pattern.matches(&ta) && !a.pattern.matches(&tb));
        assert!(b.pattern.matches(&tb) && !b.pattern.matches(&ta));
    }

    #[test]
    fn flash_crowd_confined_to_window() {
        let mut s = SweepSource::flash(
            0,
            10_000,
            64,
            2_000_000.0,
            SimTime::from_millis(5),
            Duration::from_millis(2),
        );
        let mut rng = SimRng::seed_from_u64(3);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while now < SimTime::from_millis(10) {
            now += Duration::from_micros(20);
            s.emit(now, Duration::from_micros(20), &mut rng, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|w| {
            w.arrival >= SimTime::from_millis(5) && w.arrival < SimTime::from_millis(7)
        }));
    }
}
