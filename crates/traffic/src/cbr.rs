//! Constant-rate and Poisson UDP sources (MoonGen / Pktgen-DPDK stand-ins).
//!
//! Sources are polled by the platform's traffic driver on a fixed period
//! (default 20 µs) and emit the frames due in that window. A fractional
//! accumulator keeps long-run rates exact even when the per-poll packet
//! count is not integral; Poisson mode draws per-poll counts from the
//! exponential arrival process instead.

use nfv_des::{Duration, SimRng, SimTime};
use nfv_pkt::{Ecn, FiveTuple, WireFrame};

/// How a source assigns per-packet cost classes (Fig 10's variable
/// per-packet processing cost needs random classes; everything else uses a
/// fixed class 0).
#[derive(Debug, Clone, Copy)]
pub enum CostClassGen {
    /// All packets share one class.
    Fixed(u8),
    /// Uniformly random class in `[0, n)` per packet.
    Uniform(u8),
}

impl CostClassGen {
    fn draw(self, rng: &mut SimRng) -> u8 {
        match self {
            CostClassGen::Fixed(c) => c,
            CostClassGen::Uniform(n) => rng.below(n as u64) as u8,
        }
    }
}

/// Arrival process of a [`CbrFlow`].
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Deterministic constant rate.
    Constant,
    /// Poisson arrivals at the same mean rate.
    Poisson,
}

/// A unidirectional UDP flow with a fixed mean rate and an on/off window.
#[derive(Debug)]
pub struct CbrFlow {
    /// Flow identity on the wire.
    pub tuple: FiveTuple,
    /// Frame size in bytes.
    pub frame_size: u32,
    /// Mean offered rate in packets per second.
    pub rate_pps: f64,
    /// First instant the source is active.
    pub start: SimTime,
    /// Instant the source switches off (exclusive). `SimTime::MAX` = never.
    pub stop: SimTime,
    /// Cost-class assignment for emitted packets.
    pub cost_class: CostClassGen,
    /// Arrival process.
    pub process: ArrivalProcess,
    acc: f64,
    seq: u64,
    /// Frames emitted over the run.
    pub emitted: u64,
}

impl CbrFlow {
    /// An always-on constant-rate flow.
    pub fn new(tuple: FiveTuple, frame_size: u32, rate_pps: f64) -> Self {
        CbrFlow {
            tuple,
            frame_size,
            rate_pps,
            start: SimTime::ZERO,
            stop: SimTime::MAX,
            cost_class: CostClassGen::Fixed(0),
            process: ArrivalProcess::Constant,
            acc: 0.0,
            seq: 0,
            emitted: 0,
        }
    }

    /// Restrict the source to the window `[start, stop)`.
    pub fn window(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }

    /// Use the given cost-class generator.
    pub fn with_cost_class(mut self, g: CostClassGen) -> Self {
        self.cost_class = g;
        self
    }

    /// Use Poisson arrivals.
    pub fn poisson(mut self) -> Self {
        self.process = ArrivalProcess::Poisson;
        self
    }

    /// Emit the frames due in the poll window ending at `now` of width
    /// `dt`, appending to `out`.
    pub fn emit(&mut self, now: SimTime, dt: Duration, rng: &mut SimRng, out: &mut Vec<WireFrame>) {
        if now < self.start || now >= self.stop {
            // Source idle: discard fractional credit so restart is clean.
            self.acc = 0.0;
            return;
        }
        let due = match self.process {
            ArrivalProcess::Constant => {
                self.acc += self.rate_pps * dt.as_secs_f64();
                let n = self.acc as u64;
                self.acc -= n as f64;
                n
            }
            ArrivalProcess::Poisson => {
                // Renewal counting: `acc` is the offset of the next pending
                // arrival relative to this poll window's start. Count every
                // arrival inside the window and carry the overshoot.
                let mean_gap_ns = 1e9 / self.rate_pps;
                let mut n = 0u64;
                let mut t = self.acc;
                let window = dt.as_nanos() as f64;
                while t < window {
                    n += 1;
                    t += rng.exponential(mean_gap_ns) as f64;
                }
                self.acc = t - window;
                n
            }
        };
        for _ in 0..due {
            out.push(WireFrame {
                tuple: self.tuple,
                size: self.frame_size,
                seq: self.seq,
                cost_class: self.cost_class.draw(rng),
                ecn: Ecn::NotEct,
                arrival: now,
            });
            self.seq += 1;
            self.emitted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::Proto;

    fn run_flow(flow: &mut CbrFlow, total: Duration, poll: Duration, seed: u64) -> u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while now < SimTime::ZERO + total {
            now += poll;
            flow.emit(now, poll, &mut rng, &mut out);
        }
        out.len() as u64
    }

    #[test]
    fn constant_rate_is_exact_over_time() {
        let mut f = CbrFlow::new(FiveTuple::synthetic(0, Proto::Udp), 64, 1_000_000.0);
        let n = run_flow(
            &mut f,
            Duration::from_millis(100),
            Duration::from_micros(20),
            1,
        );
        // 1 Mpps for 100 ms = 100_000 packets (± rounding of the last poll)
        assert!((n as i64 - 100_000).abs() <= 1, "n={n}");
    }

    #[test]
    fn fractional_rates_accumulate() {
        // 30 kpps polled every 20us = 0.6 packets/poll — needs accumulator.
        let mut f = CbrFlow::new(FiveTuple::synthetic(0, Proto::Udp), 64, 30_000.0);
        let n = run_flow(&mut f, Duration::from_secs(1), Duration::from_micros(20), 1);
        assert!((n as i64 - 30_000).abs() <= 1, "n={n}");
    }

    #[test]
    fn poisson_rate_close_to_mean() {
        let mut f = CbrFlow::new(FiveTuple::synthetic(0, Proto::Udp), 64, 500_000.0).poisson();
        let n = run_flow(
            &mut f,
            Duration::from_millis(200),
            Duration::from_micros(20),
            7,
        );
        let expect = 100_000.0;
        assert!(
            ((n as f64 - expect) / expect).abs() < 0.03,
            "n={n} expect≈{expect}"
        );
    }

    #[test]
    fn window_gates_emission() {
        let mut f = CbrFlow::new(FiveTuple::synthetic(0, Proto::Udp), 64, 1_000_000.0)
            .window(SimTime::from_millis(10), SimTime::from_millis(20));
        let mut rng = SimRng::seed_from_u64(1);
        let mut out = Vec::new();
        let poll = Duration::from_micros(20);
        let mut now = SimTime::ZERO;
        while now < SimTime::from_millis(30) {
            now += poll;
            f.emit(now, poll, &mut rng, &mut out);
        }
        // active 10ms at 1Mpps ≈ 10_000 packets
        assert!((out.len() as i64 - 10_000).abs() <= 2, "len={}", out.len());
        assert!(out.iter().all(|w| {
            w.arrival >= SimTime::from_millis(10) && w.arrival < SimTime::from_millis(20)
        }));
    }

    #[test]
    fn sequences_are_consecutive() {
        let mut f = CbrFlow::new(FiveTuple::synthetic(0, Proto::Udp), 64, 1_000_000.0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut out = Vec::new();
        f.emit(
            SimTime::from_micros(100),
            Duration::from_micros(100),
            &mut rng,
            &mut out,
        );
        let seqs: Vec<u64> = out.iter().map(|w| w.seq).collect();
        assert_eq!(seqs, (0..out.len() as u64).collect::<Vec<_>>());
        assert_eq!(f.emitted, out.len() as u64);
    }

    #[test]
    fn uniform_cost_classes_cover_range() {
        let mut f = CbrFlow::new(FiveTuple::synthetic(0, Proto::Udp), 64, 1_000_000.0)
            .with_cost_class(CostClassGen::Uniform(3));
        let mut rng = SimRng::seed_from_u64(5);
        let mut out = Vec::new();
        f.emit(
            SimTime::from_millis(1),
            Duration::from_millis(1),
            &mut rng,
            &mut out,
        );
        let mut seen = [false; 3];
        for w in &out {
            assert!(w.cost_class < 3);
            seen[w.cost_class as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
