//! Exit-code contract of the `nfv-perfdiff` binary — the perf gate's
//! edge cases exercised end-to-end, the way CI invokes it. The unit
//! tests in `perf.rs` pin the same semantics at the library layer;
//! these pin that the gate's *verdict* (process exit code) reflects
//! them, so a refactor of `main` can't silently turn FAIL into green.

use std::path::PathBuf;
use std::process::Command;

struct Tmp(PathBuf);

impl Tmp {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("nfv-perfdiff-cli-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Tmp(dir)
    }
    fn file(&self, name: &str, body: &str) -> String {
        let p = self.0.join(name);
        std::fs::write(&p, body).unwrap();
        p.to_string_lossy().into_owned()
    }
}

impl Drop for Tmp {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Build a timings document from `(experiment, cell, wall_ms)` rows.
fn timings(rows: &[(&str, &str, f64)]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|(e, c, ms)| format!(r#"{{"experiment":"{e}","cell":"{c}","wall_ms":{ms}}}"#))
        .collect();
    let total: f64 = rows.iter().map(|r| r.2).sum();
    format!(
        r#"{{"cells":[{}],"total_wall_ms":{total}}}"#,
        cells.join(",")
    )
}

fn run(args: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_nfv-perfdiff"))
        .args(args)
        .output()
        .expect("spawn nfv-perfdiff")
        .status
}

#[test]
fn allowlisted_cell_still_counts_toward_suite_threshold() {
    let t = Tmp::new("allow-suite");
    let base = t.file(
        "base.json",
        &timings(&[("fig1", "a", 1000.0), ("fig1", "b", 1000.0)]),
    );
    // `fig1/a` triples: allowlisted, so no per-cell FAIL — but its extra
    // 2000 ms still pushes the suite total +100%, past the 10% suite
    // tolerance. The allowlist spares cells, never the suite.
    let cur = t.file(
        "cur.json",
        &timings(&[("fig1", "a", 3000.0), ("fig1", "b", 1000.0)]),
    );
    let allow = t.file("allow.txt", "# temporarily noisy\nfig1/a\n");
    let st = run(&[
        "--baseline",
        &base,
        "--current",
        &cur,
        "--allowlist",
        &allow,
    ]);
    assert_eq!(st.code(), Some(1), "suite threshold must still fire");

    // Same shape, regression small enough for the suite tolerance:
    // allowlisted cell alone must not fail the gate.
    let cur_ok = t.file(
        "cur_ok.json",
        &timings(&[("fig1", "a", 1080.0), ("fig1", "b", 1000.0)]),
    );
    let st = run(&[
        "--baseline",
        &base,
        "--current",
        &cur_ok,
        "--allowlist",
        &allow,
    ]);
    assert_eq!(
        st.code(),
        Some(0),
        "allowlisted cell within suite tol passes"
    );
}

#[test]
fn duplicate_cell_keys_fold_by_summing() {
    let t = Tmp::new("dup-fold");
    // The tuning experiment emits `high80/low60` in two sweeps; the
    // baseline was folded to one 430 ms entry. A current run whose two
    // occurrences sum to the same 430 ms is identical — exit 0.
    let base = t.file(
        "base.json",
        &timings(&[
            ("tuning", "high80/low60", 430.0),
            ("tuning", "other", 100.0),
        ]),
    );
    let same = t.file(
        "same.json",
        &timings(&[
            ("tuning", "high80/low60", 250.0),
            ("tuning", "other", 100.0),
            ("tuning", "high80/low60", 180.0),
        ]),
    );
    assert_eq!(
        run(&["--baseline", &base, "--current", &same]).code(),
        Some(0)
    );
    // If the duplicates summed per-occurrence instead (each compared to
    // the folded 430), both halves would read as huge *improvements* and
    // a doubled total would slip through. Doubling both occurrences must
    // fail on the folded comparison.
    let doubled = t.file(
        "doubled.json",
        &timings(&[
            ("tuning", "high80/low60", 500.0),
            ("tuning", "other", 100.0),
            ("tuning", "high80/low60", 360.0),
        ]),
    );
    assert_eq!(
        run(&["--baseline", &base, "--current", &doubled]).code(),
        Some(1)
    );
}

#[test]
fn multi_current_takes_per_cell_minimum() {
    let t = Tmp::new("min-fold");
    let base = t.file("base.json", &timings(&[("fig7", "a", 100.0)]));
    // Run 1 caught a one-sided 5x wall-clock spike; run 2 is clean. The
    // gate takes the per-cell min across runs, so the pair passes...
    let spiky = t.file("spiky.json", &timings(&[("fig7", "a", 500.0)]));
    let clean = t.file("clean.json", &timings(&[("fig7", "a", 102.0)]));
    assert_eq!(
        run(&[
            "--baseline",
            &base,
            "--current",
            &spiky,
            "--current",
            &clean
        ])
        .code(),
        Some(0)
    );
    // ...while the spiky run alone fails — the min-fold, not a lucky
    // ordering, is what spares it.
    assert_eq!(
        run(&["--baseline", &base, "--current", &spiky]).code(),
        Some(1)
    );
    // A real regression slows every run: min-folding two slow runs
    // still fails.
    let spiky2 = t.file("spiky2.json", &timings(&[("fig7", "a", 480.0)]));
    assert_eq!(
        run(&[
            "--baseline",
            &base,
            "--current",
            &spiky,
            "--current",
            &spiky2
        ])
        .code(),
        Some(1)
    );
}

#[test]
fn usage_and_io_errors_exit_2() {
    let t = Tmp::new("usage");
    let base = t.file("base.json", &timings(&[("fig1", "a", 100.0)]));
    // Missing --current is a usage error (2), distinct from a perf FAIL (1).
    assert_eq!(run(&["--baseline", &base]).code(), Some(2));
    // Unreadable input file: also 2.
    let missing = t.0.join("nope.json").to_string_lossy().into_owned();
    assert_eq!(
        run(&["--baseline", &base, "--current", &missing]).code(),
        Some(2)
    );
}
