//! float-accum fixture: compound assignment with float evidence on the
//! same line fires; integer accumulation does not.

pub struct Load {
    pub total: f64,
    pub samples: u64,
}

pub fn note(load: &mut Load, dwell: Duration) {
    load.total += dwell.as_secs_f64(); //~ float-accum
    load.samples += 1;
}
