//! Positive fixture: one line per determinism hazard the seeded-rule
//! set must catch, at the exact line the marker sits on.

use std::collections::{HashMap, HashSet}; //~ hash-map hash-set
use std::time::Instant; //~ wall-clock

pub fn hazards() {
    let started = Instant::now(); //~ wall-clock
    std::thread::spawn(|| {}); //~ thread-spawn
    let roll: u64 = rand::random(); //~ raw-rand
}
