//! stale-allow fixture: three ways an allow directive goes stale. The
//! first suppresses a real finding but gives no reason; the second
//! suppresses nothing; the third names a rule that does not exist.

// nfv-lint: allow(hash-map) //~ stale-allow
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>) -> Option<u32> { //~ hash-map
    let limit = 8; // nfv-lint: allow(wall-clock) -- leftover from a removed Instant //~ stale-allow
    m.get(&limit).copied()
}

// nfv-lint: allow(no-such-rule) -- rule was renamed away //~ stale-allow
pub fn unrelated() {}
