//! ev-exhaustive fixture, clean side: every variant has a tag arm.

pub(crate) enum Ev {
    Traffic,
    Wakeup { nf: usize },
}

pub(crate) fn ev_tag(ev: &Ev) -> u64 {
    match ev {
        Ev::Traffic => 1,
        Ev::Wakeup { nf } => 2 | ((*nf as u64) << 8),
    }
}
