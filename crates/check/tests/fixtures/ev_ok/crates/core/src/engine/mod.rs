//! ev-exhaustive fixture, clean side: `handle` feeds the sanitizer and
//! dispatches every variant explicitly — no wildcard arm.

impl Simulation {
    fn handle(&mut self, ev: Ev) {
        self.sanitizer.on_event(self.now, events::ev_tag(&ev));
        match ev {
            Ev::Traffic => self.rx_poll(),
            Ev::Wakeup { nf } => self.wake(nf),
        }
    }
}
