//! Regression fixture: the historical storage ceiling-division bug.
//! A flooring divide inside the drain-deadline computation completes
//! transfers that need a fractional nanosecond one tick early, which
//! shifts every downstream event. The real code uses `div_ceil`.

pub fn drain_deadline(bytes: u64, bandwidth_bps: u64) -> Duration {
    Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / bandwidth_bps) //~ fixed-point-div
}
