//! Regression fixture: the historical cgroup-share truncation bug.
//! Casting the weighted share straight to `u64` floors it, so the
//! per-NF shares sum below the total and the last NF is starved. The
//! real code rounds before casting (`.round() as u64`).

pub fn compute_share(total_cycles: u64, weight: f64, total_weight: f64) -> u64 {
    (total_cycles as f64 * weight / total_weight) as u64 //~ fixed-point-div
}
