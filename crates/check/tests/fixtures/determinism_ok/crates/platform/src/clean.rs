//! Negative fixture: hazard names in comments, strings and test code
//! are not findings. Mentions of HashMap, Instant, thread::spawn and
//! rand::random in this doc comment must stay invisible.

use std::collections::BTreeMap;

pub fn clean(m: &BTreeMap<u32, u32>) -> &'static str {
    let _ = m.len();
    "HashMap Instant thread::spawn rand::random"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1, Instant::now());
    }
}
