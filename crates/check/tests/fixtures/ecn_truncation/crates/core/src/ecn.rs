//! Regression fixture: the historical ECN fixed-point truncation bug.
//! Shifting the Q16 occupancy down before scaling drops the fractional
//! part, so queues sitting just under the mark threshold never mark.
//! The real code multiplies first and shifts last.

pub fn should_mark(scaled_occupancy: u64, capacity: u64, mark_pct: u64) -> bool {
    (scaled_occupancy >> 16) * 100 >= capacity * mark_pct //~ fixed-point-div
}
