//! hot-alloc fixture, helper side: `drain_batch` is called by the root,
//! `log_detail` only by `drain_batch` — hotness must propagate through
//! both hops, across files.

impl Simulation {
    fn drain_batch(&mut self, ev: Ev) {
        let scratch = vec![0u8; 4]; //~ hot-alloc
        self.log_detail();
    }

    fn log_detail(&mut self) {
        let detail = format!("drained"); //~ hot-alloc
    }
}
