//! hot-alloc fixture, dispatch side: `handle` is a dispatch root; the
//! helpers it reaches (directly or transitively, see exec.rs) are hot.
//! `cold_report` is never called from the hot path, so its allocation
//! is fine.

impl Simulation {
    pub(super) fn handle(&mut self, ev: Ev) {
        self.drain_batch(ev);
    }

    fn cold_report(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines
    }
}
