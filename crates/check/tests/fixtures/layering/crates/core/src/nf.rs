//! layering fixture, allowlisted side: `PacketHandler` is the NF plugin
//! point, boxed once at registration — exempt by name.

pub fn register(handler: Box<dyn PacketHandler>) {
    let _ = handler;
}
