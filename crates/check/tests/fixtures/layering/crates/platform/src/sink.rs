//! layering fixture, out-of-scope side: mechanism crates may use trait
//! objects freely.

pub fn sink() -> Box<dyn std::fmt::Debug> {
    Box::new(0u8)
}
