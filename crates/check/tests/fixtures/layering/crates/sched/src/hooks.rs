//! layering fixture: the Scheduler trait seam must stay monomorphic —
//! generic bounds are fine, trait objects are not.

pub struct SchedCore<S: Scheduler> {
    scheduler: S,
}

pub fn driver(s: &dyn Scheduler) { //~ layering
    todo!()
}
