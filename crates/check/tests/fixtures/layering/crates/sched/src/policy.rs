//! layering fixture: trait objects are denied in the policy crates.

pub fn queued(&self) -> Box<dyn Iterator<Item = u32>> { //~ layering
    todo!()
}
