//! Negative fixture: the fixed forms of the three historical bugs, plus
//! shapes that look similar but are sound. None of these may fire.

pub fn rounded_share(total_cycles: u64, weight: f64, total_weight: f64) -> u64 {
    (total_cycles as f64 * weight / total_weight).round() as u64
}

pub fn mark_after_scaling(scaled_occupancy: u64, capacity: u64, mark_pct: u64) -> bool {
    (scaled_occupancy * 100) >> 16 >= capacity * mark_pct
}

pub fn ceiling_deadline(bytes: u64, bandwidth_bps: u64) -> Duration {
    Duration::from_nanos(bytes.saturating_mul(1_000_000_000).div_ceil(bandwidth_bps))
}

pub const SHIFT: u32 = 16;

pub fn shift_up_then_divide(x: u64) -> u64 {
    (x << SHIFT) / 3
}

pub fn reviewed_truncation(x: u64) -> u64 {
    // nfv-lint: allow(fixed-point-div) -- quantizing to multiples of 7 is the spec here
    (x / 7) * 7
}
