//~ hot-alloc
//! Deleting (here: renaming) a dispatch root without updating
//! `rules::hot_alloc::HOT_ROOTS` is itself a deny finding — this is
//! exactly how the old hand-kept `HOT_FNS` list rotted. The finding
//! lands on line 1 because it describes the file, not a token.

impl Simulation {
    fn handle_event(&mut self, ev: Ev) {}
}
