//! ev-exhaustive fixture: `Ev::Wakeup` never reaches `ev_tag`, so the
//! sanitizer digest cannot see wakeup events — a deny on the `ev_tag`
//! fn line. (The dispatch file is absent; events-side checks still run.)

pub(crate) enum Ev {
    Traffic,
    Wakeup { nf: usize },
}

pub(crate) fn ev_tag(ev: &Ev) -> u64 { //~ ev-exhaustive
    match ev {
        Ev::Traffic => 1,
    }
}
