//! Fixture-corpus driver: each subdirectory of `tests/fixtures/` is one
//! scan unit (see the README there). Expected findings are `//~ <rule>`
//! markers on the offending lines; the scan must produce exactly the
//! marked `(path, line, rule)` set and nothing else.
//!
//! This corpus is what keeps the rules honest under refactoring: the
//! three historical fixed-point bugs must stay caught, deleting a
//! dispatch root or an `ev_tag` arm must stay a deny, and the negative
//! units must stay clean.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// `(path, line, rule)` — the comparable identity of a finding.
type Key = (String, usize, String);

fn collect_rs(unit: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(unit, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(unit)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path).unwrap()));
        }
    }
}

/// Extract `//~ rule [rule ...]` markers as expected findings.
fn expected_of(path: &str, text: &str) -> Vec<Key> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        for rule in line[pos + 3..].split_whitespace() {
            assert!(
                nfv_check::RULES.contains(&rule),
                "{path}:{}: marker names unknown rule {rule:?}",
                idx + 1
            );
            out.push((path.to_string(), idx + 1, rule.to_string()));
        }
    }
    out
}

#[test]
fn fixture_corpus() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut units: Vec<_> = fs::read_dir(&root)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap()
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    units.sort();
    assert!(!units.is_empty(), "no fixture units under {root:?}");

    let mut failures = Vec::new();
    for unit in &units {
        let name = unit.file_name().unwrap().to_string_lossy().to_string();
        let mut files = Vec::new();
        collect_rs(unit, unit, &mut files);
        assert!(!files.is_empty(), "unit {name} has no .rs files");

        let expected: BTreeSet<Key> = files.iter().flat_map(|(p, t)| expected_of(p, t)).collect();
        let got: BTreeSet<Key> = nfv_check::rules::scan_sources(files)
            .into_iter()
            .map(|f| (f.path, f.line, f.rule.to_string()))
            .collect();

        if expected != got {
            let missing: Vec<_> = expected.difference(&got).collect();
            let surprise: Vec<_> = got.difference(&expected).collect();
            failures.push(format!(
                "unit {name}: missing {missing:?}, unexpected {surprise:?}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The three historical bugs each have a dedicated regression unit; a
/// rename must not quietly drop one from the corpus.
#[test]
fn historical_bug_units_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for unit in ["share_truncation", "ecn_truncation", "storage_ceiling"] {
        assert!(root.join(unit).is_dir(), "missing regression unit {unit}");
    }
}
