//! End-to-end tests for the `nfv-lint` binary: the real workspace must
//! scan clean, and a scratch tree seeded with each hazard pattern must
//! fail with a JSON finding carrying the rule id and file:line.

use std::fs;
use std::path::Path;
use std::process::{Command, Output};

fn run_lint(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn nfv-lint")
}

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace has lint findings:\n{stdout}"
    );
    assert!(stdout.contains("\"total\": 0"), "json: {stdout}");
}

#[test]
fn seeded_hazards_fail_with_json_findings() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-hazards");
    // `crates/core/` in the path arms the float-accumulation rule.
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).unwrap();
    let bad = "\
use std::collections::HashMap;
use std::time::Instant;

fn hazards() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _s: std::collections::HashSet<u32> = Default::default();
    let _t = Instant::now();
    std::thread::spawn(|| {});
    let _r: u64 = rand::random();
    let mut acc = 0.0f64;
    acc += 0.25;
    let _ = acc;
}
";
    fs::write(src.join("bad.rs"), bad).unwrap();

    let out = run_lint(&root);
    assert!(!out.status.success(), "seeded hazards must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "hash-map",
        "hash-set",
        "wall-clock",
        "thread-spawn",
        "raw-rand",
        "float-accum",
    ] {
        assert!(stdout.contains(rule), "missing rule {rule} in: {stdout}");
    }
    // file:line location: `use std::collections::HashMap;` is line 1.
    assert!(stdout.contains("bad.rs"), "path missing: {stdout}");
    assert!(stdout.contains("\"line\": 1"), "line missing: {stdout}");

    // An allowlist comment silences the finding.
    let ok = "\
use std::collections::HashMap; // nfv-lint: allow(hash-map)

// nfv-lint: allow(hash-map)
fn fine() -> HashMap<u32, u32> {
    HashMap::new() // nfv-lint: allow(hash-map)
}
";
    fs::write(src.join("bad.rs"), ok).unwrap();
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "allowlisted file should pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
