//! End-to-end tests for the `nfv-lint` binary: the real workspace must
//! scan clean, a scratch tree seeded with each hazard pattern must fail
//! with a JSON finding carrying the rule id and file:line, the JSON
//! report shape and ordering are pinned by a snapshot, and the legacy
//! line-lexical engine is kept as a differential oracle for the six
//! rules both engines implement.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;
use std::process::{Command, Output};

fn run_lint(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn nfv-lint")
}

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace has lint findings:\n{stdout}"
    );
    assert!(stdout.contains("\"total\": 0"), "json: {stdout}");
}

#[test]
fn seeded_hazards_fail_with_json_findings() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-hazards");
    // `crates/core/` in the path arms the float-accumulation rule.
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).unwrap();
    let bad = "\
use std::collections::HashMap;
use std::time::Instant;

fn hazards() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _s: std::collections::HashSet<u32> = Default::default();
    let _t = Instant::now();
    std::thread::spawn(|| {});
    let _r: u64 = rand::random();
    let mut acc = 0.0f64;
    acc += 0.25;
    let _ = acc;
}
";
    fs::write(src.join("bad.rs"), bad).unwrap();

    let out = run_lint(&root);
    assert!(!out.status.success(), "seeded hazards must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "hash-map",
        "hash-set",
        "wall-clock",
        "thread-spawn",
        "raw-rand",
        "float-accum",
    ] {
        assert!(stdout.contains(rule), "missing rule {rule} in: {stdout}");
    }
    // file:line location: `use std::collections::HashMap;` is line 1.
    assert!(stdout.contains("bad.rs"), "path missing: {stdout}");
    assert!(stdout.contains("\"line\": 1"), "line missing: {stdout}");

    // An allowlist comment (with the mandatory reason) silences the
    // finding, whether it sits on the line or the line above.
    let ok = "\
use std::collections::HashMap; // nfv-lint: allow(hash-map) -- keys re-sorted before iteration

// nfv-lint: allow(hash-map) -- keys re-sorted before iteration
fn fine() -> HashMap<u32, u32> {
    HashMap::new() // nfv-lint: allow(hash-map) -- keys re-sorted before iteration
}
";
    fs::write(src.join("bad.rs"), ok).unwrap();
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "allowlisted file should pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Snapshot of the JSON report: pins the exact serialization and the
/// deterministic `(path, line, rule)` output order, including two rules
/// firing on the same line.
#[test]
fn json_report_snapshot() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-snapshot");
    let core = root.join("crates/core/src");
    let sched = root.join("crates/sched/src");
    fs::create_dir_all(&core).unwrap();
    fs::create_dir_all(&sched).unwrap();
    fs::write(
        core.join("a.rs"),
        "use std::collections::{HashMap, HashSet};\nuse std::time::Instant;\n",
    )
    .unwrap();
    fs::write(
        sched.join("b.rs"),
        "pub fn queued() -> Box<dyn Iterator<Item = u32>> {\n    todo!()\n}\n",
    )
    .unwrap();

    let out = run_lint(&root);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = r#"{
  "findings": [
    {"path": "crates/core/src/a.rs", "line": 1, "rule": "hash-map", "severity": "deny", "snippet": "use std::collections::{HashMap, HashSet};"},
    {"path": "crates/core/src/a.rs", "line": 1, "rule": "hash-set", "severity": "deny", "snippet": "use std::collections::{HashMap, HashSet};"},
    {"path": "crates/core/src/a.rs", "line": 2, "rule": "wall-clock", "severity": "deny", "snippet": "use std::time::Instant;"},
    {"path": "crates/sched/src/b.rs", "line": 1, "rule": "layering", "severity": "deny", "snippet": "pub fn queued() -> Box<dyn Iterator<Item = u32>> {"}
  ],
  "total": 4
}
"#;
    assert_eq!(stdout, expected);
}

/// The `--format github` emitter produces one workflow-command
/// annotation per finding, inline on the PR diff.
#[test]
fn github_format_emits_annotations() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-github");
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(src.join("a.rs"), "use std::time::Instant;\n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_nfv-lint"))
        .arg("--root")
        .arg(&root)
        .args(["--format", "github"])
        .output()
        .expect("spawn nfv-lint");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout,
        "::error file=crates/core/src/a.rs,line=1,title=nfv-lint wall-clock::use std::time::Instant;\n"
    );
}

/// Differential oracle: the legacy line-lexical scanner and the v2
/// token engine must agree, finding for finding, on the six rules they
/// share — over the real workspace AND a seeded corpus that makes each
/// of those rules fire (the workspace is clean, so on its own it only
/// proves agreement on emptiness).
#[test]
fn legacy_and_v2_engines_agree_on_shared_rules() {
    const SHARED: [&str; 6] = [
        "hash-map",
        "hash-set",
        "wall-clock",
        "thread-spawn",
        "raw-rand",
        "float-accum",
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = nfv_check::collect_files(&root).expect("collect workspace");
    files.push((
        "crates/platform/src/seeded_hazards.rs".to_string(),
        "\
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Instant, SystemTime};
use rand::Rng;

pub fn hazards() {
    let m: HashMap<u8, u8> = HashMap::new();
    let s: HashSet<u8> = HashSet::new();
    let t = Instant::now();
    let w = SystemTime::now();
    let h = std::thread::spawn(|| 0u8);
    let r: f64 = rand::random();
}
"
        .to_string(),
    ));
    files.push((
        "crates/core/src/seeded_float.rs".to_string(),
        "\
pub struct Acc {
    pub total: f64,
}

impl Acc {
    pub fn add(&mut self, x: f64) {
        self.total += x as f64;
        // nfv-lint: allow(float-accum) -- reviewed: summation order is fixed
        self.total -= 0.5;
    }
}
"
        .to_string(),
    ));

    let legacy: BTreeSet<(String, usize, &str)> = files
        .iter()
        .flat_map(|(p, t)| nfv_check::legacy::scan_source(p, t))
        .filter(|f| SHARED.contains(&f.rule))
        .map(|f| (f.path, f.line, f.rule))
        .collect();
    let v2: BTreeSet<(String, usize, &str)> = nfv_check::rules::scan_sources(files)
        .into_iter()
        .filter(|f| SHARED.contains(&f.rule))
        .map(|f| (f.path, f.line, f.rule))
        .collect();

    assert!(
        legacy
            .iter()
            .any(|(p, _, _)| p.ends_with("seeded_hazards.rs")),
        "seeded corpus must actually fire: {legacy:?}"
    );
    for rule in SHARED {
        assert!(
            legacy.iter().any(|(_, _, r)| *r == rule),
            "no {rule} finding in the seeded corpus"
        );
    }
    assert_eq!(legacy, v2, "engines disagree");
}
