//! `nfv-lint` binary: scan the workspace for determinism hazards.
//!
//! Usage: `nfv-lint [--root <dir>] [--quiet]`
//!
//! Prints a JSON report to stdout and a human summary to stderr; exits
//! nonzero when any finding is not allowlisted. Run from the workspace
//! root (as `cargo run -p nfv-check --bin nfv-lint` does) or point it
//! elsewhere with `--root`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("nfv-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: nfv-lint [--root <dir>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nfv-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match nfv_check::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nfv-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", nfv_check::to_json(&findings));

    if !quiet {
        for f in &findings {
            eprintln!(
                "{}: {}:{}: [{}] {}",
                f.severity, f.path, f.line, f.rule, f.snippet
            );
        }
        if findings.is_empty() {
            eprintln!("nfv-lint: clean");
        } else {
            eprintln!("nfv-lint: {} violation(s)", findings.len());
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
