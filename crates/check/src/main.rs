//! `nfv-lint` binary: scan the workspace for determinism, layering and
//! arithmetic hazards.
//!
//! Usage: `nfv-lint [--root <dir>] [--quiet] [--format json|github] [--json-out <path>]`
//!
//! Prints the report to stdout (`json` by default; `github` emits
//! workflow-command annotations that land inline on PR diffs) and a human
//! summary — including wall time, watched by the CI lint job — to
//! stderr. `--json-out` additionally writes the JSON report to a file
//! regardless of `--format` (CI uploads it as an artifact). Exits
//! nonzero when any finding is not allowlisted. Run from the workspace
//! root (as `cargo run -p nfv-check --bin nfv-lint` does) or point it
//! elsewhere with `--root`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut format = String::from("json");
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("nfv-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = "json".into(),
                Some("github") => format = "github".into(),
                other => {
                    eprintln!("nfv-lint: --format requires `json` or `github`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("nfv-lint: --json-out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: nfv-lint [--root <dir>] [--quiet] [--format json|github] [--json-out <path>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nfv-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let findings = match nfv_check::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nfv-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    match format.as_str() {
        "github" => print!("{}", nfv_check::to_github(&findings)),
        _ => print!("{}", nfv_check::to_json(&findings)),
    }
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, nfv_check::to_json(&findings)) {
            eprintln!("nfv-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !quiet {
        for f in &findings {
            eprintln!(
                "{}: {}:{}: [{}] {}",
                f.severity, f.path, f.line, f.rule, f.snippet
            );
        }
        if findings.is_empty() {
            eprintln!("nfv-lint: clean ({} ms)", elapsed.as_millis());
        } else {
            eprintln!(
                "nfv-lint: {} violation(s) ({} ms)",
                findings.len(),
                elapsed.as_millis()
            );
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
