//! Minimal JSON parser for the perf-gate tooling.
//!
//! The workspace builds offline with zero external dependencies, so
//! `serde` is not available; `nfv-perfdiff` only needs to read the two
//! flat documents the bench harness emits (`BENCH_timings.json` and the
//! committed `BENCH_baseline.json`). This is a small recursive-descent
//! parser over the full JSON grammar — strict enough to reject malformed
//! input with a position, simple enough to audit at a glance.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a `BTreeMap`, so iteration order is
/// deterministic (key order, not document order — the perf tooling never
/// depends on document order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`; the documents we read only
    /// carry counts and milliseconds, well inside `f64`'s exact range).
    Num(f64),
    /// String (escape sequences decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure: message plus byte offset into the input.
#[derive(Debug, Clone)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs don't appear in our documents;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    self.i = start + len;
                    let chunk = self
                        .b
                        .get(start..self.i)
                        .and_then(|ch| std::str::from_utf8(ch).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_timings_shape() {
        let doc = r#"{"cells":[{"experiment":"fig1","cell":"a","sim_secs":0.3,"wall_ms":12.345,
            "queue":{"pushes":10,"pops":10}}],"total_wall_ms":12.345,"jobs":4}"#;
        let v = parse(doc).unwrap();
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("experiment").unwrap().as_str(), Some("fig1"));
        assert_eq!(cells[0].get("wall_ms").unwrap().as_num(), Some(12.345));
        assert_eq!(v.get("jobs").unwrap().as_num(), Some(4.0));
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = parse(r#"{"a\n\"b":[null,true,false,-1.5e2,[],{}]}"#).unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Null);
        assert_eq!(arr[3], Json::Num(-150.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
    }
}
