//! `ev-exhaustive`: every engine event variant must be digest-visible.
//!
//! The sim-sanitizer's trace digest only covers what `ev_tag` encodes and
//! what `Simulation::handle` feeds to `on_event`. A new `Ev` variant that
//! skips either one bypasses the determinism audit silently — exactly the
//! kind of rot a refactor introduces. This rule cross-checks, per
//! variant of `enum Ev` in `engine/events.rs`:
//!
//! * an `Ev::<Variant>` arm exists in `ev_tag` (same file);
//! * an `Ev::<Variant>` arm exists in `Simulation::handle`
//!   (`engine/mod.rs`), which must also call the `on_event` hook;
//! * neither match hides behind a `_ =>` wildcard (a wildcard makes the
//!   compiler stop enforcing exhaustiveness, so the lint must too).
//!
//! The rule keys on the real engine files and stays silent when they are
//! absent (unit tests, fixture trees without an engine).

use super::{Rule, Workspace};
use crate::lexer::Kind;
use crate::parse::SourceFile;
use crate::{Finding, Severity};

pub const EVENTS_FILE: &str = "crates/core/src/engine/events.rs";
pub const DISPATCH_FILE: &str = "crates/core/src/engine/mod.rs";

pub struct EvExhaustiveRule;

/// Variant names of `enum Ev`, in declaration order.
fn ev_variants(sf: &SourceFile) -> Option<(u32, Vec<String>)> {
    let n = sf.toks.len();
    let mut i = 0;
    let (open, close, line) = loop {
        if i + 2 >= n {
            return None;
        }
        if sf.is_ident(i, "enum") && sf.is_ident(i + 1, "Ev") && sf.is_punct(i + 2, "{") {
            break (i + 2, sf.brace_match[i + 2]?, sf.toks[i].line);
        }
        i += 1;
    };
    let mut variants = Vec::new();
    let mut depth: i64 = 0;
    let mut expect = true;
    let mut j = open + 1;
    while j < close {
        let t = sf.toks[j];
        if t.kind == Kind::Punct {
            match sf.tok_text(j) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 0 => expect = true,
                // skip an attribute's [...] group
                "#" if depth == 0 && j + 1 < close && sf.is_punct(j + 1, "[") => {
                    let mut bd = 0i64;
                    j += 1;
                    while j < close {
                        if sf.is_punct(j, "[") {
                            bd += 1;
                        } else if sf.is_punct(j, "]") {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                _ => {}
            }
        } else if t.kind == Kind::Ident && depth == 0 && expect {
            variants.push(sf.tok_text(j).to_string());
            expect = false;
        }
        j += 1;
    }
    Some((line, variants))
}

/// Body token range of the first non-test fn named `name`.
fn fn_body(sf: &SourceFile, name: &str) -> Option<(u32, usize, usize)> {
    sf.fns
        .iter()
        .find(|f| !f.is_test && f.name == name)
        .and_then(|f| f.body.map(|(o, c)| (f.line, o, c)))
}

/// Does the body contain `Ev :: <variant>`?
fn has_arm(sf: &SourceFile, open: usize, close: usize, variant: &str) -> bool {
    (open + 1..close.saturating_sub(2))
        .any(|i| sf.is_ident(i, "Ev") && sf.is_punct(i + 1, "::") && sf.is_ident(i + 2, variant))
}

/// Does the body contain a `_ =>` wildcard arm?
fn has_wildcard(sf: &SourceFile, open: usize, close: usize) -> bool {
    (open + 1..close.saturating_sub(1)).any(|i| sf.is_ident(i, "_") && sf.is_punct(i + 1, "=>"))
}

/// Does the body call `on_event(`?
fn calls_on_event(sf: &SourceFile, open: usize, close: usize) -> bool {
    (open + 1..close.saturating_sub(1))
        .any(|i| sf.is_ident(i, "on_event") && sf.is_punct(i + 1, "("))
}

fn deny(sf: &SourceFile, line: u32, msg: String) -> Finding {
    Finding {
        path: sf.path.clone(),
        line: line as usize,
        rule: "ev-exhaustive",
        severity: Severity::Deny,
        snippet: msg,
    }
}

impl Rule for EvExhaustiveRule {
    fn id(&self) -> &'static str {
        "ev-exhaustive"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(ei) = ws.file_index(EVENTS_FILE) else {
            return;
        };
        let events = &ws.files[ei];
        let Some((enum_line, variants)) = ev_variants(events) else {
            out.push(deny(
                events,
                1,
                "enum Ev not found; ev-exhaustive cannot audit the digest".to_string(),
            ));
            return;
        };

        // `ev_tag` must encode every variant, without a wildcard.
        match fn_body(events, "ev_tag") {
            Some((line, open, close)) => {
                if has_wildcard(events, open, close) {
                    out.push(deny(
                        events,
                        line,
                        "ev_tag has a `_ =>` wildcard arm; every Ev variant must encode explicitly"
                            .to_string(),
                    ));
                }
                for v in &variants {
                    if !has_arm(events, open, close, v) {
                        out.push(deny(
                            events,
                            line,
                            format!(
                                "Ev::{v} has no ev_tag arm; the sanitizer digest cannot see it"
                            ),
                        ));
                    }
                }
            }
            None => out.push(deny(
                events,
                enum_line,
                "fn ev_tag not found beside enum Ev".to_string(),
            )),
        }

        // `handle` must dispatch every variant and feed the sanitizer.
        let Some(di) = ws.file_index(DISPATCH_FILE) else {
            return; // fixture tree without a dispatcher: events-side checks only
        };
        let dispatch = &ws.files[di];
        match fn_body(dispatch, "handle") {
            Some((line, open, close)) => {
                if !calls_on_event(dispatch, open, close) {
                    out.push(deny(
                        dispatch,
                        line,
                        "handle never calls the sanitizer's on_event hook".to_string(),
                    ));
                }
                if has_wildcard(dispatch, open, close) {
                    out.push(deny(
                        dispatch,
                        line,
                        "handle has a `_ =>` wildcard arm; every Ev variant must dispatch explicitly"
                            .to_string(),
                    ));
                }
                for v in &variants {
                    if !has_arm(dispatch, open, close, v) {
                        out.push(deny(
                            dispatch,
                            line,
                            format!("Ev::{v} is never dispatched in handle"),
                        ));
                    }
                }
            }
            None => out.push(deny(
                dispatch,
                1,
                "fn handle not found in the dispatch file".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{DISPATCH_FILE, EVENTS_FILE};
    use crate::rules::scan_sources;

    fn events_src(tag_arms: &[&str]) -> String {
        let mut s = String::from(
            "pub(crate) enum Ev {\n    Traffic,\n    CoreRun { core: usize },\n}\n\
             pub(crate) fn ev_tag(ev: &Ev) -> u64 {\n    match ev {\n",
        );
        for arm in tag_arms {
            s.push_str(&format!("        {arm}\n"));
        }
        s.push_str("    }\n}\n");
        s
    }

    fn dispatch_src(arms: &[&str], hook: bool) -> String {
        let mut s = String::from("impl Simulation {\n    fn handle(&mut self, ev: Ev) {\n");
        if hook {
            s.push_str("        self.sanitizer.on_event(now, ev_tag(&ev));\n");
        }
        s.push_str("        match ev {\n");
        for arm in arms {
            s.push_str(&format!("            {arm}\n"));
        }
        s.push_str("        }\n    }\n}\n");
        s
    }

    fn scan(events: String, dispatch: String) -> Vec<(usize, String)> {
        scan_sources(vec![
            (EVENTS_FILE.to_string(), events),
            (DISPATCH_FILE.to_string(), dispatch),
        ])
        .into_iter()
        .filter(|f| f.rule == "ev-exhaustive")
        .map(|f| (f.line, f.snippet))
        .collect()
    }

    #[test]
    fn complete_coverage_is_clean() {
        let fs = scan(
            events_src(&["Ev::Traffic => 1,", "Ev::CoreRun { core } => 2,"]),
            dispatch_src(&["Ev::Traffic => {}", "Ev::CoreRun { core } => {}"], true),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn missing_tag_arm_is_denied() {
        let fs = scan(
            events_src(&["Ev::Traffic => 1,"]),
            dispatch_src(&["Ev::Traffic => {}", "Ev::CoreRun { core } => {}"], true),
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].1.contains("Ev::CoreRun has no ev_tag arm"), "{fs:?}");
    }

    #[test]
    fn missing_dispatch_arm_is_denied() {
        let fs = scan(
            events_src(&["Ev::Traffic => 1,", "Ev::CoreRun { core } => 2,"]),
            dispatch_src(&["Ev::Traffic => {}"], true),
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].1.contains("never dispatched"), "{fs:?}");
    }

    #[test]
    fn wildcard_arms_are_denied() {
        let fs = scan(
            events_src(&["Ev::Traffic => 1,", "Ev::CoreRun { core } => 2,", "_ => 0,"]),
            dispatch_src(&["Ev::Traffic => {}", "Ev::CoreRun { core } => {}"], true),
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].1.contains("wildcard"), "{fs:?}");
    }

    #[test]
    fn missing_sanitizer_hook_is_denied() {
        let fs = scan(
            events_src(&["Ev::Traffic => 1,", "Ev::CoreRun { core } => 2,"]),
            dispatch_src(&["Ev::Traffic => {}", "Ev::CoreRun { core } => {}"], false),
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].1.contains("on_event"), "{fs:?}");
    }

    #[test]
    fn silent_when_engine_files_absent() {
        let fs = scan_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn f() {}\n".to_string(),
        )]);
        assert!(fs.is_empty());
    }
}
