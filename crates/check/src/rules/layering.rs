//! `layering`: no trait objects in the policy crates.
//!
//! The repo's convention (CLAUDE.md) is that policy (`crates/core`) and
//! the scheduler model (`crates/sched`) communicate through closures and
//! direct calls, not `dyn Trait` — trait objects invite platform
//! details to leak into policy code and defeat inlining on the per-event
//! path. The one sanctioned exception is [`ALLOWED_TRAITS`]:
//! `PacketHandler` is the NF-behavior plugin point and is boxed once at
//! NF registration, never per packet.

use super::{finding, Rule, Workspace};
use crate::lexer::Kind;
use crate::{Finding, Severity};

/// Trait names exempt from the rule.
pub const ALLOWED_TRAITS: &[&str] = &["PacketHandler"];

fn in_scope(path: &str) -> bool {
    path.contains("crates/core/") || path.contains("crates/sched/")
}

pub struct LayeringRule;

impl Rule for LayeringRule {
    fn id(&self) -> &'static str {
        "layering"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        let sf = &ws.files[file];
        if !in_scope(&sf.path) {
            return;
        }
        let n = sf.toks.len();
        for i in 0..n {
            if !sf.is_ident(i, "dyn") {
                continue;
            }
            // Trait name: the last segment of the path that follows
            // (`dyn PacketHandler`, `dyn fmt::Debug`, `dyn Iterator<..>`).
            let mut name: Option<&str> = None;
            let mut j = i + 1;
            while j < n {
                match sf.toks[j].kind {
                    Kind::Ident if !super::is_keyword(sf.tok_text(j)) => {
                        name = Some(sf.tok_text(j));
                    }
                    Kind::Punct if sf.tok_text(j) == "::" => {}
                    _ => break,
                }
                j += 1;
            }
            if name.is_some_and(|t| ALLOWED_TRAITS.contains(&t)) {
                continue;
            }
            out.push(finding(sf, sf.toks[i].line, self.id(), self.severity()));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::scan_one;

    #[test]
    fn dyn_trait_denied_in_policy_crates() {
        let src = "pub fn iter(&self) -> Box<dyn Iterator<Item = u8> + '_> { todo!() }\n";
        let fs = scan_one("crates/sched/src/runqueue.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "layering");
    }

    #[test]
    fn packet_handler_is_allowlisted() {
        let src = "pub fn add(&mut self, h: Box<dyn PacketHandler>) {}\n";
        assert!(scan_one("crates/core/src/nf.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_may_use_dyn() {
        let src = "fn rules() -> Vec<Box<dyn Rule>> { Vec::new() }\n";
        assert!(scan_one("crates/bench/src/util.rs", src).is_empty());
    }

    #[test]
    fn path_qualified_traits_use_last_segment() {
        let src = "fn f(x: &dyn fmt::Debug) {}\n";
        assert_eq!(scan_one("crates/core/src/lib.rs", src).len(), 1);
    }
}
