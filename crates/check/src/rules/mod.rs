//! The token-level rule engine: a [`Rule`] trait, the registry of all
//! active rules, and the pipeline that runs them over a parsed
//! [`Workspace`] — test-line filtering, per-line dedup, allowlist
//! suppression, and the `stale-allow` audit of the allowlist itself.

pub mod determinism;
pub mod ev_exhaustive;
pub mod fixed_point;
pub mod float_accum;
pub mod hot_alloc;
pub mod layering;

use crate::parse::SourceFile;
use crate::{Finding, Severity, RULES};
use std::collections::BTreeSet;

/// The parsed workspace every rule runs against. Built once per scan;
/// `hot_fns[file][fn]` is the call-graph hotness precomputed by
/// [`hot_alloc::compute_hotness`].
pub struct Workspace {
    /// Parsed files, sorted by path (findings come out deterministic).
    pub files: Vec<SourceFile>,
    /// Parallel to `files[i].fns`: reachable from a dispatch root.
    pub hot_fns: Vec<Vec<bool>>,
}

impl Workspace {
    /// Parse `(path, text)` pairs and precompute the hotness call-graph.
    pub fn build(inputs: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = inputs
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let hot_fns = hot_alloc::compute_hotness(&files);
        Workspace { files, hot_fns }
    }

    /// Index of the file with exactly this path, if present.
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.files
            .binary_search_by(|f| f.path.as_str().cmp(path))
            .ok()
    }
}

/// One lint rule over the parsed workspace. Most rules are per-file;
/// cross-file rules (`ev-exhaustive`, the hot-root audit) implement the
/// workspace pass instead.
pub trait Rule {
    /// Stable id, as used in findings and allow directives.
    fn id(&self) -> &'static str;
    /// Severity attached to this rule's findings.
    fn severity(&self) -> Severity;
    /// Per-file pass.
    fn check_file(&self, _ws: &Workspace, _file: usize, _out: &mut Vec<Finding>) {}
    /// Whole-workspace pass, run once after the per-file passes.
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Finding>) {}
}

/// Every active rule, in reporting order (`stale-allow` runs in the
/// engine pipeline itself — it audits the suppression step's results, so
/// it cannot be a registry entry).
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::HashMapRule),
        Box::new(determinism::HashSetRule),
        Box::new(determinism::WallClockRule),
        Box::new(determinism::ThreadSpawnRule),
        Box::new(determinism::RawRandRule),
        Box::new(float_accum::FloatAccumRule),
        Box::new(hot_alloc::HotAllocRule),
        Box::new(fixed_point::FixedPointDivRule),
        Box::new(layering::LayeringRule),
        Box::new(ev_exhaustive::EvExhaustiveRule),
    ]
}

/// Rust keywords (the subset that can precede `(` or an operator and be
/// mistaken for an operand or a call).
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "as"
            | "in"
            | "ref"
            | "move"
            | "unsafe"
            | "impl"
            | "dyn"
            | "break"
            | "continue"
            | "where"
            | "use"
            | "pub"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "mod"
            | "const"
            | "static"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "true"
            | "false"
            | "box"
            | "await"
            | "async"
            | "yield"
    )
}

/// Build a finding for `line` of `sf` with the line's trimmed text as
/// snippet.
pub fn finding(sf: &SourceFile, line: u32, rule: &'static str, severity: Severity) -> Finding {
    Finding {
        path: sf.path.clone(),
        line: line as usize,
        rule,
        severity,
        snippet: sf.line_snippet(line).to_string(),
    }
}

/// Run the full rule set over `(path, text)` pairs and return findings
/// sorted by `(path, line, rule)`, deduplicated per line, with allowlist
/// suppression applied and the allowlist itself audited (`stale-allow`).
pub fn scan_sources(inputs: Vec<(String, String)>) -> Vec<Finding> {
    let ws = Workspace::build(inputs);
    let mut raw: Vec<Finding> = Vec::new();
    for rule in registry() {
        for i in 0..ws.files.len() {
            rule.check_file(&ws, i, &mut raw);
        }
        rule.check_workspace(&ws, &mut raw);
    }

    // Test code is exempt (same policy as the legacy engine).
    raw.retain(|f| {
        ws.file_index(&f.path)
            .is_none_or(|i| !ws.files[i].is_test_line(f.line as u32))
    });

    // One finding per (path, line, rule): token rules may hit a line
    // several times (two `HashMap`s on one line); report it once, like
    // the line-oriented engine did.
    raw.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    raw.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule == b.rule);

    // Allowlist suppression: a directive on the finding line or the line
    // above silences matching rules. Track which directive entries fire —
    // the unused ones are exactly what `stale-allow` reports.
    let mut used: BTreeSet<(usize, usize, usize)> = BTreeSet::new(); // (file, directive, rule-name)
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let Some(fi) = ws.file_index(&f.path) else {
            findings.push(f);
            continue;
        };
        let mut suppressed = false;
        for (di, d) in ws.files[fi].directives.iter().enumerate() {
            let line = d.line as usize;
            if line != f.line && line + 1 != f.line {
                continue;
            }
            for (ri, name) in d.rules.iter().enumerate() {
                if name == f.rule {
                    used.insert((fi, di, ri));
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // `stale-allow`: directives that suppress nothing, name an unknown
    // rule, or lack the mandatory `-- <reason>`. Not itself suppressible —
    // `allow(stale-allow)` would defeat the audit. Directives inside test
    // code are ignored entirely, like every other finding source.
    for (fi, sf) in ws.files.iter().enumerate() {
        for (di, d) in sf.directives.iter().enumerate() {
            if sf.is_test_line(d.line) {
                continue;
            }
            for (ri, name) in d.rules.iter().enumerate() {
                if !RULES.contains(&name.as_str()) {
                    findings.push(Finding {
                        path: sf.path.clone(),
                        line: d.line as usize,
                        rule: "stale-allow",
                        severity: Severity::Warn,
                        snippet: format!("allow of unknown rule `{name}`"),
                    });
                } else if !used.contains(&(fi, di, ri)) {
                    findings.push(Finding {
                        path: sf.path.clone(),
                        line: d.line as usize,
                        rule: "stale-allow",
                        severity: Severity::Warn,
                        snippet: format!("allow(`{name}`) suppresses no finding"),
                    });
                }
            }
            if !d.has_reason {
                findings.push(Finding {
                    path: sf.path.clone(),
                    line: d.line as usize,
                    rule: "stale-allow",
                    severity: Severity::Warn,
                    snippet: "allow directive lacks a `-- <reason>`".to_string(),
                });
            }
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

/// Scan a single in-memory file (unit tests and fixtures).
pub fn scan_one(path: &str, text: &str) -> Vec<Finding> {
    scan_sources(vec![(path.to_string(), text.to_string())])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        scan_one(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn suppression_marks_directive_used() {
        let src = "use std::collections::HashMap; // nfv-lint: allow(hash-map) -- fixture\n";
        assert!(rules_of("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unused_allow_is_stale() {
        let src = "// nfv-lint: allow(hash-map) -- nothing here\nlet x = 1;\n";
        assert_eq!(rules_of("crates/x/src/lib.rs", src), vec!["stale-allow"]);
    }

    #[test]
    fn unknown_rule_is_stale() {
        let src = "// nfv-lint: allow(no-such-rule) -- why\nlet x = 1;\n";
        let f = &scan_one("crates/x/src/lib.rs", src)[0];
        assert_eq!(f.rule, "stale-allow");
        assert!(f.snippet.contains("unknown rule"));
    }

    #[test]
    fn missing_reason_is_stale() {
        let src = "use std::collections::HashMap; // nfv-lint: allow(hash-map)\n";
        let fs = scan_one("crates/x/src/lib.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "stale-allow");
        assert!(fs[0].snippet.contains("reason"));
    }

    #[test]
    fn directives_in_test_code_ignored() {
        let src = "#[cfg(test)]\nmod t {\n    // nfv-lint: allow(hash-map)\n    fn x() {}\n}\n";
        assert!(rules_of("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn dedup_one_finding_per_line_rule() {
        let src = "fn f(a: HashMap<u8, u8>, b: HashMap<u8, u8>) {}\n";
        assert_eq!(rules_of("crates/x/src/lib.rs", src), vec!["hash-map"]);
    }

    #[test]
    fn output_order_is_path_line_rule() {
        let fs = scan_sources(vec![
            (
                "crates/x/src/b.rs".into(),
                "use std::collections::HashMap;\n".into(),
            ),
            (
                "crates/x/src/a.rs".into(),
                "use std::time::Instant;\nuse std::collections::HashSet;\n".into(),
            ),
        ]);
        let got: Vec<(&str, usize, &str)> = fs
            .iter()
            .map(|f| (f.path.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            got,
            vec![
                ("crates/x/src/a.rs", 1, "wall-clock"),
                ("crates/x/src/a.rs", 2, "hash-set"),
                ("crates/x/src/b.rs", 1, "hash-map"),
            ]
        );
    }
}
