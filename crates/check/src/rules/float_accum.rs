//! `float-accum`: `+=` / `-=` on float-looking values in the policy
//! crates. FP accumulation order matters, so load/priority accounting
//! must either use integers or be reviewed and allowlisted.
//!
//! Type information is out of reach without full inference, so this
//! over-approximates exactly like the legacy engine: the compound
//! assignment and the float evidence just have to share a line. Evidence
//! is a float literal or any non-literal token mentioning `f64`/`f32`
//! (type ascriptions, casts, suffixed literals, `as_secs_f64()` calls).

use super::{finding, Rule, Workspace};
use crate::lexer::Kind;
use crate::{Finding, Severity};
use std::collections::BTreeMap;

/// Applies under `crates/core/` and `crates/sched/` only.
fn in_scope(path: &str) -> bool {
    path.contains("crates/sched/") || path.contains("crates/core/")
}

/// Legacy-compatible float-literal evidence: a digit, a dot, a digit —
/// so `1.5` counts but `1e9` and `1.` do not.
fn digit_dot_digit(text: &str) -> bool {
    text.as_bytes()
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

pub struct FloatAccumRule;

impl Rule for FloatAccumRule {
    fn id(&self) -> &'static str {
        "float-accum"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        let sf = &ws.files[file];
        if !in_scope(&sf.path) {
            return;
        }
        // (has `+=`/`-=`, has float evidence) per line.
        let mut lines: BTreeMap<u32, (bool, bool)> = BTreeMap::new();
        for i in 0..sf.toks.len() {
            let t = sf.toks[i];
            let text = sf.tok_text(i);
            let e = lines.entry(t.line).or_default();
            match t.kind {
                Kind::Punct if text == "+=" || text == "-=" => e.0 = true,
                // String/char literal contents are not evidence (the
                // legacy engine blanked them out).
                Kind::Literal => {}
                Kind::Float
                    if digit_dot_digit(text) || text.contains("f64") || text.contains("f32") =>
                {
                    e.1 = true
                }
                _ if text.contains("f64") || text.contains("f32") => e.1 = true,
                _ => {}
            }
        }
        for (line, (accum, float)) in lines {
            if accum && float {
                out.push(finding(sf, line, self.id(), self.severity()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::scan_one;

    #[test]
    fn fires_in_scope_only() {
        let src = "acc += x as f64;\n";
        assert_eq!(
            scan_one("crates/core/src/load.rs", src)
                .first()
                .map(|f| f.rule),
            Some("float-accum")
        );
        assert_eq!(
            scan_one("crates/sched/src/scheduler.rs", "w += 0.5;\n").len(),
            1
        );
        assert!(scan_one("crates/traffic/src/cbr.rs", src).is_empty());
    }

    #[test]
    fn integer_accumulation_is_fine() {
        assert!(scan_one("crates/core/src/x.rs", "count += 1;\n").is_empty());
    }

    #[test]
    fn suffixed_literals_and_method_names_are_evidence() {
        assert_eq!(
            scan_one("crates/core/src/x.rs", "acc += 2.0f64;\n").len(),
            1
        );
        assert_eq!(
            scan_one("crates/core/src/x.rs", "acc += d.as_secs_f64();\n").len(),
            1
        );
    }

    #[test]
    fn exponent_only_literals_are_not_evidence() {
        // parity with the legacy digit-dot-digit check (fixed-point-div
        // may still fire on the cast; float-accum must not)
        assert!(scan_one("crates/core/src/x.rs", "n += 1e9 as u64;\n")
            .iter()
            .all(|f| f.rule != "float-accum"));
    }
}
