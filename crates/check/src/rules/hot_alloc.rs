//! `hot-alloc` v2: allocation in the event-dispatch / queue hot path.
//!
//! The legacy engine kept a hand-maintained list of hot function names
//! ([`crate::legacy::HOT_FNS`]) that silently went stale whenever
//! `engine/` was refactored. This version derives hotness from the code:
//! a call graph is built from the parsed fn bodies and hotness propagates
//! transitively from the dispatch roots ([`HOT_ROOTS`]) — the event-loop
//! `handle` and the queue's `push`/`pop_before`. Renaming or splitting a
//! helper keeps it hot as long as something hot still calls it; deleting
//! a root fn without updating the roots is itself a deny finding, so
//! coverage cannot silently shrink.
//!
//! Call resolution is name-based with one precision guard: a qualified
//! call `Type::method(...)` only resolves to fns inside `impl Type`
//! blocks. Without that, `Ewma::new` reached from the hot path would mark
//! every `new` in the workspace hot. Bare and method calls (`helper(...)`,
//! `x.drain_into(...)`, `module::helper(...)`) resolve by name alone —
//! an over-approximation that errs toward flagging.

use super::{finding, Rule, Workspace};
use crate::lexer::Kind;
use crate::parse::SourceFile;
use crate::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The dispatch roots hotness propagates from: `(file path, fn name)`.
/// `Simulation::handle` is the single entry every event goes through;
/// the queue's `push`/`pop_before` run once per event on top of that.
/// When a listed file exists but the fn is gone (renamed, moved), the
/// rule emits a deny finding — update the root list consciously, don't
/// let it rot.
pub const HOT_ROOTS: &[(&str, &str)] = &[
    ("crates/core/src/engine/mod.rs", "handle"),
    ("crates/des/src/queue.rs", "push"),
    ("crates/des/src/queue.rs", "pop_before"),
    ("crates/des/src/queue.rs", "pop_batch_before"),
];

/// Compute per-fn hotness for every file: BFS over the call graph from
/// [`HOT_ROOTS`]. Test fns neither propagate nor receive hotness.
pub fn compute_hotness(files: &[SourceFile]) -> Vec<Vec<bool>> {
    // Indexes: bare name -> fns, (impl type, name) -> fns.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, sf) in files.iter().enumerate() {
        for (fj, f) in sf.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(&f.name).or_default().push((fi, fj));
            if let Some(q) = &f.qual {
                by_qual.entry((q, &f.name)).or_default().push((fi, fj));
            }
        }
    }

    let mut hot: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.fns.len()]).collect();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for &(path, name) in HOT_ROOTS {
        let Some(fi) = files.iter().position(|f| f.path == path) else {
            continue; // file not in this scan (single-file tests, fixtures)
        };
        for (fj, f) in files[fi].fns.iter().enumerate() {
            if !f.is_test && f.name == name && !hot[fi][fj] {
                hot[fi][fj] = true;
                queue.push_back((fi, fj));
            }
        }
    }

    let mut seen_calls: BTreeSet<(usize, usize)> = BTreeSet::new();
    while let Some((fi, fj)) = queue.pop_front() {
        if !seen_calls.insert((fi, fj)) {
            continue;
        }
        let sf = &files[fi];
        let Some((open, close)) = sf.fns[fj].body else {
            continue;
        };
        let mut targets: Vec<(usize, usize)> = Vec::new();
        let mut i = open + 1;
        while i < close {
            // Qualified call `Type::method(` — uppercase first segment
            // resolves only within `impl Type`.
            if i + 3 < close
                && sf.toks[i].kind == Kind::Ident
                && sf.is_punct(i + 1, "::")
                && sf.toks[i + 2].kind == Kind::Ident
                && sf.is_punct(i + 3, "(")
            {
                let seg = sf.tok_text(i);
                let name = sf.tok_text(i + 2);
                let first = seg.chars().next().unwrap_or('_');
                if first.is_ascii_uppercase() {
                    if let Some(t) = by_qual.get(&(seg, name)) {
                        targets.extend(t.iter().copied());
                    }
                } else if let Some(t) = by_name.get(name) {
                    // module-qualified (`events::ev_tag(`): name-resolved
                    targets.extend(t.iter().copied());
                }
                i += 3;
                continue;
            }
            // Bare or method call `name(` / `.name(` — not a definition
            // (`fn name(`), not a macro (`name!(`), not a keyword.
            if i + 1 < close
                && sf.toks[i].kind == Kind::Ident
                && sf.is_punct(i + 1, "(")
                && !(i > 0 && (sf.is_ident(i - 1, "fn") || sf.is_punct(i - 1, "::")))
                && !super::is_keyword(sf.tok_text(i))
            {
                if let Some(t) = by_name.get(sf.tok_text(i)) {
                    targets.extend(t.iter().copied());
                }
            }
            i += 1;
        }
        for (ti, tj) in targets {
            if !hot[ti][tj] {
                hot[ti][tj] = true;
                queue.push_back((ti, tj));
            }
        }
    }
    hot
}

pub struct HotAllocRule;

impl Rule for HotAllocRule {
    fn id(&self) -> &'static str {
        "hot-alloc"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }

    /// Flag `Box::new` / `Vec::new` / `vec!` / `format!` inside hot fn
    /// bodies. `Vec::with_capacity` is deliberately not flagged — sizing
    /// buffers once at setup and recycling them is the fix, not a hit.
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        let sf = &ws.files[file];
        for (fj, f) in sf.fns.iter().enumerate() {
            if !ws.hot_fns[file][fj] {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            for i in open + 1..close {
                if sf.toks[i].kind != Kind::Ident {
                    continue;
                }
                let hit = match sf.tok_text(i) {
                    "Box" | "Vec" => {
                        i + 2 < close && sf.is_punct(i + 1, "::") && sf.is_ident(i + 2, "new")
                    }
                    "vec" | "format" => i + 1 < close && sf.is_punct(i + 1, "!"),
                    _ => false,
                };
                if hit {
                    out.push(finding(sf, sf.toks[i].line, self.id(), self.severity()));
                }
            }
        }
    }

    /// A root whose file is present but whose fn is missing means the
    /// dispatch path was refactored without updating [`HOT_ROOTS`]:
    /// deny, loudly — this is exactly how the old `HOT_FNS` list rotted.
    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for &(path, name) in HOT_ROOTS {
            let Some(fi) = ws.file_index(path) else {
                continue;
            };
            let sf = &ws.files[fi];
            if !sf.fns.iter().any(|f| !f.is_test && f.name == name) {
                out.push(Finding {
                    path: sf.path.clone(),
                    line: 1,
                    rule: "hot-alloc",
                    severity: Severity::Deny,
                    snippet: format!(
                        "dispatch root fn `{name}` not found in {path}; update rules::hot_alloc::HOT_ROOTS"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{scan_one, scan_sources};

    #[test]
    fn allocs_flagged_in_root_fn_only() {
        let src = "\
impl Simulation {
    fn handle(&mut self) {
        let v = Vec::new();
        let b = Box::new(1);
    }
    fn cold_setup(&mut self) {
        let v: Vec<u32> = Vec::new();
    }
}
";
        let got: Vec<(usize, &str)> = scan_one("crates/core/src/engine/mod.rs", src)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect();
        assert_eq!(got, vec![(3, "hot-alloc"), (4, "hot-alloc")]);
    }

    #[test]
    fn hotness_propagates_through_calls() {
        let root = "\
impl Simulation {
    fn handle(&mut self) {
        self.helper();
    }
}
";
        let other = "\
impl Other {
    fn helper(&mut self) {
        let v = vec![1];
    }
    fn never_called_from_hot(&mut self) {
        let v = vec![2];
    }
}
";
        let fs = scan_sources(vec![
            ("crates/core/src/engine/mod.rs".into(), root.into()),
            ("crates/core/src/engine/other.rs".into(), other.into()),
        ]);
        let got: Vec<(String, usize)> = fs.iter().map(|f| (f.path.clone(), f.line)).collect();
        assert_eq!(got, vec![("crates/core/src/engine/other.rs".into(), 3)]);
    }

    #[test]
    fn qualified_calls_resolve_within_impl_only() {
        // handle() calls Ewma::new — only `impl Ewma`'s `new` goes hot,
        // not every `new` in the workspace.
        let root = "\
impl Simulation {
    fn handle(&mut self) {
        let e = Ewma::new();
    }
}
";
        let other = "\
impl Ewma {
    fn new() -> Self {
        let v = vec![1];
        Ewma
    }
}
impl Backpressure {
    fn new() -> Self {
        let v = vec![2];
        Backpressure
    }
}
";
        let fs = scan_sources(vec![
            ("crates/core/src/engine/mod.rs".into(), root.into()),
            ("crates/core/src/other.rs".into(), other.into()),
        ]);
        let lines: Vec<usize> = fs.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3], "only Ewma::new is hot: {fs:?}");
    }

    #[test]
    fn missing_root_fn_is_a_deny_finding() {
        // The root file exists but `handle` was renamed away.
        let src = "\
impl Simulation {
    fn handle_event(&mut self) {}
}
";
        let fs = scan_one("crates/core/src/engine/mod.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "hot-alloc");
        assert!(fs[0].snippet.contains("dispatch root"), "{fs:?}");
    }

    #[test]
    fn with_capacity_is_the_fix_not_a_hit() {
        // every queue root must exist or the root audit itself fires
        let src = "\
fn push(&mut self) {}
fn pop_batch_before(&mut self) {}
fn pop_before(&mut self) {
    let mut v = Vec::with_capacity(8);
    v.push(1);
}
";
        assert!(scan_one("crates/des/src/queue.rs", src).is_empty());
    }

    #[test]
    fn test_fns_do_not_propagate() {
        let src = "\
fn handle(&mut self) {}
#[cfg(test)]
mod tests {
    fn helper_alloc() { let v = vec![1]; }
    #[test]
    fn t() { helper_alloc(); }
}
";
        assert!(scan_one("crates/core/src/engine/mod.rs", src).is_empty());
    }
}
