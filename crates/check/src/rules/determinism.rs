//! The five hard determinism rules, token-level reimplementations of the
//! legacy scanner's substring heuristics: hash containers, wall clocks,
//! threads, and raw randomness. Behavior-compatible with
//! [`crate::legacy`] — `tests/lint.rs` holds the differential.

use super::{finding, Rule, Workspace};
use crate::lexer::Kind;
use crate::{Finding, Severity};

/// `HashMap`: iteration order is seeded per-instance per-process.
pub struct HashMapRule;

impl Rule for HashMapRule {
    fn id(&self) -> &'static str {
        "hash-map"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        ident_rule(ws, file, &["HashMap"], self.id(), self.severity(), out);
    }
}

/// `HashSet`: same hazard as `HashMap`.
pub struct HashSetRule;

impl Rule for HashSetRule {
    fn id(&self) -> &'static str {
        "hash-set"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        ident_rule(ws, file, &["HashSet"], self.id(), self.severity(), out);
    }
}

/// `Instant` / `SystemTime`: wall time in sim code breaks replay.
pub struct WallClockRule;

impl Rule for WallClockRule {
    fn id(&self) -> &'static str {
        "wall-clock"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        ident_rule(
            ws,
            file,
            &["Instant", "SystemTime"],
            self.id(),
            self.severity(),
            out,
        );
    }
}

/// Flag any identifier in `names` (word-boundary matching falls out of
/// tokenization; strings and comments are never tokens).
fn ident_rule(
    ws: &Workspace,
    file: usize,
    names: &[&str],
    id: &'static str,
    sev: Severity,
    out: &mut Vec<Finding>,
) {
    let sf = &ws.files[file];
    for i in 0..sf.toks.len() {
        if sf.toks[i].kind == Kind::Ident && names.contains(&sf.tok_text(i)) {
            out.push(finding(sf, sf.toks[i].line, id, sev));
        }
    }
}

/// `thread::spawn` / `thread::scope` / `thread::Builder`: the sim is
/// single-threaded by contract.
pub struct ThreadSpawnRule;

impl Rule for ThreadSpawnRule {
    fn id(&self) -> &'static str {
        "thread-spawn"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        let sf = &ws.files[file];
        for i in 0..sf.toks.len().saturating_sub(2) {
            if sf.is_ident(i, "thread")
                && sf.is_punct(i + 1, "::")
                && sf.toks[i + 2].kind == Kind::Ident
                && matches!(sf.tok_text(i + 2), "spawn" | "scope" | "Builder")
            {
                out.push(finding(sf, sf.toks[i].line, self.id(), self.severity()));
            }
        }
    }
}

/// `rand` used as a path root or imported: all randomness goes through
/// `nfv_des::SimRng`. Identifiers merely containing "rand" don't match.
pub struct RawRandRule;

impl Rule for RawRandRule {
    fn id(&self) -> &'static str {
        "raw-rand"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        let sf = &ws.files[file];
        let n = sf.toks.len();
        for i in 0..n {
            if !sf.is_ident(i, "rand") {
                continue;
            }
            // `rand::...` path root
            let path_root = i + 1 < n && sf.is_punct(i + 1, "::");
            // `use rand;` / `use rand::...` / bare `use rand`
            let imported = i > 0
                && sf.is_ident(i - 1, "use")
                && (i + 1 >= n || sf.is_punct(i + 1, ";") || sf.is_punct(i + 1, "::"));
            // `extern crate rand`
            let ext = i >= 2 && sf.is_ident(i - 2, "extern") && sf.is_ident(i - 1, "crate");
            if path_root || imported || ext {
                out.push(finding(sf, sf.toks[i].line, self.id(), self.severity()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::scan_one;

    fn rules_of(src: &str) -> Vec<&'static str> {
        scan_one("crates/x/src/lib.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_hash_containers_and_clocks() {
        assert_eq!(
            rules_of("use std::collections::HashMap;\n"),
            vec!["hash-map"]
        );
        assert_eq!(
            rules_of("let s: HashSet<u32> = HashSet::new();\n"),
            vec!["hash-set"]
        );
        assert_eq!(rules_of("let t = Instant::now();\n"), vec!["wall-clock"]);
        assert_eq!(
            rules_of("let t = std::time::SystemTime::now();\n"),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn word_boundaries_via_tokens() {
        assert!(rules_of("struct InstantReplay; let MyHashMapLike = 1;\n").is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        assert!(rules_of("// a HashMap would be wrong here\n").is_empty());
        assert!(rules_of("/* Instant::now() */ let x = 1;\n").is_empty());
        assert!(rules_of("let s = \"HashMap Instant rand::\";\n").is_empty());
        assert!(rules_of("let s = r#\"thread::spawn\"#;\n").is_empty());
    }

    #[test]
    fn thread_forms() {
        assert_eq!(
            rules_of("std::thread::spawn(|| {});\n"),
            vec!["thread-spawn"]
        );
        assert_eq!(
            rules_of("std::thread::scope(|s| { s.spawn(|| {}); });\n"),
            vec!["thread-spawn"]
        );
        assert_eq!(
            rules_of("let h = thread::Builder::new().spawn(f);\n"),
            vec!["thread-spawn"]
        );
        assert!(rules_of("thread_local! { static X: u8 = 0; }\n").is_empty());
    }

    #[test]
    fn rand_forms() {
        assert_eq!(rules_of("use rand::Rng;\n"), vec!["raw-rand"]);
        assert_eq!(
            rules_of("let x = rand::random::<u8>();\n"),
            vec!["raw-rand"]
        );
        assert_eq!(rules_of("extern crate rand;\n"), vec!["raw-rand"]);
        assert!(rules_of("use nfv_des::SimRng;\n").is_empty());
        assert!(rules_of("let operand = 3; operand_use(operand);\n").is_empty());
        assert!(rules_of("use rand_core::X;\n").is_empty());
    }
}
