//! `fixed-point-div`: the arithmetic-hazard class behind three real bugs
//! in this repo's history — cgroup share truncation in `compute_shares`
//! (fixed by `.round()`), ECN fixed-point truncation in
//! `EcnMarker::should_mark` (fixed by comparing cross-multiplied scaled
//! values), and storage-latency ceiling division in
//! `StorageDevice::submit_write` (fixed by `div_ceil`). All three share
//! a shape a lexical scanner can't see but a token scanner can:
//!
//! * **P1 — divide before multiply**: an integer `/` (or `>>`) whose
//!   result is then multiplied in the same expression. Integer division
//!   truncates first, so the multiply amplifies the loss; the fix is to
//!   reorder (`a * c / b`) or widen. Statements with float evidence are
//!   exempt — float division doesn't truncate.
//! * **P2 — truncating cast of float math**: `as <int>` applied to an
//!   expression with float evidence but no rounding call (`round`,
//!   `ceil`, `floor`, `trunc`, `div_ceil`). `(x).round() as u64` is the
//!   idiom; a bare `as u64` silently truncates toward zero.
//! * **P3 — truncated duration**: a `Duration::from_*` constructor whose
//!   argument divides without `div_ceil`/rounding — latencies truncate
//!   toward zero, letting work finish a tick early (the storage bug).
//!
//! Scope: the policy/mechanism arithmetic in `crates/core`, `crates/sched`
//! and `crates/io`. Intentional truncation takes
//! `// nfv-lint: allow(fixed-point-div) -- <reason>`.

use super::{finding, Rule, Workspace};
use crate::lexer::Kind;
use crate::parse::SourceFile;
use crate::{Finding, Severity};

fn in_scope(path: &str) -> bool {
    path.contains("crates/core/") || path.contains("crates/sched/") || path.contains("crates/io/")
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const ROUNDING: &[&str] = &[
    "round",
    "round_ties_even",
    "ceil",
    "floor",
    "trunc",
    "div_ceil",
    "div_euclid",
    "to_int_unchecked",
];

const DURATION_CTORS: &[&str] = &["from_nanos", "from_micros", "from_millis", "from_secs"];

/// Token texts that end the expression scan at group depth 0.
const STOPPERS: &[&str] = &[
    ";", ",", "{", "}", "=", "==", "!=", "<", ">", "<=", ">=", "&&", "||", "=>",
];

/// Float evidence on a token: a float literal, or a non-literal token
/// mentioning an FP type (casts, suffixes, `as_secs_f64`, ...).
fn is_float_evidence(sf: &SourceFile, i: usize) -> bool {
    let t = sf.toks[i];
    if t.kind == Kind::Literal {
        return false;
    }
    t.kind == Kind::Float || {
        let s = sf.tok_text(i);
        s.contains("f64") || s.contains("f32")
    }
}

fn is_rounding(sf: &SourceFile, i: usize) -> bool {
    sf.toks[i].kind == Kind::Ident && ROUNDING.contains(&sf.tok_text(i))
}

/// Can this token end an operand (making a following `/`, `>>`, `*`
/// binary rather than unary)?
fn ends_operand(sf: &SourceFile, i: usize) -> bool {
    match sf.toks[i].kind {
        Kind::Ident => !super::is_keyword(sf.tok_text(i)),
        Kind::Int | Kind::Float => true,
        Kind::Punct => matches!(sf.tok_text(i), ")" | "]"),
        _ => false,
    }
}

/// Can this token start an operand?
fn starts_operand(sf: &SourceFile, i: usize) -> bool {
    match sf.toks[i].kind {
        Kind::Ident | Kind::Int | Kind::Float => true,
        Kind::Punct => matches!(sf.tok_text(i), "(" | "*" | "&" | "-" | "!"),
        _ => false,
    }
}

/// Statement region around token `i`: expand to the nearest `;`/`{`/`}`
/// on each side. Used for the float-evidence veto.
fn statement_region(sf: &SourceFile, i: usize) -> (usize, usize) {
    let mut lo = i;
    while lo > 0 {
        let j = lo - 1;
        if sf.toks[j].kind == Kind::Punct && matches!(sf.tok_text(j), ";" | "{" | "}") {
            break;
        }
        lo = j;
    }
    let mut hi = i;
    while hi + 1 < sf.toks.len() {
        let j = hi + 1;
        if sf.toks[j].kind == Kind::Punct && matches!(sf.tok_text(j), ";" | "{" | "}") {
            break;
        }
        hi = j;
    }
    (lo, hi)
}

fn region_has(
    sf: &SourceFile,
    lo: usize,
    hi: usize,
    pred: impl Fn(&SourceFile, usize) -> bool,
) -> bool {
    (lo..=hi).any(|i| pred(sf, i))
}

pub struct FixedPointDivRule;

impl Rule for FixedPointDivRule {
    fn id(&self) -> &'static str {
        "fixed-point-div"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check_file(&self, ws: &Workspace, file: usize, out: &mut Vec<Finding>) {
        let sf = &ws.files[file];
        if !in_scope(&sf.path) {
            return;
        }
        let n = sf.toks.len();
        for i in 0..n {
            if sf.toks[i].kind != Kind::Punct {
                // P2: truncating cast of float math.
                if sf.is_ident(i, "as")
                    && i + 1 < n
                    && sf.toks[i + 1].kind == Kind::Ident
                    && INT_TYPES.contains(&sf.tok_text(i + 1))
                    && self.cast_truncates_float(sf, i)
                {
                    out.push(finding(sf, sf.toks[i].line, self.id(), self.severity()));
                }
                // P3: Duration ctor with a truncating division inside.
                if sf.toks[i].kind == Kind::Ident
                    && DURATION_CTORS.contains(&sf.tok_text(i))
                    && i + 1 < n
                    && sf.is_punct(i + 1, "(")
                {
                    if let Some(line) = self.ctor_arg_truncates(sf, i + 1) {
                        out.push(finding(sf, line, self.id(), self.severity()));
                    }
                }
                continue;
            }
            // P1: integer divide (or shift) whose result is multiplied.
            let op = sf.tok_text(i);
            let divlike = match op {
                "/" => i > 0 && ends_operand(sf, i - 1),
                ">>" => i > 0 && ends_operand(sf, i - 1) && i + 1 < n && starts_operand(sf, i + 1),
                _ => false,
            };
            if !divlike {
                continue;
            }
            let (lo, hi) = statement_region(sf, i);
            if region_has(sf, lo, hi, is_float_evidence) {
                continue; // float division doesn't truncate
            }
            if self.multiplied_after(sf, i, n) {
                out.push(finding(sf, sf.toks[i].line, self.id(), self.severity()));
            }
        }
    }
}

impl FixedPointDivRule {
    /// Forward scan from the division operator: does a binary `*` apply
    /// to its result at the same or an enclosing nesting level before
    /// the expression ends?
    fn multiplied_after(&self, sf: &SourceFile, div: usize, n: usize) -> bool {
        let mut depth: i64 = 0;
        for j in div + 1..n {
            if sf.toks[j].kind != Kind::Punct {
                continue;
            }
            match sf.tok_text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "*" if depth <= 0 && j > 0 && ends_operand(sf, j - 1) => return true,
                s if depth <= 0 && STOPPERS.contains(&s) => return false,
                _ => {}
            }
        }
        false
    }

    /// Backward scan from an `as <int>` cast: float evidence with no
    /// rounding call in the casted expression?
    fn cast_truncates_float(&self, sf: &SourceFile, as_tok: usize) -> bool {
        let mut depth: i64 = 0;
        let mut float = false;
        let mut rounded = false;
        let mut j = as_tok;
        while j > 0 {
            j -= 1;
            let t = sf.toks[j];
            if t.kind == Kind::Punct {
                match sf.tok_text(j) {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        depth -= 1;
                        if depth < 0 {
                            break; // left the enclosing group
                        }
                    }
                    s if depth == 0 && STOPPERS.contains(&s) => break,
                    _ => {}
                }
            }
            float |= is_float_evidence(sf, j);
            rounded |= is_rounding(sf, j);
        }
        float && !rounded
    }

    /// Scan a `Duration::from_*((...))` argument list for a bare integer
    /// `/` with no `div_ceil`/rounding/float treatment. Returns the line
    /// of the offending `/`.
    fn ctor_arg_truncates(&self, sf: &SourceFile, open: usize) -> Option<u32> {
        let mut depth: i64 = 0;
        let mut close = open;
        for j in open..sf.toks.len() {
            if sf.toks[j].kind != Kind::Punct {
                continue;
            }
            match sf.tok_text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        if close == open {
            return None;
        }
        let safe = region_has(sf, open + 1, close - 1, |sf, i| {
            is_float_evidence(sf, i) || is_rounding(sf, i)
        });
        if safe {
            return None;
        }
        for j in open + 1..close {
            if sf.is_punct(j, "/") && ends_operand(sf, j - 1) {
                return Some(sf.toks[j].line);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::scan_one;

    fn hits(src: &str) -> Vec<usize> {
        scan_one("crates/core/src/load.rs", src)
            .into_iter()
            .filter(|f| f.rule == "fixed-point-div")
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn divide_before_multiply_fires() {
        assert_eq!(hits("let x = a / b * c;\n"), vec![1]);
        assert_eq!(hits("let x = (a / b) * c;\n"), vec![1]);
        assert_eq!(hits("let x = (scaled >> 16) * 100;\n"), vec![1]);
    }

    #[test]
    fn multiply_before_divide_is_the_fix() {
        assert!(hits("let x = a * c / b;\n").is_empty());
        assert!(hits("let x = a / (b * c);\n").is_empty());
    }

    #[test]
    fn float_division_is_exempt() {
        assert!(hits("let x = (a as f64 / b as f64) * c as f64;\n").is_empty());
    }

    #[test]
    fn shift_in_generics_is_not_a_division() {
        assert!(hits("let x: Vec<Vec<u8>> = Vec::with_capacity(4);\n").is_empty());
        assert!(hits("let t = 1 << SHIFT;\n").is_empty());
    }

    #[test]
    fn truncating_cast_of_float_math() {
        // all-integer version trips the divide-before-multiply check
        assert_eq!(
            hits("let s = (prio * load / total * scale) as u64;\n"),
            vec![1]
        );
        // float version trips the truncating-cast check instead
        assert_eq!(
            hits("let s = (prio as f64 * load / total) as u64;\n"),
            vec![1]
        );
        assert!(hits("let s = (prio as f64 * load / total).round() as u64;\n").is_empty());
    }

    #[test]
    fn int_to_int_cast_is_fine() {
        assert!(hits("let s = (a + b) as u64;\n").is_empty());
        assert!(hits("let tag = (7 << SHIFT) | *core as u64;\n").is_empty());
    }

    #[test]
    fn duration_ctor_with_bare_division() {
        assert_eq!(
            hits("Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth)\n"),
            vec![1]
        );
        assert!(hits(
            "Duration::from_nanos(bytes.saturating_mul(1_000_000_000).div_ceil(self.bandwidth))\n"
        )
        .is_empty());
    }

    #[test]
    fn scope_is_core_sched_io() {
        let src = "let x = a / b * c;\n";
        assert!(scan_one("crates/traffic/src/cbr.rs", src).is_empty());
        assert_eq!(scan_one("crates/io/src/device.rs", src).len(), 1);
        assert_eq!(scan_one("crates/sched/src/scheduler.rs", src).len(), 1);
    }

    #[test]
    fn allowlist_with_reason_suppresses() {
        let src = "let x = a / b * c; // nfv-lint: allow(fixed-point-div) -- saturates upstream\n";
        assert!(hits(src).is_empty());
    }
}
