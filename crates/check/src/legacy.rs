//! The original line-lexical scanner, kept compiled and unchanged as a
//! differential oracle for the token-level engine in [`crate::rules`] —
//! the same pattern as the binary heap retained beside the timer wheel
//! (DESIGN.md §10). `tests/lint.rs` asserts that the six rules both
//! engines implement (`hash-map`, `hash-set`, `wall-clock`,
//! `thread-spawn`, `raw-rand`, `float-accum`) produce identical findings
//! over the real workspace and over a seeded hazard corpus.
//!
//! The scanner is deliberately lexical — a hand-rolled comment/string
//! stripper plus substring rules. Its `hot-alloc` implementation (the
//! hand-maintained [`HOT_FNS`] list) is *not* part of the differential:
//! the new engine replaces it with a call-graph derived from parsed fn
//! bodies, precisely because this list goes stale under refactors.

use crate::{Finding, Severity};

/// Files whose per-event / per-packet functions are scanned by the
/// legacy `hot-alloc` rule. A path matches when it equals an entry or
/// starts with a directory entry.
pub const HOT_PATHS: [&str; 3] = [
    "crates/core/src/engine/",
    "crates/platform/src/platform.rs",
    "crates/des/src/queue.rs",
];

/// Function names the legacy `hot-alloc` rule treated as hot. Superseded
/// by the call-graph in `rules::hot_alloc`, which derives this set (and
/// more) from the dispatch roots.
pub const HOT_FNS: [&str; 14] = [
    "handle",
    "do_core_run",
    "do_batch_done",
    "kick",
    "retire_dead",
    "do_traffic",
    "do_rx",
    "do_tx",
    "plan_batch",
    "finish_batch",
    "rx_poll",
    "tx_drain",
    "push",
    "pop_before",
];

/// Is `text[idx..]` preceded/followed by identifier characters? Used for
/// word-boundary matching of tokens like `Instant` or `rand`.
fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Find `needle` in `hay` as a whole word (not embedded in a larger
/// identifier), returning true if present.
fn has_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0 || !is_ident_char(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident_char(bytes[end]);
        if ok_before && ok_after {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

/// Does the line use `rand` as a path root (`rand::...`) or import it
/// (`use rand...`, `extern crate rand`)? `nfv_des::SimRng` and idents
/// merely containing "rand" do not match.
fn uses_rand(code: &str) -> bool {
    if let Some(start) = find_word(code, "rand") {
        let rest = code[start + 4..].trim_start();
        if rest.starts_with("::") {
            return true;
        }
    }
    let t = code.trim_start();
    if let Some(rest) = t.strip_prefix("use ") {
        let rest = rest.trim_start();
        if rest == "rand" || rest.starts_with("rand;") || rest.starts_with("rand::") {
            return true;
        }
    }
    t.starts_with("extern crate rand")
}

/// Float-accumulation heuristic: a `+=` (or `-=`) whose line mentions a
/// float type or a float literal. Type information is out of reach for a
/// lexical pass, so this intentionally over-approximates.
fn float_accum(code: &str) -> bool {
    if !code.contains("+=") && !code.contains("-=") {
        return false;
    }
    if code.contains("f64") || code.contains("f32") {
        return true;
    }
    // float literal: digit '.' digit
    let b = code.as_bytes();
    b.windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

/// One source line after comment/string stripping.
struct CleanLine {
    /// Code with comments and string contents blanked out.
    code: String,
    /// Text of any `//` comment on the line (block comments excluded —
    /// allowlist directives must be line comments).
    comment: String,
}

/// Strip comments and string literals, preserving line structure. String
/// contents are replaced with spaces (the quotes remain), so rules never
/// fire on text inside literals; `//` comment text is captured separately
/// for allowlist parsing.
fn clean_lines(text: &str) -> Vec<CleanLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let b = line.as_bytes();
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match st {
                St::Code => {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        comment.push_str(&line[i..]);
                        break;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(1);
                        code.push(' ');
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Str;
                        code.push('"');
                        i += 1;
                    } else if b[i] == b'r'
                        && i + 1 < b.len()
                        && (b[i + 1] == b'"' || b[i + 1] == b'#')
                        && (i == 0 || !is_ident_char(b[i - 1]))
                    {
                        // raw string r"..." or r#"..."#
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            st = St::RawStr(hashes);
                            code.push_str("r\"");
                            i = j + 1;
                        } else {
                            code.push(b[i] as char);
                            i += 1;
                        }
                    } else if b[i] == b'\'' {
                        // char literal (or lifetime — a lifetime has no
                        // closing quote within a few chars; treat
                        // conservatively: copy it through untouched)
                        if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\\' {
                            code.push_str("' '");
                            i += 3;
                        } else if i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'' {
                            code.push_str("'  '");
                            i += 4;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(b[i] as char);
                        i += 1;
                    }
                }
                St::Block(depth) => {
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == b'"' {
                        let mut j = i + 1;
                        let mut h = 0;
                        while j < b.len() && b[j] == b'#' && h < hashes {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            st = St::Code;
                            code.push('"');
                            i = j;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A string still open at end-of-line: multi-line string literal.
        out.push(CleanLine { code, comment });
    }
    out
}

/// Allocation-in-hot-path heuristic: an allocating constructor or macro
/// on the line. `Vec::with_capacity` is deliberately *not* flagged — the
/// hot-path idiom is to size buffers once at setup and recycle them, and
/// flagging it would punish exactly that fix.
fn hot_alloc(code: &str) -> bool {
    code.contains("Box::new")
        || code.contains("Vec::new")
        || code.contains("vec!")
        || code.contains("format!")
}

/// Which lines are inside a hot function of a hot file (see [`HOT_PATHS`]
/// / [`HOT_FNS`]): the scope of the `hot-alloc` rule. Brace-depth
/// tracking from the `fn` line — nested closures/blocks stay hot until
/// the function's own closing brace.
fn hot_fn_mask(lines: &[CleanLine], path_label: &str) -> Vec<bool> {
    let p = path_label.replace('\\', "/");
    let in_scope = HOT_PATHS
        .iter()
        .any(|h| p == *h || (h.ends_with('/') && p.starts_with(h)));
    let mut mask = vec![false; lines.len()];
    if !in_scope {
        return mask;
    }
    let mut depth: i64 = 0;
    // Depth the enclosing hot fn was declared at; None when outside one.
    let mut hot_at: Option<i64> = None;
    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        if hot_at.is_none()
            && HOT_FNS.iter().any(|f| {
                find_word(code, f).is_some_and(|pos| {
                    code[..pos].trim_end().ends_with("fn")
                        && code[pos + f.len()..].trim_start().starts_with(['(', '<'])
                })
            })
        {
            hot_at = Some(depth);
        }
        if hot_at.is_some() {
            mask[i] = true;
        }
        for ch in code.bytes() {
            match ch {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if hot_at.is_some_and(|d| depth <= d) {
                        hot_at = None;
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

/// Which lines are inside `#[cfg(test)]`-gated items. Returns a bool per
/// line; `true` means "skip, this is test code".
fn test_code_mask(lines: &[CleanLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Skip the gated item: everything up to the end of the first
            // brace group (or the first `;` seen before any brace opens).
            // Scanning starts on the attribute line itself so a one-line
            // `#[cfg(test)] mod t {}` is handled; the attribute's own
            // parentheses don't affect brace depth.
            mask[i] = true;
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for ch in lines[j].code.bytes() {
                    match ch {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        b';' if !opened && depth == 0 => {
                            // item without a body, e.g. a gated `use`
                            depth = -1;
                        }
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break;
                    }
                    if depth < 0 {
                        break;
                    }
                }
                if (opened && depth == 0) || depth < 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Allowlist directives on a comment: `nfv-lint: allow(rule-a, rule-b)`.
fn allowed_rules(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Some(pos) = comment.find("nfv-lint:") else {
        return out;
    };
    let rest = &comment[pos + "nfv-lint:".len()..];
    let rest = rest.trim_start();
    if let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split_once(')').map(|(a, _)| a))
    {
        for rule in args.split(',') {
            out.push(rule.trim().to_string());
        }
    }
    out
}

/// Scan one file's source text with the legacy engine. `path_label` is
/// used in findings and to decide path-scoped rules (`float-accum` only
/// applies under `crates/sched` and `crates/core`).
pub fn scan_source(path_label: &str, text: &str) -> Vec<Finding> {
    let lines = clean_lines(text);
    let mask = test_code_mask(&lines);
    let hot_mask = hot_fn_mask(&lines, path_label);
    let float_scope = {
        let p = path_label.replace('\\', "/");
        p.contains("crates/sched/") || p.contains("crates/core/")
    };
    let raw_lines: Vec<&str> = text.lines().collect();
    let mut findings = Vec::new();
    for (idx, cl) in lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let mut hits: Vec<(&'static str, Severity)> = Vec::new();
        let code = &cl.code;
        if has_word(code, "HashMap") {
            hits.push(("hash-map", Severity::Deny));
        }
        if has_word(code, "HashSet") {
            hits.push(("hash-set", Severity::Deny));
        }
        if has_word(code, "Instant") || has_word(code, "SystemTime") {
            hits.push(("wall-clock", Severity::Deny));
        }
        if code.contains("thread::spawn")
            || code.contains("thread::scope")
            || code.contains("thread::Builder")
        {
            hits.push(("thread-spawn", Severity::Deny));
        }
        if uses_rand(code) {
            hits.push(("raw-rand", Severity::Deny));
        }
        if float_scope && float_accum(code) {
            hits.push(("float-accum", Severity::Warn));
        }
        if hot_mask[idx] && hot_alloc(code) {
            hits.push(("hot-alloc", Severity::Warn));
        }
        if hits.is_empty() {
            continue;
        }
        // Allowlist: same line or the line above.
        let mut allowed = allowed_rules(&cl.comment);
        if idx > 0 {
            allowed.extend(allowed_rules(&lines[idx - 1].comment));
        }
        for (rule, severity) in hits {
            if allowed.iter().any(|a| a == rule) {
                continue;
            }
            findings.push(Finding {
                path: path_label.to_string(),
                line: idx + 1,
                rule,
                severity,
                snippet: raw_lines.get(idx).unwrap_or(&"").trim().to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        scan_source("crates/x/src/lib.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_hash_containers() {
        assert_eq!(
            rules_of("use std::collections::HashMap;\n"),
            vec!["hash-map"]
        );
        assert_eq!(
            rules_of("let s: HashSet<u32> = HashSet::new();\n"),
            vec!["hash-set"]
        );
    }

    #[test]
    fn flags_wall_clocks_and_threads() {
        assert_eq!(rules_of("let t = Instant::now();\n"), vec!["wall-clock"]);
        assert_eq!(
            rules_of("let t = std::time::SystemTime::now();\n"),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_of("std::thread::spawn(|| {});\n"),
            vec!["thread-spawn"]
        );
    }

    #[test]
    fn flags_scoped_and_builder_threads() {
        assert_eq!(
            rules_of("std::thread::scope(|s| { s.spawn(|| {}); });\n"),
            vec!["thread-spawn"]
        );
        assert_eq!(
            rules_of("let h = thread::Builder::new().spawn(f);\n"),
            vec!["thread-spawn"]
        );
        // Harness-side concurrency (the bench suite runner) opts out with
        // the standard annotation; the sim crates never should.
        let allowed = "std::thread::scope(|s| { // nfv-lint: allow(thread-spawn)\n";
        assert!(rules_of(allowed).is_empty());
    }

    #[test]
    fn flags_raw_rand_but_not_simrng() {
        assert_eq!(rules_of("use rand::Rng;\n"), vec!["raw-rand"]);
        assert_eq!(
            rules_of("let x = rand::random::<u8>();\n"),
            vec!["raw-rand"]
        );
        assert!(rules_of("use nfv_des::SimRng;\n").is_empty());
        assert!(rules_of("let operand = 3; operand_use(operand);\n").is_empty());
    }

    #[test]
    fn float_accum_only_in_scoped_crates() {
        let src = "acc += x as f64;\n";
        assert_eq!(
            scan_source("crates/core/src/load.rs", src)
                .first()
                .map(|f| f.rule),
            Some("float-accum")
        );
        assert_eq!(
            scan_source("crates/sched/src/scheduler.rs", "w += 0.5;\n").len(),
            1
        );
        assert!(scan_source("crates/traffic/src/cbr.rs", src).is_empty());
    }

    #[test]
    fn integer_accumulation_not_flagged() {
        assert!(rules_of("count += 1;\n").is_empty());
        assert!(scan_source("crates/core/src/x.rs", "count += 1;\n").is_empty());
    }

    #[test]
    fn comments_and_strings_are_ignored() {
        assert!(rules_of("// a HashMap would be wrong here\n").is_empty());
        assert!(rules_of("/* Instant::now() */ let x = 1;\n").is_empty());
        assert!(rules_of("let s = \"HashMap Instant rand::\";\n").is_empty());
        assert!(rules_of("let s = r#\"thread::spawn\"#;\n").is_empty());
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(rules_of("struct InstantReplay; let MyHashMapLike = 1;\n").is_empty());
    }

    #[test]
    fn allowlist_same_line_and_line_above() {
        let same = "use std::collections::HashMap; // nfv-lint: allow(hash-map)\n";
        assert!(rules_of(same).is_empty());
        let above = "// nfv-lint: allow(wall-clock)\nlet t = Instant::now();\n";
        assert!(rules_of(above).is_empty());
        // allowing one rule does not silence another
        let partial = "// nfv-lint: allow(hash-map)\nlet t = Instant::now();\n";
        assert_eq!(rules_of(partial), vec!["wall-clock"]);
        // multiple rules in one directive
        let multi =
            "use std::collections::{HashMap, HashSet}; // nfv-lint: allow(hash-map, hash-set)\n";
        assert!(rules_of(multi).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _: HashMap<u8, u8> = HashMap::new(); }
}
";
        assert!(rules_of(src).is_empty());
        // but code before the module is still scanned
        let src2 = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(rules_of(src2), vec!["hash-map"]);
    }

    #[test]
    fn cfg_test_single_item_without_body() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nuse std::time::Instant;\n";
        assert_eq!(rules_of(src), vec!["wall-clock"]);
    }

    #[test]
    fn finding_carries_location_and_snippet() {
        let f = &scan_source("crates/x/src/a.rs", "\nlet t = Instant::now();\n")[0];
        assert_eq!(f.line, 2);
        assert_eq!(f.path, "crates/x/src/a.rs");
        assert_eq!(f.snippet, "let t = Instant::now();");
        assert_eq!(f.severity, Severity::Deny);
    }

    #[test]
    fn hot_alloc_flags_allocs_in_hot_fns_only() {
        let src = "\
impl Simulation {
    fn handle(&mut self) {
        let v = Vec::new();
        let b = Box::new(1);
    }
    fn cold_setup(&mut self) {
        let v: Vec<u32> = Vec::new();
    }
}
";
        let rules: Vec<_> = scan_source("crates/core/src/engine/mod.rs", src)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect();
        assert_eq!(rules, vec![(3, "hot-alloc"), (4, "hot-alloc")]);
        // Same code outside the hot-path file set: no findings.
        assert!(scan_source("crates/traffic/src/cbr.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_macros_and_allowlist() {
        let src = "\
fn rx_poll(&mut self) {
    let msg = format!(\"x\");
    // nfv-lint: allow(hot-alloc) -- teardown only
    let v = vec![1, 2];
}
";
        let rules: Vec<_> = scan_source("crates/platform/src/platform.rs", src)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect();
        assert_eq!(rules, vec![(2, "hot-alloc")]);
    }

    #[test]
    fn hot_alloc_respects_fn_word_boundary_and_capacity() {
        // `push_back` is not `push`; with_capacity is the fix, not a hit.
        let src = "\
fn push_back_helper(&mut self) {
    let v = Vec::new();
}
fn push(&mut self) {
    let mut v = Vec::with_capacity(8);
    v.push(1);
}
";
        assert!(scan_source("crates/des/src/queue.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_ends_at_fn_close() {
        let src = "\
impl Q {
    fn pop_before(&mut self) {
        if x { let y = vec![0]; }
    }
    fn other(&mut self) {
        let v = vec![1];
    }
}
";
        let rules: Vec<_> = scan_source("crates/des/src/queue.rs", src)
            .into_iter()
            .map(|f| f.line)
            .collect();
        assert_eq!(rules, vec![3]);
    }
}
