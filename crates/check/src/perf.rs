//! Perf-gate logic behind the `nfv-perfdiff` binary.
//!
//! The CI `perf-gate` job regenerates `BENCH_timings.json` with
//! `nfv-bench --quick` and compares each cell's wall clock against the
//! committed `BENCH_baseline.json`. Wall clock on shared CI runners is
//! noisy, so the gate is deliberately coarse:
//!
//! - a **cell** fails only when it is both over `cell_tol` (default
//!   25 %) slower than baseline *and* more than `abs_floor_ms` (default
//!   25 ms) slower in absolute terms — sub-floor cells jitter by whole
//!   multiples;
//! - the **suite** (sum over cells present in both files) fails past
//!   `suite_tol` (default 10 %), catching death-by-a-thousand-cuts that
//!   no single cell trips;
//! - cells can be allowlisted (`--allow fig1/cell` or an allowlist file)
//!   when a slowdown is understood and accepted; allowlisted cells still
//!   count toward the suite total so the allowlist cannot hide a global
//!   regression.
//!
//! Baselines are medians of ≥3 runs (`--write-baseline`), which drops
//! one-off scheduling spikes without averaging them in. The current
//! side takes the per-cell *minimum* over ≥2 runs (repeat `--current`),
//! because wall-clock noise is one-sided: a spike can only inflate a
//! cell, never deflate it, so the min estimates true cost while a real
//! regression — which slows every run — still fails the gate.

use crate::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One cell's wall-clock measurement, keyed `experiment/cell`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// `experiment/cell` key (unique within a suite run).
    pub key: String,
    /// Wall-clock milliseconds for the cell.
    pub wall_ms: f64,
}

/// Extract per-cell timings from a `BENCH_timings.json` /
/// `BENCH_baseline.json` document.
///
/// A suite may legitimately run the same `experiment/cell` more than
/// once (the tuning experiment revisits `high80/low60` in both of its
/// sweeps), so duplicate keys are folded into one entry by *summing*
/// wall clocks, in first-occurrence order — the gate tracks the total
/// time a cell name costs per suite run.
pub fn parse_timings(doc: &str) -> Result<Vec<CellTiming>, String> {
    let v = json::parse(doc).map_err(|e| format!("invalid JSON: {e}"))?;
    let cells = v
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing \"cells\" array")?;
    let mut out: Vec<CellTiming> = Vec::with_capacity(cells.len());
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, c) in cells.iter().enumerate() {
        let exp = c
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i}: missing \"experiment\""))?;
        let cell = c
            .get("cell")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i}: missing \"cell\""))?;
        let wall = c
            .get("wall_ms")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("cell {i}: missing \"wall_ms\""))?;
        let key = format!("{exp}/{cell}");
        match seen.get(&key) {
            Some(&at) => out[at].wall_ms += wall,
            None => {
                seen.insert(key.clone(), out.len());
                out.push(CellTiming { key, wall_ms: wall });
            }
        }
    }
    Ok(out)
}

/// Thresholds for [`compare`].
#[derive(Debug, Clone)]
pub struct Gate {
    /// Per-cell relative slowdown that fails the gate (0.25 = +25 %).
    pub cell_tol: f64,
    /// Whole-suite relative slowdown that fails the gate (0.10 = +10 %).
    pub suite_tol: f64,
    /// Per-cell absolute floor in ms: cells slower by less than this never
    /// fail individually, whatever the ratio (timer-resolution noise).
    pub abs_floor_ms: f64,
}

impl Default for Gate {
    fn default() -> Self {
        Gate {
            cell_tol: 0.25,
            suite_tol: 0.10,
            abs_floor_ms: 25.0,
        }
    }
}

/// Verdict for one cell present in both baseline and current run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within thresholds (or faster).
    Ok,
    /// Over thresholds but explicitly allowlisted.
    Allowed,
    /// Over thresholds: fails the gate.
    Regressed,
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// `experiment/cell` key.
    pub key: String,
    /// Baseline wall-clock ms.
    pub base_ms: f64,
    /// Current wall-clock ms.
    pub cur_ms: f64,
    /// Gate verdict for this cell.
    pub verdict: Verdict,
}

impl Row {
    /// Relative change, +0.25 = 25 % slower.
    pub fn delta(&self) -> f64 {
        if self.base_ms <= 0.0 {
            0.0
        } else {
            self.cur_ms / self.base_ms - 1.0
        }
    }
}

/// Full result of a baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Diff {
    /// Per-cell rows, in current-run order.
    pub rows: Vec<Row>,
    /// Cells only in the baseline (removed/renamed — informational).
    pub missing: Vec<String>,
    /// Cells only in the current run (new — informational).
    pub added: Vec<String>,
    /// Suite totals over cells present in both files.
    pub suite_base_ms: f64,
    /// Current-run suite total over the same matched cells.
    pub suite_cur_ms: f64,
    /// Did the matched-cell suite total regress past `suite_tol`?
    pub suite_regressed: bool,
    /// Thresholds the comparison ran with.
    pub gate: Gate,
}

impl Diff {
    /// Does the gate fail overall?
    pub fn failed(&self) -> bool {
        self.suite_regressed || self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// Relative suite change over matched cells.
    pub fn suite_delta(&self) -> f64 {
        if self.suite_base_ms <= 0.0 {
            0.0
        } else {
            self.suite_cur_ms / self.suite_base_ms - 1.0
        }
    }
}

/// Compare a current run against the baseline under `gate` thresholds.
/// `allow` holds allowlisted `experiment/cell` keys.
pub fn compare(
    baseline: &[CellTiming],
    current: &[CellTiming],
    allow: &BTreeSet<String>,
    gate: Gate,
) -> Diff {
    let base: BTreeMap<&str, f64> = baseline
        .iter()
        .map(|c| (c.key.as_str(), c.wall_ms))
        .collect();
    let cur_keys: BTreeSet<&str> = current.iter().map(|c| c.key.as_str()).collect();

    let mut rows = Vec::new();
    let mut suite_base = 0.0;
    let mut suite_cur = 0.0;
    for c in current {
        let Some(&b) = base.get(c.key.as_str()) else {
            continue;
        };
        suite_base += b;
        suite_cur += c.wall_ms;
        let over = c.wall_ms > b * (1.0 + gate.cell_tol) && c.wall_ms - b > gate.abs_floor_ms;
        let verdict = if !over {
            Verdict::Ok
        } else if allow.contains(&c.key) {
            Verdict::Allowed
        } else {
            Verdict::Regressed
        };
        rows.push(Row {
            key: c.key.clone(),
            base_ms: b,
            cur_ms: c.wall_ms,
            verdict,
        });
    }

    let missing = baseline
        .iter()
        .filter(|c| !cur_keys.contains(c.key.as_str()))
        .map(|c| c.key.clone())
        .collect();
    let added = current
        .iter()
        .filter(|c| !base.contains_key(c.key.as_str()))
        .map(|c| c.key.clone())
        .collect();

    let suite_regressed = suite_base > 0.0 && suite_cur > suite_base * (1.0 + gate.suite_tol);
    Diff {
        rows,
        missing,
        added,
        suite_base_ms: suite_base,
        suite_cur_ms: suite_cur,
        suite_regressed,
        gate,
    }
}

/// Fold ≥1 current runs into per-cell *minimum* wall clocks, in the
/// first run's cell order. Wall-clock noise on shared runners is
/// one-sided — interference only ever makes a cell slower — so the min
/// of two runs is a far better estimate of true cost than either run
/// alone, and a real regression slows every run, so it survives the
/// fold. The CI gate runs the quick suite twice and min-folds; a single
/// run's one-off scheduling spikes would otherwise fail honest PRs.
/// Errs when runs disagree on the cell set.
pub fn fold_min(runs: &[Vec<CellTiming>]) -> Result<Vec<CellTiming>, String> {
    let first = runs.first().ok_or("no runs to fold")?;
    let mut by_key: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for run in runs {
        if run.len() != first.len() {
            return Err(format!(
                "runs disagree on cell count ({} vs {})",
                run.len(),
                first.len()
            ));
        }
        for c in run {
            let e = by_key.entry(c.key.as_str()).or_insert((f64::INFINITY, 0));
            e.0 = e.0.min(c.wall_ms);
            e.1 += 1;
        }
    }
    for (k, (_, n)) in &by_key {
        if *n != runs.len() {
            return Err(format!("cell {k:?} missing from some runs"));
        }
    }
    Ok(first
        .iter()
        .map(|c| CellTiming {
            key: c.key.clone(),
            wall_ms: by_key[c.key.as_str()].0,
        })
        .collect())
}

/// Median of a non-empty slice (even length: mean of the middle pair).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("wall clocks are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Fold ≥1 runs into a baseline document: per-cell median wall clock, in
/// the first run's cell order. Errs when runs disagree on the cell set.
pub fn baseline_json(runs: &[Vec<CellTiming>]) -> Result<String, String> {
    let first = runs.first().ok_or("no runs to fold")?;
    let mut by_key: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for run in runs {
        if run.len() != first.len() {
            return Err(format!(
                "runs disagree on cell count ({} vs {})",
                run.len(),
                first.len()
            ));
        }
        for c in run {
            by_key.entry(c.key.as_str()).or_default().push(c.wall_ms);
        }
    }
    for (k, v) in &by_key {
        if v.len() != runs.len() {
            return Err(format!("cell {k:?} missing from some runs"));
        }
    }
    let mut s = String::from("{\"cells\":[");
    for (i, c) in first.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let med = median(by_key.get_mut(c.key.as_str()).expect("checked above"));
        let (exp, cell) = c.key.split_once('/').ok_or("malformed cell key")?;
        let _ = write!(
            s,
            "{{\"experiment\":{exp:?},\"cell\":{cell:?},\"wall_ms\":{med:.3}}}"
        );
    }
    let _ = writeln!(s, "],\"runs\":{}}}", runs.len());
    Ok(s)
}

/// Render a comparison as a markdown report (the CI artifact).
pub fn render_report(diff: &Diff) -> String {
    let mut s = String::from("# nfv-perfdiff report\n\n");
    let _ = writeln!(
        s,
        "Gate: per-cell > {:.0}% (and > {:.0} ms absolute), suite > {:.0}%.\n",
        diff.gate.cell_tol * 100.0,
        diff.gate.abs_floor_ms,
        diff.gate.suite_tol * 100.0
    );
    let _ = writeln!(
        s,
        "**Suite (matched cells): {:.1} ms → {:.1} ms ({:+.1}%) — {}**\n",
        diff.suite_base_ms,
        diff.suite_cur_ms,
        diff.suite_delta() * 100.0,
        if diff.suite_regressed { "FAIL" } else { "ok" }
    );
    s.push_str("| cell | baseline (ms) | current (ms) | delta | verdict |\n");
    s.push_str("|---|---:|---:|---:|---|\n");
    for r in &diff.rows {
        let v = match r.verdict {
            Verdict::Ok => "ok",
            Verdict::Allowed => "allowed",
            Verdict::Regressed => "**FAIL**",
        };
        let _ = writeln!(
            s,
            "| {} | {:.1} | {:.1} | {:+.1}% | {} |",
            r.key,
            r.base_ms,
            r.cur_ms,
            r.delta() * 100.0,
            v
        );
    }
    if !diff.added.is_empty() {
        let _ = writeln!(
            s,
            "\nNew cells (not in baseline): {}",
            diff.added.join(", ")
        );
    }
    if !diff.missing.is_empty() {
        let _ = writeln!(
            s,
            "\nBaseline cells missing from this run: {}",
            diff.missing.join(", ")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(v: &[(&str, f64)]) -> Vec<CellTiming> {
        v.iter()
            .map(|(k, ms)| CellTiming {
                key: k.to_string(),
                wall_ms: *ms,
            })
            .collect()
    }

    #[test]
    fn duplicate_cell_keys_fold_by_summing() {
        // tuning/high80/low60 runs in both sweeps of the tuning
        // experiment: the gate sees one entry with the summed wall clock.
        let doc = r#"{"cells":[
            {"experiment":"tuning","cell":"high80/low60","wall_ms":250.0},
            {"experiment":"tuning","cell":"high90/low70","wall_ms":100.0},
            {"experiment":"tuning","cell":"high80/low60","wall_ms":180.0}],
            "total_wall_ms":530.0}"#;
        let t = parse_timings(doc).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].key, "tuning/high80/low60");
        assert_eq!(t[0].wall_ms, 430.0);
        assert_eq!(t[1].key, "tuning/high90/low70");
    }

    #[test]
    fn parses_real_timings_shape() {
        let doc = r#"{"cells":[
            {"experiment":"fig1","cell":"a","sim_secs":0.3,"wall_ms":100.5,
             "queue":{"pushes":1,"pops":1,"stale_pops":0,"cascades":0,
                      "cascaded_entries":0,"allocs":1,"max_len":1,
                      "pops_per_sim_sec":3.3,"allocs_per_sim_sec":3.3}},
            {"experiment":"fig1","cell":"b","sim_secs":0.3,"wall_ms":50.0,
             "queue":{}}],
            "total_wall_ms":150.5,"jobs":4,"suite_wall_ms":151.0}"#;
        let t = parse_timings(doc).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].key, "fig1/a");
        assert_eq!(t[0].wall_ms, 100.5);
    }

    #[test]
    fn identical_runs_pass() {
        let base = cells(&[("fig1/a", 100.0), ("fig1/b", 200.0)]);
        let d = compare(&base, &base, &BTreeSet::new(), Gate::default());
        assert!(!d.failed());
        assert!(d.rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn synthetic_2x_slowdown_fails() {
        // The acceptance scenario: double every cell's wall clock and the
        // gate must fail on both the cells and the suite total.
        let base = cells(&[("fig1/a", 100.0), ("fig7/b", 300.0)]);
        let cur = cells(&[("fig1/a", 200.0), ("fig7/b", 600.0)]);
        let d = compare(&base, &cur, &BTreeSet::new(), Gate::default());
        assert!(d.failed());
        assert!(d.suite_regressed);
        assert_eq!(
            d.rows
                .iter()
                .filter(|r| r.verdict == Verdict::Regressed)
                .count(),
            2
        );
    }

    #[test]
    fn small_cells_never_fail_individually() {
        // 3x slower but only 10 ms absolute: under the floor, suite-only.
        let base = cells(&[("fig1/tiny", 5.0)]);
        let cur = cells(&[("fig1/tiny", 15.0)]);
        let d = compare(&base, &cur, &BTreeSet::new(), Gate::default());
        assert_eq!(d.rows[0].verdict, Verdict::Ok);
        // Suite threshold still sees it (10/5 = 200% over).
        assert!(d.suite_regressed);
    }

    #[test]
    fn allowlist_spares_cell_but_not_suite() {
        let base = cells(&[("fig1/a", 100.0), ("fig1/b", 1000.0)]);
        let cur = cells(&[("fig1/a", 200.0), ("fig1/b", 1000.0)]);
        let allow: BTreeSet<String> = ["fig1/a".to_string()].into();
        let d = compare(&base, &cur, &allow, Gate::default());
        assert_eq!(d.rows[0].verdict, Verdict::Allowed);
        // 1100/1100 base vs 1200 cur = +9.1% < 10%: suite passes here,
        // but the allowed cell's time stayed in the suite sums.
        assert!(!d.suite_regressed);
        assert!(!d.failed());
        assert_eq!(d.suite_cur_ms, 1200.0);
    }

    #[test]
    fn added_and_missing_cells_are_informational() {
        let base = cells(&[("fig1/a", 100.0), ("fig1/gone", 50.0)]);
        let cur = cells(&[("fig1/a", 100.0), ("fig1/new", 75.0)]);
        let d = compare(&base, &cur, &BTreeSet::new(), Gate::default());
        assert!(!d.failed());
        assert_eq!(d.missing, vec!["fig1/gone".to_string()]);
        assert_eq!(d.added, vec!["fig1/new".to_string()]);
        // Suite sums only cover the matched cell.
        assert_eq!(d.suite_base_ms, 100.0);
        assert_eq!(d.suite_cur_ms, 100.0);
    }

    #[test]
    fn baseline_is_per_cell_median() {
        let runs = vec![
            cells(&[("fig1/a", 100.0), ("fig1/b", 10.0)]),
            cells(&[("fig1/a", 500.0), ("fig1/b", 12.0)]), // spike run
            cells(&[("fig1/a", 110.0), ("fig1/b", 11.0)]),
        ];
        let doc = baseline_json(&runs).unwrap();
        let t = parse_timings(&doc).unwrap();
        assert_eq!(t[0].wall_ms, 110.0); // median, not mean: spike dropped
        assert_eq!(t[1].wall_ms, 11.0);
    }

    #[test]
    fn min_fold_drops_one_sided_spikes() {
        // A 3x spike in one run survives neither the fold nor the gate,
        // but a genuine regression present in both runs still fails.
        let base = cells(&[("fig1/a", 100.0), ("fig1/b", 100.0)]);
        let runs = vec![
            cells(&[("fig1/a", 310.0), ("fig1/b", 210.0)]), // a spiked
            cells(&[("fig1/a", 101.0), ("fig1/b", 205.0)]), // b slow again
        ];
        let cur = fold_min(&runs).unwrap();
        assert_eq!(cur[0].wall_ms, 101.0);
        assert_eq!(cur[1].wall_ms, 205.0);
        let d = compare(&base, &cur, &BTreeSet::new(), Gate::default());
        assert_eq!(d.rows[0].verdict, Verdict::Ok);
        assert_eq!(d.rows[1].verdict, Verdict::Regressed);
    }

    #[test]
    fn min_fold_rejects_mismatched_runs() {
        let runs = vec![cells(&[("fig1/a", 1.0)]), cells(&[("fig1/b", 1.0)])];
        assert!(fold_min(&runs).is_err());
    }

    #[test]
    fn baseline_rejects_mismatched_runs() {
        let runs = vec![cells(&[("fig1/a", 1.0)]), cells(&[("fig1/b", 1.0)])];
        assert!(baseline_json(&runs).is_err());
    }

    #[test]
    fn report_mentions_failures() {
        let base = cells(&[("fig1/a", 100.0)]);
        let cur = cells(&[("fig1/a", 250.0)]);
        let d = compare(&base, &cur, &BTreeSet::new(), Gate::default());
        let md = render_report(&d);
        assert!(md.contains("fig1/a"));
        assert!(md.contains("**FAIL**"));
    }
}
