//! `nfv-lint`: the static half of the workspace's determinism tooling.
//!
//! The simulator's contract is bit-for-bit reproducibility given a seed
//! (see CLAUDE.md and the runtime sanitizer in `nfv_des::sanitizer`).
//! This crate enforces the source-level side of that contract — plus the
//! layering and fixed-point-arithmetic conventions the NFVnice policy
//! code depends on.
//!
//! The engine is syntax-aware but dependency-free: the workspace builds
//! offline, so `syn` is not available. Instead [`lexer`] produces spanned
//! tokens (comments, strings, raw strings and char literals handled in
//! one place), [`parse`] recovers the item structure rules need (fn/impl
//! boundaries, `#[cfg(test)]` regions, allowlist directives), and the
//! [`rules`] registry runs each [`rules::Rule`] over the parsed
//! workspace. The previous line-lexical scanner survives unchanged in
//! [`legacy`] as a differential oracle (the same pattern as the binary
//! heap kept beside the timer wheel): `tests/lint.rs` asserts both
//! engines produce identical findings for the six rules they share.
//!
//! Rules (see `crates/check/README.md` for the full table):
//!
//! | id                | severity | flags                                   |
//! |-------------------|----------|-----------------------------------------|
//! | `hash-map`        | deny     | `HashMap` (iteration order is seeded per-instance) |
//! | `hash-set`        | deny     | `HashSet` (same)                        |
//! | `wall-clock`      | deny     | `Instant` / `SystemTime` in sim code    |
//! | `thread-spawn`    | deny     | `thread::{spawn,scope,Builder}` (the sim is single-threaded) |
//! | `raw-rand`        | deny     | `rand::` paths / `use rand` (randomness goes through `SimRng`) |
//! | `float-accum`     | warn     | `+=`/`-=` on float-looking values in `crates/{core,sched}` |
//! | `hot-alloc`       | warn     | allocation in functions reachable from the event-dispatch roots (call-graph, not a hand-kept list) |
//! | `fixed-point-div` | warn     | divide-before-multiply / truncating casts in policy arithmetic |
//! | `layering`        | deny     | `dyn Trait` in `crates/{core,sched}` (closures, not trait objects) |
//! | `ev-exhaustive`   | deny     | an `Ev` variant missing its `ev_tag` arm, `handle` arm, or sanitizer hook |
//! | `stale-allow`     | warn     | an allow comment that suppresses nothing, names an unknown rule, or lacks a `-- <reason>` |
//!
//! Escape hatch: `// nfv-lint: allow(<rule>) -- <reason>` on the finding
//! line or the line above. The reason is mandatory; `stale-allow` flags
//! directives without one, and directives that no longer match anything.
//!
//! Test code is exempt: `#[cfg(test)]` items are skipped, as are
//! `tests/` and `benches/` directories and the in-tree harness shims
//! (`crates/check`, `crates/criterion`, `crates/proptest`).

pub mod json;
pub mod legacy;
pub mod lexer;
pub mod parse;
pub mod perf;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint severity. Both levels fail the run (CI treats any finding as a
/// violation); `Warn` marks heuristic rules whose findings more often
/// deserve an allowlist comment than a rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Heuristic rule; allowlisting with a justification is expected.
    Warn,
    /// Hard determinism / layering hazard.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as given to the scanner (workspace-relative for the binary).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (`hash-map`, `wall-clock`, ...).
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// The offending source line, trimmed (or a rule-supplied message for
    /// workspace-level findings like a missing dispatch root).
    pub snippet: String,
}

/// All rule ids, in reporting order. `stale-allow` findings reference
/// this list: an allow directive naming anything else is itself flagged.
pub const RULES: [&str; 11] = [
    "hash-map",
    "hash-set",
    "wall-clock",
    "thread-spawn",
    "raw-rand",
    "float-accum",
    "hot-alloc",
    "fixed-point-div",
    "layering",
    "ev-exhaustive",
    "stale-allow",
];

/// Directory names never scanned (test/bench code and build output).
pub const SKIP_DIRS: [&str; 5] = ["target", ".git", "tests", "benches", ".github"];

/// Workspace crates exempt from scanning: this crate itself and the
/// offline harness shims, whose whole purpose involves wall clocks.
pub const EXEMPT_CRATES: [&str; 3] = ["crates/check", "crates/criterion", "crates/proptest"];

fn is_exempt(rel: &str) -> bool {
    let rel = rel.replace('\\', "/");
    EXEMPT_CRATES
        .iter()
        .any(|c| rel == *c || rel.starts_with(&format!("{c}/")))
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') || is_exempt(&rel) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collect every non-exempt `.rs` file under `root` as
/// `(root-relative path, contents)`, in sorted path order (both engines
/// and the differential test consume this list).
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let text = fs::read_to_string(&f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, text));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Scan every non-exempt `.rs` file under `root` with the full rule set.
/// Paths in findings are root-relative; output order is deterministic
/// (`(path, line, rule)`).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(rules::scan_sources(collect_files(root)?))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report: `{"findings": [...], "total": N}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.rule,
            f.severity,
            json_escape(&f.snippet)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"total\": {}\n}}\n", findings.len()));
    s
}

/// GitHub Actions workflow-command annotations, one line per finding
/// (`::error`/`::warning` with inline file/line), so findings land on the
/// PR diff. Newlines inside messages are percent-encoded per the
/// workflow-command spec (snippets are single lines, but be safe).
pub fn to_github(findings: &[Finding]) -> String {
    let esc = |s: &str| {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    };
    let mut s = String::new();
    for f in findings {
        let level = match f.severity {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        };
        s.push_str(&format!(
            "::{level} file={},line={},title=nfv-lint {}::{}\n",
            esc(&f.path),
            f.line,
            f.rule,
            esc(&f.snippet)
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed() {
        let findings = rules::scan_sources(vec![(
            "a.rs".to_string(),
            "use rand::Rng; // \"quote\"\n".to_string(),
        )]);
        let j = to_json(&findings);
        assert!(j.contains("\"rule\": \"raw-rand\""));
        assert!(j.contains("\"total\": 1"));
        let empty = to_json(&[]);
        assert!(empty.contains("\"total\": 0"));
    }

    #[test]
    fn github_format_annotates_by_severity() {
        let findings = vec![
            Finding {
                path: "crates/x/src/a.rs".into(),
                line: 3,
                rule: "hash-map",
                severity: Severity::Deny,
                snippet: "use std::collections::HashMap;".into(),
            },
            Finding {
                path: "crates/x/src/b.rs".into(),
                line: 7,
                rule: "hot-alloc",
                severity: Severity::Warn,
                snippet: "let v = Vec::new();".into(),
            },
        ];
        let g = to_github(&findings);
        assert!(g.contains("::error file=crates/x/src/a.rs,line=3,title=nfv-lint hash-map::"));
        assert!(g.contains("::warning file=crates/x/src/b.rs,line=7,title=nfv-lint hot-alloc::"));
    }
}
