//! A dependency-free Rust tokenizer producing spanned tokens.
//!
//! One place handles every lexical shape that used to be re-derived per
//! heuristic in the line-oriented scanner: line and block comments
//! (nested), string literals with escapes, raw strings with arbitrary
//! hash fences, byte/char literals, lifetimes, numeric literals with
//! suffixes, and multi-character operators. Rules downstream operate on
//! the token stream and never see comment or literal *contents*.
//!
//! The lexer is intentionally forgiving: the input is workspace source
//! that `rustc` already accepts, so malformed edge cases degrade to
//! single-character punctuation tokens instead of errors.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including `_` and raw `r#ident`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (including suffixed forms like `1_000u64`).
    Int,
    /// Float literal (`1.5`, `1e9`, `2.0f64`).
    Float,
    /// String, raw string, byte string or char literal. Contents opaque.
    Literal,
    /// Punctuation / operator, max-munched (`::`, `>>=`, `..=`, ...).
    Punct,
}

/// One spanned token. `lo..hi` are byte offsets into the source text;
/// `line` is the 1-based line the token starts on.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: Kind,
    pub lo: u32,
    pub hi: u32,
    pub line: u32,
}

/// A line comment, with the 1-based line it sits on and the byte span of
/// its text (including the leading `//`). Block comments are skipped
/// entirely: allowlist directives must be line comments, same as the
/// previous engine.
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    pub line: u32,
    pub lo: u32,
    pub hi: u32,
}

/// Lexer output: code tokens plus line comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Multi-character operators, longest first (max munch).
const PUNCTS: [&str; 25] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..", ".",
];

/// Tokenize `text`. Never fails; unrecognized bytes become 1-byte puncts.
pub fn lex(text: &str) -> Lexed {
    let b = text.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let push = |out: &mut Lexed, kind, lo: usize, hi: usize, line: u32| {
        out.toks.push(Tok {
            kind,
            lo: lo as u32,
            hi: hi as u32,
            line,
        });
    };
    while i < b.len() {
        let c = b[i];
        // whitespace
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let lo = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                lo: lo as u32,
                hi: i as u32,
            });
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // raw strings r"..." / r#"..."# and raw idents r#ident; byte
        // strings b"..." / br#"..."#.
        if (c == b'r' || c == b'b')
            && (out.toks.last().is_none_or(|t| {
                t.kind != Kind::Ident || t.hi as usize != i // not glued to an ident
            }))
        {
            let mut j = i;
            let mut is_raw = false;
            if b[j] == b'b' {
                j += 1;
                if j < b.len() && b[j] == b'r' {
                    is_raw = true;
                    j += 1;
                }
            } else {
                is_raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while is_raw && j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if is_raw && j < b.len() && b[j] == b'"' {
                // raw (byte) string
                let lo = i;
                let start_line = line;
                j += 1;
                'raw: while j < b.len() {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'"' {
                        let mut h = 0usize;
                        let mut k = j + 1;
                        while k < b.len() && b[k] == b'#' && h < hashes {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            j = k;
                            break 'raw;
                        }
                        j += 1;
                    } else {
                        j += 1;
                    }
                }
                push(&mut out, Kind::Literal, lo, j, start_line);
                i = j;
                continue;
            }
            if c == b'r' && hashes == 1 && j < b.len() && is_ident_start(b[j]) {
                // raw identifier r#ident
                let lo = i;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                push(&mut out, Kind::Ident, lo, j, line);
                i = j;
                continue;
            }
            if c == b'b' && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
                // cooked byte string / byte char: fall through to the
                // string/char scanners below from the quote.
                let lo = i;
                let quote = b[i + 1];
                let start_line = line;
                let mut k = i + 2;
                while k < b.len() {
                    if b[k] == b'\\' {
                        // an escaped newline (line continuation) still
                        // advances the line counter
                        if k + 1 < b.len() && b[k + 1] == b'\n' {
                            line += 1;
                        }
                        k += 2;
                    } else if b[k] == quote {
                        k += 1;
                        break;
                    } else {
                        if b[k] == b'\n' {
                            line += 1;
                        }
                        k += 1;
                    }
                }
                push(&mut out, Kind::Literal, lo, k, start_line);
                i = k;
                continue;
            }
            // plain ident starting with r/b
        }
        // identifiers / keywords
        if is_ident_start(c) {
            let lo = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            push(&mut out, Kind::Ident, lo, i, line);
            continue;
        }
        // numbers
        if c.is_ascii_digit() {
            let lo = i;
            let mut kind = Kind::Int;
            if c == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
                i += 2;
                while i < b.len() && (is_ident_char(b[i])) {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // fractional part: '.' followed by a digit (not `..` or a
                // method call like `1.max(2)`)
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    kind = Kind::Float;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                } else if i + 1 < b.len()
                    && b[i] == b'.'
                    && !is_ident_start(b[i + 1])
                    && b[i + 1] != b'.'
                {
                    // trailing-dot float `1.`
                    kind = Kind::Float;
                    i += 1;
                }
                // exponent
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        kind = Kind::Float;
                        i = j;
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                }
                // suffix (u64, f32, ...): a float suffix flips the kind
                let suf_lo = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                if text[suf_lo..i].starts_with('f') {
                    kind = Kind::Float;
                }
            }
            push(&mut out, kind, lo, i, line);
            continue;
        }
        // strings
        if c == b'"' {
            let lo = i;
            let start_line = line;
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    // `\<newline>` line continuations must keep the line
                    // counter honest or every later token drifts
                    if i + 1 < b.len() && b[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut out, Kind::Literal, lo, i, start_line);
            continue;
        }
        // char literal or lifetime
        if c == b'\'' {
            // lifetime: 'ident not followed by a closing quote
            if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                if j >= b.len() || b[j] != b'\'' {
                    push(&mut out, Kind::Lifetime, i, j, line);
                    i = j;
                    continue;
                }
            }
            // char literal: 'x', '\n', '\u{1F600}'
            let lo = i;
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    if j + 1 < b.len() && b[j + 1] == b'\n' {
                        line += 1;
                    }
                    j += 2;
                } else if b[j] == b'\'' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            push(&mut out, Kind::Literal, lo, j, line);
            i = j;
            continue;
        }
        // punctuation, max munch
        let rest = &text[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                push(&mut out, Kind::Punct, i, i + p.len(), line);
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            push(&mut out, Kind::Punct, i, i + 1, line);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .map(|t| src[t.lo as usize..t.hi as usize].to_string())
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            texts("let x = a::b(1_000u64) >> 2;"),
            ["let", "x", "=", "a", "::", "b", "(", "1_000u64", ")", ">>", "2", ";"]
        );
    }

    #[test]
    fn float_kinds() {
        let l = lex("1.5 1e9 2.0f64 3f32 7 0x1f 1.max(2)");
        let kinds: Vec<Kind> = l.toks.iter().map(|t| t.kind).take(6).collect();
        assert_eq!(
            kinds,
            [
                Kind::Float,
                Kind::Float,
                Kind::Float,
                Kind::Float,
                Kind::Int,
                Kind::Int
            ]
        );
        // `1.max(2)` lexes the 1 as an Int, then `.` `max` ...
        let texts = texts("1.max(2)");
        assert_eq!(texts[0], "1");
        assert_eq!(texts[1], ".");
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let src = r##"let s = "HashMap Instant"; let c = '"'; let r = r#"thread::spawn"#;"##;
        let l = lex(src);
        assert!(l
            .toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .all(|t| !&src[t.lo as usize..t.hi as usize].contains("HashMap")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == Kind::Literal).count(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            2
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == Kind::Literal).count(), 1);
    }

    #[test]
    fn comments_captured_with_lines() {
        let src = "let a = 1; // nfv-lint: allow(x)\n/* block\nspanning */ let b = 2;\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        let b_tok = l
            .toks
            .iter()
            .find(|t| &src[t.lo as usize..t.hi as usize] == "b")
            .unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fin");
        assert_eq!(l.toks.len(), 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let x = r##\"quote \"# inside\"## + 1;";
        let l = lex(src);
        assert_eq!(l.toks.iter().filter(|t| t.kind == Kind::Literal).count(), 1);
        assert!(texts(src).contains(&"1".to_string()));
    }

    #[test]
    fn multiline_string_counts_lines() {
        let src = "let s = \"a\nb\";\nlet t = 1;\n";
        let l = lex(src);
        let t_tok = l
            .toks
            .iter()
            .find(|t| &src[t.lo as usize..t.hi as usize] == "t")
            .unwrap();
        assert_eq!(t_tok.line, 3);
    }

    #[test]
    fn escaped_newline_in_string_counts_lines() {
        // rustfmt splits long format! strings with `\`-continuations;
        // the skipped newline must still bump the line counter.
        let src = "let s = \"a \\\n b\";\nlet t = 1;\n";
        let l = lex(src);
        let t_tok = l
            .toks
            .iter()
            .find(|t| &src[t.lo as usize..t.hi as usize] == "t")
            .unwrap();
        assert_eq!(t_tok.line, 3);
    }

    #[test]
    fn max_munch_operators() {
        assert_eq!(
            texts("a >>= b ..= c .. d"),
            ["a", ">>=", "b", "..=", "c", "..", "d"]
        );
    }

    #[test]
    fn raw_ident_and_byte_string() {
        assert_eq!(
            texts("r#fn b\"bytes\" rand"),
            ["r#fn", "b\"bytes\"", "rand"]
        );
        let l = lex("b\"x\" br#\"y\"#");
        assert!(l.toks.iter().all(|t| t.kind == Kind::Literal));
    }
}
