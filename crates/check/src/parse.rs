//! Lightweight item parser over the token stream: function and impl
//! boundaries, `#[cfg(test)]` regions, and allowlist directives.
//!
//! This is not a Rust grammar — it recognizes exactly the structure the
//! rules need: where functions begin and end (brace matching), which
//! `impl` type a function belongs to (for qualified call resolution),
//! which lines are test-gated, and what each `// nfv-lint: allow(...)`
//! comment says. Everything else in the token stream passes through
//! untouched for the rules to inspect.

use crate::lexer::{self, Kind, Tok};

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug)]
pub struct FnDef {
    /// Function name (raw-ident prefix stripped).
    pub name: String,
    /// Enclosing `impl` type, when inside an impl block. For
    /// `impl Trait for Type` this is `Type` — the type the method is
    /// callable on.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token indices of the body's `{` and its matching `}`; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One `// nfv-lint: allow(rule-a, rule-b) -- reason` comment.
#[derive(Debug)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Rule names as written (trimmed, not validated).
    pub rules: Vec<String>,
    /// A non-empty `-- <reason>` trailer follows the closing paren.
    pub has_reason: bool,
}

/// A parsed source file: tokens plus the structural facts rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Path label, `/`-normalized, as reported in findings.
    pub path: String,
    pub text: String,
    pub toks: Vec<Tok>,
    /// For each `{`/`}` token, the index of its partner.
    pub brace_match: Vec<Option<usize>>,
    pub fns: Vec<FnDef>,
    pub directives: Vec<Directive>,
    /// `test_lines[line - 1]` — the line is inside a `#[cfg(test)]` item
    /// (including the attribute line itself).
    pub test_lines: Vec<bool>,
    /// Byte offset of each line start, for snippet extraction.
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Token text.
    pub fn tok_text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.text[t.lo as usize..t.hi as usize]
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        self.toks[i].kind == Kind::Punct && self.tok_text(i) == p
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.toks[i].kind == Kind::Ident && self.tok_text(i) == name
    }

    /// The raw text of a 1-based line, trimmed (finding snippets).
    pub fn line_snippet(&self, line: u32) -> &str {
        let i = (line as usize - 1).min(self.line_starts.len().saturating_sub(1));
        let lo = self.line_starts[i];
        let hi = self
            .line_starts
            .get(i + 1)
            .map_or(self.text.len(), |&n| n - 1);
        self.text[lo..hi.max(lo)].trim_matches(['\r', ' ', '\t'])
    }

    /// Is this 1-based line inside a `#[cfg(test)]` region?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// Parse `text`. Never fails: this runs on source `rustc` accepts, and
    /// anything unrecognized is simply not structural.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lexed = lexer::lex(text);
        let toks = lexed.toks;
        let n_lines = text.lines().count().max(1);

        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }

        // Brace partners.
        let mut brace_match = vec![None; toks.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Punct {
                continue;
            }
            match &text[t.lo as usize..t.hi as usize] {
                "{" => stack.push(i),
                "}" => {
                    if let Some(open) = stack.pop() {
                        brace_match[open] = Some(i);
                        brace_match[i] = Some(open);
                    }
                }
                _ => {}
            }
        }

        let mut sf = SourceFile {
            path: path.replace('\\', "/"),
            text: text.to_string(),
            toks,
            brace_match,
            fns: Vec::new(),
            directives: Vec::new(),
            test_lines: vec![false; n_lines],
            line_starts,
        };

        sf.mark_test_regions();
        let impls = sf.find_impls();
        sf.find_fns(&impls);

        for c in &lexed.comments {
            if let Some(d) = parse_directive(&sf.text[c.lo as usize..c.hi as usize], c.line) {
                sf.directives.push(d);
            }
        }
        sf
    }

    /// Mark every line covered by a `#[cfg(test)]`-gated item, from the
    /// attribute line through the item's closing `}` (or its `;` when the
    /// item has no body). Matches the legacy scanner's masking exactly,
    /// but structurally: the attribute is the token run `# [ cfg ( test ) ]`.
    fn mark_test_regions(&mut self) {
        let n = self.toks.len();
        let mut i = 0;
        while i < n {
            if !(self.is_punct(i, "#")
                && i + 6 < n
                && self.is_punct(i + 1, "[")
                && self.is_ident(i + 2, "cfg")
                && self.is_punct(i + 3, "(")
                && self.is_ident(i + 4, "test")
                && self.is_punct(i + 5, ")")
                && self.is_punct(i + 6, "]"))
            {
                i += 1;
                continue;
            }
            let start_line = self.toks[i].line;
            let mut end_line = start_line;
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i + 7;
            while j < n {
                let t = self.toks[j];
                end_line = t.line;
                if t.kind == Kind::Punct {
                    match self.tok_text(j) {
                        "{" => {
                            depth += 1;
                            opened = true;
                        }
                        "}" => {
                            depth -= 1;
                            if opened && depth == 0 {
                                break;
                            }
                        }
                        ";" if !opened && depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            for l in start_line..=end_line {
                if let Some(slot) = self.test_lines.get_mut(l as usize - 1) {
                    *slot = true;
                }
            }
            i = j + 1;
        }
    }

    /// Locate `impl` blocks and the type name their methods hang off:
    /// the last path ident before the body at angle-bracket depth 0,
    /// taken after `for` when present (`impl Trait for Type`), stopping
    /// at a `where` clause.
    fn find_impls(&self) -> Vec<(usize, usize, String)> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if !self.is_ident(i, "impl") {
                continue;
            }
            let mut angle: i64 = 0;
            let mut name: Option<String> = None;
            let mut j = i + 1;
            while j < self.toks.len() {
                let t = self.toks[j];
                let s = self.tok_text(j);
                if t.kind == Kind::Punct {
                    match s {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "<<" => angle += 2,
                        ">>" => angle -= 2,
                        "{" if angle <= 0 => break,
                        ";" => break, // `impl Foo;`-like degenerate; bail
                        _ => {}
                    }
                } else if t.kind == Kind::Ident && angle <= 0 {
                    match s {
                        "for" => name = None,
                        "where" => {
                            // the type is settled; skip to the body
                            while j < self.toks.len() && !self.is_punct(j, "{") {
                                j += 1;
                            }
                            break;
                        }
                        "dyn" | "mut" | "const" | "unsafe" => {}
                        _ => name = Some(s.to_string()),
                    }
                }
                j += 1;
            }
            let (Some(name), true) = (name, j < self.toks.len()) else {
                continue;
            };
            if let Some(close) = self.brace_match[j] {
                out.push((j, close, name));
            }
        }
        out
    }

    fn find_fns(&mut self, impls: &[(usize, usize, String)]) {
        let n = self.toks.len();
        let mut fns = Vec::new();
        for i in 0..n {
            if !self.is_ident(i, "fn") || i + 1 >= n || self.toks[i + 1].kind != Kind::Ident {
                continue;
            }
            let name = self
                .tok_text(i + 1)
                .strip_prefix("r#")
                .unwrap_or(self.tok_text(i + 1))
                .to_string();
            // Find the body `{` (or a terminating `;`) at paren/bracket
            // depth 0 — `;` inside `[u8; 2]` or a default expression must
            // not end the signature.
            let mut depth: i64 = 0;
            let mut body = None;
            let mut j = i + 2;
            while j < n {
                if self.toks[j].kind == Kind::Punct {
                    match self.tok_text(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            if let Some(close) = self.brace_match[j] {
                                body = Some((j, close));
                            }
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            // Innermost enclosing impl block.
            let qual = impls
                .iter()
                .filter(|&&(open, close, _)| open < i && i < close)
                .min_by_key(|&&(open, close, _)| close - open)
                .map(|(_, _, name)| name.clone());
            let line = self.toks[i].line;
            fns.push(FnDef {
                name,
                qual,
                line,
                fn_tok: i,
                body,
                is_test: self.is_test_line(line),
            });
        }
        self.fns = fns;
    }
}

/// Parse one line comment into a directive, if it carries one. The
/// accepted form is the legacy scanner's: `nfv-lint: allow(a, b)` with an
/// optional ` -- reason` trailer that the new engine requires.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let pos = comment.find("nfv-lint:")?;
    let rest = comment[pos + "nfv-lint:".len()..].trim_start();
    let args = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split_once(')'))?;
    let (inner, trailer) = args;
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let t = trailer.trim_start();
    let has_reason = t.strip_prefix("--").is_some_and(|r| !r.trim().is_empty());
    Some(Directive {
        line,
        rules,
        has_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn finds_fns_with_quals() {
        let sf = parse(
            "fn free() {}\n\
             impl Foo {\n    fn method(&self) { nested(); }\n}\n\
             impl fmt::Display for Bar {\n    fn fmt(&self) {}\n}\n\
             impl<T: Clone> Gen<T> {\n    fn g(&self) {}\n}\n",
        );
        let got: Vec<(String, Option<String>)> = sf
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qual.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Foo".into())),
                ("fmt".into(), Some("Bar".into())),
                ("g".into(), Some("Gen".into())),
            ]
        );
    }

    #[test]
    fn fn_body_spans_and_bodyless() {
        let sf = parse("trait T {\n    fn sig(&self) -> [u8; 2];\n    fn with(&self) {}\n}\n");
        assert_eq!(sf.fns.len(), 2);
        assert!(sf.fns[0].body.is_none());
        let (open, close) = sf.fns[1].body.unwrap();
        assert!(sf.is_punct(open, "{") && sf.is_punct(close, "}"));
    }

    #[test]
    fn cfg_test_region_masks_lines() {
        let sf =
            parse("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        assert!(!sf.is_test_line(1));
        assert!(sf.is_test_line(2));
        assert!(sf.is_test_line(3));
        assert!(sf.is_test_line(4));
        assert!(sf.is_test_line(5));
        assert!(!sf.is_test_line(6));
        assert!(sf.fns.iter().any(|f| f.name == "t" && f.is_test));
        assert!(sf.fns.iter().any(|f| f.name == "real" && !f.is_test));
    }

    #[test]
    fn cfg_test_bodyless_item() {
        let sf = parse("#[cfg(test)]\nuse foo::Bar;\nuse baz::Qux;\n");
        assert!(sf.is_test_line(1) && sf.is_test_line(2));
        assert!(!sf.is_test_line(3));
    }

    #[test]
    fn cfg_any_is_not_cfg_test() {
        let sf = parse("#[cfg(any(test, feature = \"x\"))]\nfn f() {}\n");
        assert!(!sf.is_test_line(1) && !sf.is_test_line(2));
    }

    #[test]
    fn directives_parse_with_reasons() {
        let sf = parse(
            "let a = 1; // nfv-lint: allow(hash-map) -- fixture\n\
             // nfv-lint: allow(wall-clock, thread-spawn)\n\
             // plain comment\n",
        );
        assert_eq!(sf.directives.len(), 2);
        assert_eq!(sf.directives[0].rules, vec!["hash-map"]);
        assert!(sf.directives[0].has_reason);
        assert_eq!(sf.directives[1].rules, vec!["wall-clock", "thread-spawn"]);
        assert!(!sf.directives[1].has_reason);
    }

    #[test]
    fn snippets_are_trimmed() {
        let sf = parse("fn a() {\n    let x = 1;\n}\n");
        assert_eq!(sf.line_snippet(2), "let x = 1;");
    }

    #[test]
    fn where_clause_does_not_pollute_impl_name() {
        let sf = parse("impl<T> Holder<T> where T: Clone {\n    fn h(&self) {}\n}\n");
        assert_eq!(sf.fns[0].qual.as_deref(), Some("Holder"));
    }
}
