//! `nfv-perfdiff` binary: the CI wall-clock perf gate.
//!
//! Compare mode (default):
//!
//! ```text
//! nfv-perfdiff --baseline BENCH_baseline.json \
//!     --current run1/BENCH_timings.json [--current run2/...]... \
//!     [--allow <experiment/cell>]... [--allowlist <file>] \
//!     [--cell-tol 0.25] [--suite-tol 0.10] [--abs-floor-ms 25] \
//!     [--report perfdiff.md]
//! ```
//!
//! Exits 1 when any non-allowlisted cell regresses past the per-cell
//! threshold or the matched-cell suite total regresses past the suite
//! threshold; writes a markdown report for the CI artifact with
//! `--report`. The allowlist file holds one `experiment/cell` key per
//! line (`#` comments and blank lines ignored). Repeat `--current` to
//! min-fold several runs before comparing (see [`perf::fold_min`]):
//! wall-clock spikes are one-sided, so the CI gate measures the suite
//! twice and gates on the per-cell minimum.
//!
//! Baseline mode:
//!
//! ```text
//! nfv-perfdiff --write-baseline out.json run1.json run2.json run3.json
//! ```
//!
//! folds ≥1 timing files (per-cell **median**) into a committed baseline.
//! Refresh it with three quick runs whenever the suite's cell set or its
//! expected performance changes — see CLAUDE.md.

use nfv_check::perf::{self, Gate};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nfv-perfdiff --baseline <file> --current <file>... \
         [--allow <key>]... [--allowlist <file>]\n       \
         [--cell-tol F] [--suite-tol F] [--abs-floor-ms F] [--report <file>]\n  \
         or:  nfv-perfdiff --write-baseline <out> <run.json>..."
    );
    ExitCode::from(2)
}

fn read_timings(path: &str) -> Result<Vec<perf::CellTiming>, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    perf::parse_timings(&doc).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }

    // Baseline-write mode.
    if let Some(pos) = argv.iter().position(|a| a == "--write-baseline") {
        let Some(out) = argv.get(pos + 1) else {
            return usage();
        };
        let run_paths: Vec<&String> = argv[pos + 2..].iter().collect();
        if run_paths.is_empty() {
            eprintln!("nfv-perfdiff: --write-baseline needs at least one run file");
            return ExitCode::from(2);
        }
        let mut runs = Vec::new();
        for p in &run_paths {
            match read_timings(p) {
                Ok(t) => runs.push(t),
                Err(e) => {
                    eprintln!("nfv-perfdiff: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        match perf::baseline_json(&runs) {
            Ok(doc) => {
                if let Err(e) = std::fs::write(out, doc) {
                    eprintln!("nfv-perfdiff: write {out}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!(
                    "nfv-perfdiff: wrote {out} (median of {} run(s), {} cells)",
                    runs.len(),
                    runs[0].len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("nfv-perfdiff: {e}");
                ExitCode::from(2)
            }
        }
    } else {
        compare_mode(&argv)
    }
}

fn compare_mode(argv: &[String]) -> ExitCode {
    let mut baseline = None;
    let mut current: Vec<String> = Vec::new();
    let mut report = None;
    let mut allow: BTreeSet<String> = BTreeSet::new();
    let mut gate = Gate::default();

    let mut args = argv.iter();
    while let Some(a) = args.next() {
        let mut val = |name: &str| match args.next() {
            Some(v) => Ok(v.clone()),
            None => {
                eprintln!("nfv-perfdiff: {name} requires a value");
                Err(())
            }
        };
        let parsed = (|| match a.as_str() {
            "--baseline" => {
                baseline = Some(val("--baseline")?);
                Ok(())
            }
            "--current" => {
                current.push(val("--current")?);
                Ok(())
            }
            "--report" => {
                report = Some(val("--report")?);
                Ok(())
            }
            "--allow" => {
                allow.insert(val("--allow")?);
                Ok(())
            }
            "--allowlist" => {
                let path = val("--allowlist")?;
                let body = std::fs::read_to_string(&path).map_err(|e| {
                    eprintln!("nfv-perfdiff: {path}: {e}");
                })?;
                for line in body.lines() {
                    let line = line.trim();
                    if !line.is_empty() && !line.starts_with('#') {
                        allow.insert(line.to_string());
                    }
                }
                Ok(())
            }
            "--cell-tol" => {
                gate.cell_tol = parse_f64(&val("--cell-tol")?, "--cell-tol")?;
                Ok(())
            }
            "--suite-tol" => {
                gate.suite_tol = parse_f64(&val("--suite-tol")?, "--suite-tol")?;
                Ok(())
            }
            "--abs-floor-ms" => {
                gate.abs_floor_ms = parse_f64(&val("--abs-floor-ms")?, "--abs-floor-ms")?;
                Ok(())
            }
            other => {
                eprintln!("nfv-perfdiff: unknown argument {other:?}");
                Err(())
            }
        })();
        if parsed.is_err() {
            return ExitCode::from(2);
        }
    }
    let Some(base_path) = baseline else {
        return usage();
    };
    if current.is_empty() {
        return usage();
    }

    let base = match read_timings(&base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("nfv-perfdiff: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cur_runs = Vec::new();
    for p in &current {
        match read_timings(p) {
            Ok(t) => cur_runs.push(t),
            Err(e) => {
                eprintln!("nfv-perfdiff: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let cur = match perf::fold_min(&cur_runs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("nfv-perfdiff: {e}");
            return ExitCode::from(2);
        }
    };

    let diff = perf::compare(&base, &cur, &allow, gate);
    let md = perf::render_report(&diff);
    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, &md) {
            eprintln!("nfv-perfdiff: write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    // Human summary on stderr, like nfv-lint.
    for r in &diff.rows {
        let tag = match r.verdict {
            perf::Verdict::Ok => continue,
            perf::Verdict::Allowed => "allowed",
            perf::Verdict::Regressed => "FAIL",
        };
        eprintln!(
            "{tag}: {}: {:.1} ms -> {:.1} ms ({:+.1}%)",
            r.key,
            r.base_ms,
            r.cur_ms,
            r.delta() * 100.0
        );
    }
    eprintln!(
        "nfv-perfdiff: suite {:.1} ms -> {:.1} ms ({:+.1}%), {} cell(s) compared, {} regressed{}",
        diff.suite_base_ms,
        diff.suite_cur_ms,
        diff.suite_delta() * 100.0,
        diff.rows.len(),
        diff.rows
            .iter()
            .filter(|r| r.verdict == perf::Verdict::Regressed)
            .count(),
        if diff.suite_regressed {
            " [suite FAIL]"
        } else {
            ""
        }
    );

    if diff.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_f64(s: &str, name: &str) -> Result<f64, ()> {
    s.parse().map_err(|_| {
        eprintln!("nfv-perfdiff: {name}: not a number: {s:?}");
    })
}
