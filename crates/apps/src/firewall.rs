//! Stateless 5-tuple firewall: an ordered rule list with a default policy.

use nfv_des::SimTime;
use nfv_pkt::{Packet, Proto};
use nfv_platform::{NfAction, PacketHandler};

/// One match field: either a wildcard or a concrete value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Match<T: Copy + Eq> {
    /// Matches anything.
    Any,
    /// Matches exactly this value.
    Is(T),
}

impl<T: Copy + Eq> Match<T> {
    fn hits(self, v: T) -> bool {
        match self {
            Match::Any => true,
            Match::Is(x) => x == v,
        }
    }
}

/// An IPv4 prefix match (`addr/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    /// Network address.
    pub addr: u32,
    /// Prefix length in bits, 0..=32 (0 = match everything).
    pub len: u8,
}

impl Prefix {
    /// The match-all prefix.
    pub const ANY: Prefix = Prefix { addr: 0, len: 0 };

    /// Construct, normalizing host bits away.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Does `ip` fall inside this prefix?
    pub fn contains(self, ip: u32) -> bool {
        ip & Self::mask(self.len) == self.addr
    }
}

/// Verdict of a matching rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Pass the packet.
    Allow,
    /// Drop the packet.
    Deny,
}

/// One firewall rule. Rules are evaluated in insertion order; the first
/// match wins.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Source prefix.
    pub src: Prefix,
    /// Destination prefix.
    pub dst: Prefix,
    /// Source port match.
    pub src_port: Match<u16>,
    /// Destination port match.
    pub dst_port: Match<u16>,
    /// Protocol match.
    pub proto: Match<Proto>,
    /// Action on match.
    pub verdict: Verdict,
}

impl Rule {
    /// A rule matching everything, with the given verdict.
    pub fn any(verdict: Verdict) -> Self {
        Rule {
            src: Prefix::ANY,
            dst: Prefix::ANY,
            src_port: Match::Any,
            dst_port: Match::Any,
            proto: Match::Any,
            verdict,
        }
    }

    fn hits(&self, t: &nfv_pkt::FiveTuple) -> bool {
        self.src.contains(t.src_ip)
            && self.dst.contains(t.dst_ip)
            && self.src_port.hits(t.src_port)
            && self.dst_port.hits(t.dst_port)
            && self.proto.hits(t.proto)
    }
}

/// The firewall NF.
#[derive(Debug)]
pub struct Firewall {
    rules: Vec<Rule>,
    default: Verdict,
    /// Packets allowed through.
    pub allowed: u64,
    /// Packets denied.
    pub denied: u64,
}

impl Firewall {
    /// A firewall with an ordered rule list and a default verdict for
    /// packets matching no rule.
    pub fn new(rules: Vec<Rule>, default: Verdict) -> Self {
        Firewall {
            rules,
            default,
            allowed: 0,
            denied: 0,
        }
    }

    /// Evaluate a tuple without side effects.
    pub fn classify(&self, t: &nfv_pkt::FiveTuple) -> Verdict {
        self.rules
            .iter()
            .find(|r| r.hits(t))
            .map(|r| r.verdict)
            .unwrap_or(self.default)
    }
}

impl PacketHandler for Firewall {
    fn handle(&mut self, pkt: &mut Packet, _now: SimTime) -> NfAction {
        match self.classify(&pkt.tuple) {
            Verdict::Allow => {
                self.allowed += 1;
                NfAction::Forward
            }
            Verdict::Deny => {
                self.denied += 1;
                NfAction::Drop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::{ChainId, FiveTuple, FlowId};

    fn pkt(tuple: FiveTuple) -> Packet {
        let mut p = Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO);
        p.tuple = tuple;
        p
    }

    #[test]
    fn prefix_matching() {
        let p = Prefix::new(0x0a000000, 8); // 10.0.0.0/8
        assert!(p.contains(0x0a123456));
        assert!(!p.contains(0x0b000001));
        assert!(Prefix::ANY.contains(0xffffffff));
        // host bits normalized away
        assert_eq!(Prefix::new(0x0a0000ff, 24).addr, 0x0a000000);
    }

    #[test]
    fn first_match_wins() {
        let specific_deny = Rule {
            src: Prefix::new(0x0a000000, 8),
            ..Rule::any(Verdict::Deny)
        };
        let fw = Firewall::new(
            vec![specific_deny, Rule::any(Verdict::Allow)],
            Verdict::Deny,
        );
        let inside = FiveTuple {
            src_ip: 0x0a010101,
            dst_ip: 1,
            src_port: 5,
            dst_port: 6,
            proto: Proto::Udp,
        };
        let outside = FiveTuple {
            src_ip: 0x0b010101,
            ..inside
        };
        assert_eq!(fw.classify(&inside), Verdict::Deny);
        assert_eq!(fw.classify(&outside), Verdict::Allow);
    }

    #[test]
    fn default_verdict_applies() {
        let only_tcp = Rule {
            proto: Match::Is(Proto::Tcp),
            ..Rule::any(Verdict::Allow)
        };
        let fw = Firewall::new(vec![only_tcp], Verdict::Deny);
        assert_eq!(
            fw.classify(&FiveTuple::synthetic(1, Proto::Udp)),
            Verdict::Deny
        );
        assert_eq!(
            fw.classify(&FiveTuple::synthetic(1, Proto::Tcp)),
            Verdict::Allow
        );
    }

    #[test]
    fn handler_counts_and_acts() {
        let mut fw = Firewall::new(
            vec![Rule {
                dst_port: Match::Is(9),
                ..Rule::any(Verdict::Deny)
            }],
            Verdict::Allow,
        );
        let mut blocked = pkt(FiveTuple::synthetic(1, Proto::Udp)); // dst_port 9
        let mut ok = pkt(FiveTuple {
            dst_port: 80,
            ..FiveTuple::synthetic(1, Proto::Udp)
        });
        assert_eq!(fw.handle(&mut blocked, SimTime::ZERO), NfAction::Drop);
        assert_eq!(fw.handle(&mut ok, SimTime::ZERO), NfAction::Forward);
        assert_eq!(fw.denied, 1);
        assert_eq!(fw.allowed, 1);
    }

    #[test]
    fn port_range_style_rules_via_multiple_entries() {
        let rules: Vec<Rule> = (1000..1003u16)
            .map(|p| Rule {
                dst_port: Match::Is(p),
                ..Rule::any(Verdict::Allow)
            })
            .collect();
        let fw = Firewall::new(rules, Verdict::Deny);
        let mut t = FiveTuple::synthetic(0, Proto::Udp);
        t.dst_port = 1001;
        assert_eq!(fw.classify(&t), Verdict::Allow);
        t.dst_port = 2000;
        assert_eq!(fw.classify(&t), Verdict::Deny);
    }
}
