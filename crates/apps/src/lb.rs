//! L4 load balancer: hashes each flow to a backend and rewrites the
//! destination address, with flow affinity (same flow → same backend).

use nfv_des::SimTime;
use nfv_pkt::{FiveTuple, Packet};
use nfv_platform::{NfAction, PacketHandler};

/// Hash-based L4 load balancer.
#[derive(Debug)]
pub struct LoadBalancer {
    backends: Vec<u32>,
    /// Packets steered per backend.
    pub per_backend: Vec<u64>,
}

impl LoadBalancer {
    /// A balancer over the given backend addresses.
    pub fn new(backends: Vec<u32>) -> Self {
        assert!(!backends.is_empty(), "need at least one backend");
        LoadBalancer {
            per_backend: vec![0; backends.len()],
            backends,
        }
    }

    /// FNV-1a over the flow-identifying fields (stable across packets of
    /// a flow — affinity).
    fn hash(t: &FiveTuple) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        eat(t.src_ip as u64);
        eat(t.dst_ip as u64);
        eat(t.src_port as u64);
        eat(t.dst_port as u64);
        h
    }

    /// Which backend index a tuple maps to.
    pub fn backend_for(&self, t: &FiveTuple) -> usize {
        (Self::hash(t) % self.backends.len() as u64) as usize
    }
}

impl PacketHandler for LoadBalancer {
    fn handle(&mut self, pkt: &mut Packet, _now: SimTime) -> NfAction {
        let idx = self.backend_for(&pkt.tuple);
        pkt.tuple.dst_ip = self.backends[idx];
        self.per_backend[idx] += 1;
        NfAction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::{ChainId, FlowId, Proto};

    fn pkt(n: u32) -> Packet {
        let mut p = Packet::new(FlowId(n), ChainId(0), 64, SimTime::ZERO);
        p.tuple = FiveTuple::synthetic(n, Proto::Udp);
        p
    }

    #[test]
    fn flow_affinity() {
        let mut lb = LoadBalancer::new(vec![1, 2, 3]);
        let mut a1 = pkt(5);
        let mut a2 = pkt(5);
        lb.handle(&mut a1, SimTime::ZERO);
        lb.handle(&mut a2, SimTime::ZERO);
        assert_eq!(a1.tuple.dst_ip, a2.tuple.dst_ip);
    }

    #[test]
    fn spreads_many_flows_roughly_evenly() {
        let mut lb = LoadBalancer::new(vec![10, 20, 30, 40]);
        for n in 0..4000 {
            lb.handle(&mut pkt(n), SimTime::ZERO);
        }
        for (&count, _) in lb.per_backend.iter().zip(0..) {
            assert!(
                (700..1300).contains(&(count as i64)),
                "imbalanced: {:?}",
                lb.per_backend
            );
        }
    }

    #[test]
    fn rewrites_destination_to_backend() {
        let mut lb = LoadBalancer::new(vec![42]);
        let mut p = pkt(1);
        lb.handle(&mut p, SimTime::ZERO);
        assert_eq!(p.tuple.dst_ip, 42);
        assert_eq!(lb.per_backend[0], 1);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn rejects_empty_backends() {
        LoadBalancer::new(vec![]);
    }
}
