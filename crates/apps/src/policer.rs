//! Token-bucket rate limiter (traffic policer).

use nfv_des::{Duration, SimTime};
use nfv_pkt::Packet;
use nfv_platform::{NfAction, PacketHandler};

/// A classic token bucket: `rate_pps` tokens per second accrue up to
/// `burst` tokens; each conforming packet spends one token, excess traffic
/// is dropped.
#[derive(Debug)]
pub struct TokenBucket {
    rate_pps: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
    /// Conforming packets.
    pub conformed: u64,
    /// Dropped (out-of-profile) packets.
    pub policed: u64,
}

impl TokenBucket {
    /// A bucket with the given sustained rate and burst size (packets).
    pub fn new(rate_pps: f64, burst: u32) -> Self {
        assert!(rate_pps > 0.0);
        assert!(burst >= 1);
        TokenBucket {
            rate_pps,
            burst: burst as f64,
            tokens: burst as f64,
            last: SimTime::ZERO,
            conformed: 0,
            policed: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last);
        if dt > Duration::ZERO {
            self.tokens = (self.tokens + self.rate_pps * dt.as_secs_f64()).min(self.burst);
            self.last = now;
        }
    }

    /// Offer one packet at `now`; true if it conforms.
    pub fn admit(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.conformed += 1;
            true
        } else {
            self.policed += 1;
            false
        }
    }
}

impl PacketHandler for TokenBucket {
    fn handle(&mut self, _pkt: &mut Packet, now: SimTime) -> NfAction {
        if self.admit(now) {
            NfAction::Forward
        } else {
            NfAction::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_police() {
        let mut tb = TokenBucket::new(1000.0, 10);
        let now = SimTime::ZERO;
        for _ in 0..10 {
            assert!(tb.admit(now));
        }
        assert!(!tb.admit(now), "burst exhausted");
        assert_eq!(tb.conformed, 10);
        assert_eq!(tb.policed, 1);
    }

    #[test]
    fn refills_at_configured_rate() {
        let mut tb = TokenBucket::new(1000.0, 10);
        for _ in 0..10 {
            tb.admit(SimTime::ZERO);
        }
        // 5 ms later: 5 tokens accrued
        let later = SimTime::from_millis(5);
        for _ in 0..5 {
            assert!(tb.admit(later));
        }
        assert!(!tb.admit(later));
    }

    #[test]
    fn never_exceeds_burst() {
        let mut tb = TokenBucket::new(1_000_000.0, 4);
        // long idle: bucket caps at burst
        let t = SimTime::from_secs(10);
        for _ in 0..4 {
            assert!(tb.admit(t));
        }
        assert!(!tb.admit(t));
    }

    #[test]
    fn long_run_rate_is_bounded() {
        let mut tb = TokenBucket::new(10_000.0, 16);
        let mut admitted = 0u64;
        // offer 100k packets over 1 second (100 per 1 ms tick)
        for ms in 0..1000u64 {
            let now = SimTime::from_millis(ms);
            for _ in 0..100 {
                if tb.admit(now) {
                    admitted += 1;
                }
            }
        }
        // ~10k admitted (±burst)
        assert!((9_900..=10_100).contains(&admitted), "admitted {admitted}");
    }
}
