//! Passive monitoring NFs: per-flow counters and 1-in-N packet sampling.

use nfv_des::SimTime;
use nfv_pkt::{FiveTuple, Packet};
use nfv_platform::{NfAction, PacketHandler};
use std::collections::BTreeMap;

/// Per-flow packet/byte accounting (the paper's "basic monitor NF").
#[derive(Debug, Default)]
pub struct FlowMonitor {
    counts: BTreeMap<FiveTuple, (u64, u64)>,
}

impl FlowMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// (packets, bytes) recorded for a tuple.
    pub fn stats(&self, t: &FiveTuple) -> Option<(u64, u64)> {
        self.counts.get(t).copied()
    }

    /// Number of distinct flows observed.
    pub fn flows_seen(&self) -> usize {
        self.counts.len()
    }

    /// Top-k flows by packet count (descending; ties broken by byte count,
    /// then by tuple order — fully deterministic).
    pub fn top_k(&self, k: usize) -> Vec<(FiveTuple, u64)> {
        let mut v: Vec<(FiveTuple, u64, u64)> =
            self.counts.iter().map(|(&t, &(p, b))| (t, p, b)).collect();
        v.sort_by_key(|&(t, p, b)| (std::cmp::Reverse((p, b)), t));
        v.truncate(k);
        v.into_iter().map(|(t, p, _)| (t, p)).collect()
    }
}

impl PacketHandler for FlowMonitor {
    fn handle(&mut self, pkt: &mut Packet, _now: SimTime) -> NfAction {
        let e = self.counts.entry(pkt.tuple).or_insert((0, 0));
        e.0 += 1;
        e.1 += pkt.size as u64;
        NfAction::Forward
    }
}

/// Deterministic 1-in-N sampler (sFlow-style); sampled packets are counted
/// (in a real deployment they would be mirrored to a collector).
#[derive(Debug)]
pub struct Sampler {
    n: u64,
    seen: u64,
    /// Packets selected by the sampler.
    pub sampled: u64,
}

impl Sampler {
    /// Sample every `n`-th packet.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1);
        Sampler {
            n,
            seen: 0,
            sampled: 0,
        }
    }
}

impl PacketHandler for Sampler {
    fn handle(&mut self, _pkt: &mut Packet, _now: SimTime) -> NfAction {
        self.seen += 1;
        if self.seen.is_multiple_of(self.n) {
            self.sampled += 1;
        }
        NfAction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::{ChainId, FlowId, Proto};

    fn pkt(n: u32, size: u32) -> Packet {
        let mut p = Packet::new(FlowId(n), ChainId(0), size, SimTime::ZERO);
        p.tuple = FiveTuple::synthetic(n, Proto::Udp);
        p
    }

    #[test]
    fn counts_per_flow() {
        let mut m = FlowMonitor::new();
        for _ in 0..3 {
            m.handle(&mut pkt(1, 100), SimTime::ZERO);
        }
        m.handle(&mut pkt(2, 50), SimTime::ZERO);
        assert_eq!(
            m.stats(&FiveTuple::synthetic(1, Proto::Udp)),
            Some((3, 300))
        );
        assert_eq!(m.stats(&FiveTuple::synthetic(2, Proto::Udp)), Some((1, 50)));
        assert_eq!(m.flows_seen(), 2);
    }

    #[test]
    fn top_k_orders_by_volume() {
        let mut m = FlowMonitor::new();
        for (flow, n) in [(1u32, 5), (2, 9), (3, 2)] {
            for _ in 0..n {
                m.handle(&mut pkt(flow, 64), SimTime::ZERO);
            }
        }
        let top = m.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 9);
        assert_eq!(top[1].1, 5);
    }

    #[test]
    fn sampler_rate() {
        let mut s = Sampler::new(10);
        for _ in 0..1000 {
            assert_eq!(s.handle(&mut pkt(0, 64), SimTime::ZERO), NfAction::Forward);
        }
        assert_eq!(s.sampled, 100);
    }

    #[test]
    fn sampler_n1_samples_everything() {
        let mut s = Sampler::new(1);
        for _ in 0..7 {
            s.handle(&mut pkt(0, 64), SimTime::ZERO);
        }
        assert_eq!(s.sampled, 7);
    }
}
