//! Deep packet inspection (signature matching).
//!
//! Real DPI scans payload bytes; the simulator carries no payload, so the
//! packet's *fingerprint* — a deterministic hash of its flow tuple and
//! sequence number — stands in for payload content. A signature "matches"
//! packets whose fingerprint falls in its bucket, giving a configurable,
//! reproducible hit rate. This preserves what the scheduling experiments
//! care about: DPI is expensive per packet and occasionally intercepts.

use nfv_des::SimTime;
use nfv_pkt::Packet;
use nfv_platform::{NfAction, PacketHandler};

/// What to do with a packet matching a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpiAction {
    /// Drop matching packets (IPS mode).
    Block,
    /// Count but forward (IDS mode).
    Alert,
}

/// The DPI NF.
#[derive(Debug)]
pub struct Dpi {
    /// Signature buckets out of [`Dpi::BUCKETS`]; a packet matches if its
    /// fingerprint bucket is in this set.
    signatures: Vec<u16>,
    action: DpiAction,
    /// Packets that matched a signature.
    pub matches: u64,
    /// Packets inspected.
    pub inspected: u64,
}

impl Dpi {
    /// Fingerprint space size.
    pub const BUCKETS: u16 = 10_000;

    /// A DPI engine matching the given buckets. Each bucket covers
    /// 1/10000 of traffic, so `signatures.len() / 10000` is the expected
    /// hit rate on uniform traffic.
    pub fn new(mut signatures: Vec<u16>, action: DpiAction) -> Self {
        signatures.sort_unstable();
        signatures.dedup();
        assert!(signatures.iter().all(|&s| s < Self::BUCKETS));
        Dpi {
            signatures,
            action,
            matches: 0,
            inspected: 0,
        }
    }

    /// The deterministic pseudo-payload fingerprint of a packet.
    pub fn fingerprint(pkt: &Packet) -> u16 {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in [
            pkt.tuple.src_ip as u64,
            pkt.tuple.dst_ip as u64,
            pkt.tuple.src_port as u64,
            pkt.seq,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % Self::BUCKETS as u64) as u16
    }
}

impl PacketHandler for Dpi {
    fn handle(&mut self, pkt: &mut Packet, _now: SimTime) -> NfAction {
        self.inspected += 1;
        if self
            .signatures
            .binary_search(&Self::fingerprint(pkt))
            .is_ok()
        {
            self.matches += 1;
            match self.action {
                DpiAction::Block => NfAction::Drop,
                DpiAction::Alert => NfAction::Forward,
            }
        } else {
            NfAction::Forward
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::{ChainId, FiveTuple, FlowId, Proto};

    fn pkt(seq: u64) -> Packet {
        let mut p = Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO);
        p.tuple = FiveTuple::synthetic(1, Proto::Udp);
        p.seq = seq;
        p
    }

    #[test]
    fn fingerprint_deterministic_and_spread() {
        let a = Dpi::fingerprint(&pkt(1));
        assert_eq!(a, Dpi::fingerprint(&pkt(1)));
        // different seqs spread over buckets
        let distinct: std::collections::HashSet<u16> =
            (0..1000).map(|s| Dpi::fingerprint(&pkt(s))).collect();
        assert!(distinct.len() > 900, "poor spread: {}", distinct.len());
    }

    #[test]
    fn hit_rate_tracks_signature_count() {
        // 1000 of 10000 buckets → ~10% expected hit rate.
        let sigs: Vec<u16> = (0..1000).collect();
        let mut dpi = Dpi::new(sigs, DpiAction::Alert);
        for seq in 0..20_000 {
            dpi.handle(&mut pkt(seq), SimTime::ZERO);
        }
        let rate = dpi.matches as f64 / dpi.inspected as f64;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn block_mode_drops_alert_mode_forwards() {
        let sig = Dpi::fingerprint(&pkt(42));
        let mut ips = Dpi::new(vec![sig], DpiAction::Block);
        let mut ids = Dpi::new(vec![sig], DpiAction::Alert);
        assert_eq!(ips.handle(&mut pkt(42), SimTime::ZERO), NfAction::Drop);
        assert_eq!(ids.handle(&mut pkt(42), SimTime::ZERO), NfAction::Forward);
        assert_eq!(ips.matches, 1);
        assert_eq!(ids.matches, 1);
    }

    #[test]
    fn empty_signature_set_matches_nothing() {
        let mut dpi = Dpi::new(vec![], DpiAction::Block);
        for seq in 0..100 {
            assert_eq!(dpi.handle(&mut pkt(seq), SimTime::ZERO), NfAction::Forward);
        }
        assert_eq!(dpi.matches, 0);
    }
}
