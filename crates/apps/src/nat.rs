//! Source NAT: rewrites private source addresses to a public address with
//! per-connection port allocation, like a home router / carrier-grade NAT.

use nfv_des::SimTime;
use nfv_pkt::{FiveTuple, Packet};
use nfv_platform::{NfAction, PacketHandler};
use std::collections::BTreeMap;

/// Source-NAT network function.
#[derive(Debug)]
pub struct Nat {
    public_ip: u32,
    next_port: u16,
    /// original (src_ip, src_port, proto-agnostic) → allocated public port.
    bindings: BTreeMap<(u32, u16), u16>,
    /// Translations performed.
    pub translated: u64,
    /// Packets dropped because the port pool is exhausted.
    pub exhausted: u64,
}

impl Nat {
    /// First port handed out.
    pub const PORT_BASE: u16 = 10_000;

    /// A NAT translating to `public_ip`.
    pub fn new(public_ip: u32) -> Self {
        Nat {
            public_ip,
            next_port: Self::PORT_BASE,
            bindings: BTreeMap::new(),
            translated: 0,
            exhausted: 0,
        }
    }

    /// Existing binding for `(src_ip, src_port)`, if any.
    pub fn binding(&self, src_ip: u32, src_port: u16) -> Option<u16> {
        self.bindings.get(&(src_ip, src_port)).copied()
    }

    /// Number of active bindings.
    pub fn active_bindings(&self) -> usize {
        self.bindings.len()
    }

    fn allocate(&mut self, key: (u32, u16)) -> Option<u16> {
        if let Some(&p) = self.bindings.get(&key) {
            return Some(p);
        }
        if self.next_port == u16::MAX {
            return None; // pool exhausted
        }
        let p = self.next_port;
        self.next_port += 1;
        self.bindings.insert(key, p);
        Some(p)
    }

    /// Translate a tuple in place; returns false if the pool is exhausted.
    pub fn translate(&mut self, t: &mut FiveTuple) -> bool {
        match self.allocate((t.src_ip, t.src_port)) {
            Some(port) => {
                t.src_ip = self.public_ip;
                t.src_port = port;
                true
            }
            None => false,
        }
    }
}

impl PacketHandler for Nat {
    fn handle(&mut self, pkt: &mut Packet, _now: SimTime) -> NfAction {
        if self.translate(&mut pkt.tuple) {
            self.translated += 1;
            NfAction::Forward
        } else {
            self.exhausted += 1;
            NfAction::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::{ChainId, FlowId, Proto};

    const PUBLIC: u32 = 0xc0a80001;

    fn pkt(n: u32) -> Packet {
        let mut p = Packet::new(FlowId(n), ChainId(0), 64, SimTime::ZERO);
        p.tuple = FiveTuple::synthetic(n, Proto::Udp);
        p
    }

    #[test]
    fn rewrites_source_to_public_ip() {
        let mut nat = Nat::new(PUBLIC);
        let mut p = pkt(1);
        let orig = p.tuple;
        assert_eq!(nat.handle(&mut p, SimTime::ZERO), NfAction::Forward);
        assert_eq!(p.tuple.src_ip, PUBLIC);
        assert_ne!(p.tuple.src_port, orig.src_port);
        // destination untouched
        assert_eq!(p.tuple.dst_ip, orig.dst_ip);
        assert_eq!(p.tuple.dst_port, orig.dst_port);
    }

    #[test]
    fn same_connection_keeps_its_binding() {
        let mut nat = Nat::new(PUBLIC);
        let mut a1 = pkt(1);
        let mut a2 = pkt(1);
        nat.handle(&mut a1, SimTime::ZERO);
        nat.handle(&mut a2, SimTime::ZERO);
        assert_eq!(a1.tuple.src_port, a2.tuple.src_port);
        assert_eq!(nat.active_bindings(), 1);
        assert_eq!(nat.translated, 2);
    }

    #[test]
    fn different_connections_get_distinct_ports() {
        let mut nat = Nat::new(PUBLIC);
        let mut a = pkt(1);
        let mut b = pkt(2);
        nat.handle(&mut a, SimTime::ZERO);
        nat.handle(&mut b, SimTime::ZERO);
        assert_ne!(a.tuple.src_port, b.tuple.src_port);
        assert_eq!(nat.active_bindings(), 2);
    }

    #[test]
    fn pool_exhaustion_drops() {
        let mut nat = Nat::new(PUBLIC);
        nat.next_port = u16::MAX; // simulate a drained pool
        let mut p = pkt(3);
        assert_eq!(nat.handle(&mut p, SimTime::ZERO), NfAction::Drop);
        assert_eq!(nat.exhausted, 1);
    }

    #[test]
    fn binding_lookup() {
        let mut nat = Nat::new(PUBLIC);
        let mut p = pkt(7);
        let orig = p.tuple;
        nat.handle(&mut p, SimTime::ZERO);
        assert_eq!(
            nat.binding(orig.src_ip, orig.src_port),
            Some(p.tuple.src_port)
        );
        assert_eq!(nat.binding(12345, 1), None);
    }
}
