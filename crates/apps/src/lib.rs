//! # nfv-apps — a library of network function implementations
//!
//! The middlebox families NFV platforms host (and the paper's introduction
//! names): firewalls, NAT, deep packet inspection, monitors, traffic
//! policers and load balancers — implemented over the platform's
//! [`PacketHandler`](nfv_platform::PacketHandler) API. Each NF is a pure
//! state machine over packet descriptors: its *functional* behaviour lives
//! here, while its *temporal* cost is configured separately via
//! `NfSpec`/`CostModel`, mirroring how the paper separates what an NF does
//! from how many cycles it burns.
//!
//! ```
//! use nfv_apps::{Firewall, Rule, Verdict};
//! use nfv_platform::NfSpec;
//! use nfvnice::{Duration, SimConfig, Simulation};
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let fw = Firewall::new(vec![Rule::any(Verdict::Allow)], Verdict::Deny);
//! let nf = sim.add_nf_with_handler(NfSpec::new("fw", 0, 300), Box::new(fw));
//! let chain = sim.add_chain(&[nf]);
//! sim.add_udp(chain, 100_000.0, 64);
//! let report = sim.run(Duration::from_millis(20));
//! assert!(report.flows[0].delivered > 0);
//! ```

#![warn(missing_docs)]

pub mod dpi;
pub mod firewall;
pub mod lb;
pub mod monitor;
pub mod nat;
pub mod policer;

pub use dpi::{Dpi, DpiAction};
pub use firewall::{Firewall, Match, Prefix, Rule, Verdict};
pub use lb::LoadBalancer;
pub use monitor::{FlowMonitor, Sampler};
pub use nat::Nat;
pub use policer::TokenBucket;
