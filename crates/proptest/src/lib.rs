//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the real `proptest` cannot be vendored. This crate implements exactly
//! the subset of proptest's API that the workspace's property tests use:
//!
//! - the [`proptest!`] macro (including the `#![proptest_config(..)]`
//!   header form) wrapping `#[test]` functions with `arg in strategy`
//!   parameters,
//! - [`Strategy`] implementations for integer and float ranges
//!   (`0u64..100`, `2usize..=4`, `0.0f64..1.0`), tuples of strategies,
//!   `prop::collection::vec(elem, size)` and `prop::bool::ANY`,
//! - combinators: [`Just`], [`Strategy::prop_map`] and the
//!   [`prop_oneof!`] macro (uniform arm choice, no weights),
//! - [`prop_assert!`] / [`prop_assert_eq!`], which report the generated
//!   inputs on failure,
//! - [`ProptestConfig`] with a `cases` knob.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! immediately with its inputs printed, which is enough to reproduce (the
//! generator is fully deterministic — seeded from the test's name — so a
//! failure always reproduces on re-run; there is no persistence file and
//! no wall-clock entropy anywhere).

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is consulted; the other fields exist
/// for signature compatibility with call sites that use struct-update
/// syntax against `ProptestConfig::default()`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic case generator: SplitMix64 seeded from the FNV-1a hash of
/// the property's name, so every test has an independent, reproducible
/// stream and no ambient entropy is involved.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build the generator for the named property.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one property parameter.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`, as the real crate's
    /// `Strategy::prop_map` does.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strat: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strat.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One boxed arm of a [`OneOf`]: a type-erased generator function.
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Strategy behind [`prop_oneof!`]: picks one arm uniformly per draw.
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Build from the macro-collected arm generators.
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

/// Choose uniformly between strategies of the same value type. The real
/// crate's weighted `n => strat` arm form is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span + 1) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Number-of-elements specification for [`prop::collection::vec`]: either
/// an exact `usize` or a half-open `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of a given element strategy and size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, VecStrategy};

        /// `Vec` of `size` elements drawn from `elem`.
        pub fn vec<S>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical instance, as `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Assert a condition inside a `proptest!` body; on failure the case's
/// generated inputs are reported alongside the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body (operands evaluated once).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), left, right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)*), left, right
                    ));
                }
            }
        }
    };
}

/// Define property tests. Mirrors the real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
///
///     /// doc comment
///     #[test]
///     fn my_property(x in 0u64..100, flip in prop::bool::ANY) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n{}\n  inputs: {}",
                        stringify!($name), case + 1, config.cases, msg, inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Everything a property-test file needs, as `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop, Just, ProptestConfig, SizeRange, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let w = Strategy::generate(&(2usize..=4), &mut rng);
            assert!((2..=4).contains(&w));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("vec_strategy_sizes");
        for _ in 0..200 {
            let fixed = Strategy::generate(&prop::collection::vec(0u8..5, 7), &mut rng);
            assert_eq!(fixed.len(), 7);
            let ranged = Strategy::generate(&prop::collection::vec(0u8..5, 1..4), &mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself round-trips: args bind, asserts pass.
        #[test]
        fn macro_smoke(x in 0u64..100, pair in (0u32..4, 0.0f64..1.0), flags in prop::collection::vec(prop::bool::ANY, 1..8)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4 && pair.1 < 1.0);
            prop_assert_eq!(flags.len(), flags.iter().filter(|_| true).count());
        }

        /// Combinators compose: prop_oneof over Just / prop_map arms.
        #[test]
        fn combinators_smoke(
            vals in prop::collection::vec(
                prop_oneof![
                    Just(0u64),
                    (1u64..10).prop_map(|x| x * 100),
                    1_000u64..2_000,
                ],
                1..32,
            ),
        ) {
            for v in vals {
                prop_assert!(
                    v == 0 || (100u64..1_000).contains(&v) || (1_000u64..2_000).contains(&v),
                    "value {v} outside every arm's range"
                );
            }
        }
    }
}
