//! Asynchronous write engine: batching + double buffering.
//!
//! Implements the `libnf_write_data` behaviour from §3.4 of the paper:
//! writes accumulate in an in-memory buffer; when it fills, the buffer is
//! handed to the device and the twin buffer takes over. Only when *both*
//! buffers are unavailable (one flushing at the device, the other full and
//! queued) does the engine report [`WriteOutcome::Blocked`] — the signal
//! for `libnf` to suspend the NF and yield the CPU.

use crate::device::StorageDevice;
use nfv_des::SimTime;

/// Result of an asynchronous buffered write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Data buffered; the NF continues immediately.
    Buffered,
    /// The active buffer filled and was submitted to the device; the NF
    /// continues immediately on the twin buffer. Completion fires at the
    /// given time.
    Flushing {
        /// Absolute completion time of the submitted flush.
        completion: SimTime,
    },
    /// Both buffers are in use; the NF must block until the in-flight
    /// flush completes (the platform wakes it from the completion event).
    Blocked,
}

/// Double-buffered write path for one NF.
#[derive(Debug)]
pub struct DoubleBuffer {
    /// Capacity of each of the two buffers, in bytes.
    buf_size: u64,
    /// Bytes accumulated in the active buffer.
    filling: u64,
    /// A buffer is currently at the device.
    flush_in_flight: bool,
    /// The non-active buffer is full and waiting for the device.
    queued_full: bool,
    /// Writes that had to block (both buffers busy).
    pub blocks: u64,
    /// Flushes submitted.
    pub flushes: u64,
}

impl DoubleBuffer {
    /// An engine whose two buffers each hold `buf_size` bytes.
    pub fn new(buf_size: u64) -> Self {
        assert!(buf_size > 0);
        DoubleBuffer {
            buf_size,
            filling: 0,
            flush_in_flight: false,
            queued_full: false,
            blocks: 0,
            flushes: 0,
        }
    }

    /// Append `bytes` to the active buffer.
    ///
    /// When the caller receives [`WriteOutcome::Blocked`] it must *not*
    /// consider the bytes written; retry after the wake from
    /// [`DoubleBuffer::on_flush_complete`].
    pub fn write(&mut self, now: SimTime, bytes: u64, dev: &mut StorageDevice) -> WriteOutcome {
        if self.queued_full {
            // Twin already full and waiting; nowhere to put more data.
            self.blocks += 1;
            return WriteOutcome::Blocked;
        }
        self.filling += bytes;
        if self.filling < self.buf_size {
            return WriteOutcome::Buffered;
        }
        // Active buffer is full.
        if self.flush_in_flight {
            // Device busy with the twin: park this buffer, block the NF.
            self.queued_full = true;
            self.blocks += 1;
            WriteOutcome::Blocked
        } else {
            let completion = dev.submit_write(now, self.filling);
            self.filling = 0;
            self.flush_in_flight = true;
            self.flushes += 1;
            WriteOutcome::Flushing { completion }
        }
    }

    /// Notify that the in-flight flush completed. If a full buffer was
    /// queued, it is submitted now and its completion time returned; the
    /// NF (if blocked) becomes runnable again either way.
    pub fn on_flush_complete(&mut self, now: SimTime, dev: &mut StorageDevice) -> Option<SimTime> {
        debug_assert!(self.flush_in_flight, "completion without flush");
        self.flush_in_flight = false;
        if self.queued_full {
            self.queued_full = false;
            let completion = dev.submit_write(now, self.filling);
            self.filling = 0;
            self.flush_in_flight = true;
            self.flushes += 1;
            Some(completion)
        } else {
            None
        }
    }

    /// True when a previously blocked writer may resume.
    pub fn writable(&self) -> bool {
        !self.queued_full
    }

    /// Bytes currently sitting in the active buffer.
    pub fn pending_bytes(&self) -> u64 {
        self.filling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_des::Duration;

    fn dev() -> StorageDevice {
        // 1 byte/us, no base latency: easy arithmetic.
        StorageDevice::new(1_000_000, Duration::ZERO)
    }

    #[test]
    fn small_writes_buffer_without_touching_device() {
        let mut d = dev();
        let mut b = DoubleBuffer::new(1000);
        for _ in 0..9 {
            assert_eq!(b.write(SimTime::ZERO, 100, &mut d), WriteOutcome::Buffered);
        }
        assert_eq!(d.requests, 0);
        assert_eq!(b.pending_bytes(), 900);
    }

    #[test]
    fn filling_a_buffer_triggers_flush_and_continues() {
        let mut d = dev();
        let mut b = DoubleBuffer::new(1000);
        for _ in 0..9 {
            b.write(SimTime::ZERO, 100, &mut d);
        }
        match b.write(SimTime::ZERO, 100, &mut d) {
            WriteOutcome::Flushing { completion } => {
                assert_eq!(completion, SimTime::from_micros(1000));
            }
            other => panic!("expected flush, got {other:?}"),
        }
        // Twin buffer immediately usable.
        assert_eq!(b.write(SimTime::ZERO, 100, &mut d), WriteOutcome::Buffered);
    }

    #[test]
    fn both_buffers_busy_blocks_then_resumes() {
        let mut d = dev();
        let mut b = DoubleBuffer::new(100);
        // Fill+flush buffer 1.
        assert!(matches!(
            b.write(SimTime::ZERO, 100, &mut d),
            WriteOutcome::Flushing { .. }
        ));
        // Fill buffer 2 while flush in flight: full ⇒ blocked.
        assert_eq!(b.write(SimTime::ZERO, 100, &mut d), WriteOutcome::Blocked);
        assert_eq!(b.blocks, 1);
        assert!(!b.writable());
        // Flush 1 completes: queued buffer is submitted, writer may resume.
        let next = b.on_flush_complete(SimTime::from_micros(100), &mut d);
        assert!(next.is_some());
        assert!(b.writable());
        assert_eq!(
            b.write(SimTime::from_micros(100), 10, &mut d),
            WriteOutcome::Buffered
        );
        // Second completion with nothing queued.
        assert_eq!(b.on_flush_complete(next.unwrap(), &mut d), None);
        assert_eq!(b.flushes, 2);
    }

    #[test]
    fn repeated_blocked_writes_do_not_lose_data() {
        let mut d = dev();
        let mut b = DoubleBuffer::new(100);
        b.write(SimTime::ZERO, 100, &mut d); // flush 1
        b.write(SimTime::ZERO, 100, &mut d); // blocked (queued)
                                             // Retry while still blocked: still blocked, byte count unchanged.
        assert_eq!(b.write(SimTime::ZERO, 50, &mut d), WriteOutcome::Blocked);
        assert_eq!(b.blocks, 2);
        b.on_flush_complete(SimTime::from_micros(100), &mut d);
        // After resume the retried write lands in the fresh buffer.
        assert_eq!(
            b.write(SimTime::from_micros(100), 50, &mut d),
            WriteOutcome::Buffered
        );
        assert_eq!(b.pending_bytes(), 50);
    }
}
