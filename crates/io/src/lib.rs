//! # nfv-io — storage device model and asynchronous I/O engine
//!
//! Supports the paper's §3.4 ("Facilitating I/O") and the Fig 14
//! experiment: NFs that log packets to disk. `libnf` offers NFs an
//! asynchronous write API with *batching* (writes accumulate in a buffer)
//! and *double buffering* (one buffer fills while the other flushes); only
//! when both buffers are unavailable does the NF suspend and yield the CPU.
//! The baseline NF, without NFVnice, performs blocking writes.

#![warn(missing_docs)]

pub mod device;
pub mod engine;

pub use device::StorageDevice;
pub use engine::{DoubleBuffer, WriteOutcome};
