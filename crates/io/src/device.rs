//! Storage device service model.
//!
//! A single-queue device: requests are served in order, each taking
//! `base_latency + bytes / bandwidth`. The model returns absolute
//! completion times; the platform turns those into completion events that
//! invoke the NF's I/O callback (the paper's callback runs in a separate
//! thread context, i.e. off the packet path — so completions here do not
//! consume NF CPU time).

use nfv_des::{Duration, SimTime};

/// A simulated disk/SSD with fixed per-request latency and bandwidth.
#[derive(Debug)]
pub struct StorageDevice {
    /// Sustained bandwidth in bytes per second.
    bandwidth: u64,
    /// Fixed per-request overhead.
    base_latency: Duration,
    /// When the device finishes everything currently queued.
    busy_until: SimTime,
    /// Total bytes written over the run.
    pub bytes_written: u64,
    /// Total requests served.
    pub requests: u64,
}

impl StorageDevice {
    /// A device with the given bandwidth (bytes/s) and per-request latency.
    pub fn new(bandwidth: u64, base_latency: Duration) -> Self {
        assert!(bandwidth > 0);
        StorageDevice {
            bandwidth,
            base_latency,
            busy_until: SimTime::ZERO,
            bytes_written: 0,
            requests: 0,
        }
    }

    /// A mid-range SATA SSD: 500 MB/s, 100 µs per request.
    pub fn default_ssd() -> Self {
        StorageDevice::new(500_000_000, Duration::from_micros(100))
    }

    /// Submit a write of `bytes`; returns the absolute completion time.
    pub fn submit_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        // Ceiling division: a transfer that needs any fraction of a
        // nanosecond occupies the whole nanosecond. Floor division would
        // undercharge — a small write on a fast device rounds to 0 ns and
        // the device model stops queueing at all.
        let transfer =
            Duration::from_nanos(bytes.saturating_mul(1_000_000_000).div_ceil(self.bandwidth));
        let start = self.busy_until.max(now);
        self.busy_until = start + self.base_latency + transfer;
        self.bytes_written += bytes;
        self.requests += 1;
        self.busy_until
    }

    /// Time at which the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_latency_includes_base_and_transfer() {
        // 1_000_000 B/s => 1 byte per microsecond.
        let mut d = StorageDevice::new(1_000_000, Duration::from_micros(10));
        let done = d.submit_write(SimTime::ZERO, 100);
        assert_eq!(done, SimTime::from_micros(110));
    }

    #[test]
    fn requests_queue_behind_each_other() {
        let mut d = StorageDevice::new(1_000_000, Duration::from_micros(10));
        let first = d.submit_write(SimTime::ZERO, 100);
        let second = d.submit_write(SimTime::ZERO, 100);
        assert_eq!(second, first + Duration::from_micros(110));
        assert_eq!(d.requests, 2);
        assert_eq!(d.bytes_written, 200);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = StorageDevice::new(1_000_000, Duration::ZERO);
        d.submit_write(SimTime::ZERO, 100); // done at 100us
        let done = d.submit_write(SimTime::from_millis(5), 100);
        assert_eq!(done, SimTime::from_millis(5) + Duration::from_micros(100));
    }

    #[test]
    fn uneven_bandwidth_rounds_transfer_up() {
        // 3 B/s: one byte takes 333_333_333.3 ns — must charge the full
        // 333_333_334 ns, not floor to ...333.
        let mut d = StorageDevice::new(3, Duration::ZERO);
        let done = d.submit_write(SimTime::ZERO, 1);
        assert_eq!(done, SimTime::from_nanos(333_333_334));
    }

    #[test]
    fn tiny_write_on_fast_device_still_costs_time() {
        // 2 GB/s: a 1-byte write is 0.5 ns; floor division would make it
        // free and the device would never accumulate queueing.
        let mut d = StorageDevice::new(2_000_000_000, Duration::ZERO);
        let done = d.submit_write(SimTime::ZERO, 1);
        assert_eq!(done, SimTime::from_nanos(1));
        assert!(d.busy_until() > SimTime::ZERO);
    }

    #[test]
    fn default_ssd_sane() {
        let mut d = StorageDevice::default_ssd();
        let done = d.submit_write(SimTime::ZERO, 500_000_000);
        // 1 second of transfer + 100us latency
        assert_eq!(done, SimTime::from_secs(1) + Duration::from_micros(100));
    }
}
