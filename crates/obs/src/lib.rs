//! # nfv-obs — observability for the NFVnice simulation
//!
//! Two complementary recording layers, both **zero-overhead when off** and
//! both strictly deterministic (they only read simulated state, never wall
//! clocks, and store everything in insertion order):
//!
//! * [`TraceSink`] — structured *events* at the policy/mechanism decision
//!   points: throttle enter/exit, chain mark/clear, cgroup share writes,
//!   NF sleep/wake/yield, packet drops by cause, ECN marks and context
//!   switches. A sink is a cheap cloneable handle (the simulation is
//!   single-threaded, so handles share one buffer via `Rc<RefCell<..>>`);
//!   a disabled sink holds no buffer and recording is a single branch.
//! * [`MetricsRecorder`] — per-NF and per-chain *time series* sampled on
//!   the monitor tick: queue depth, backpressure state, cgroup shares,
//!   arrival rate λ, median service time, and mempool in-flight packets.
//!
//! Exporters render traces as JSONL or CSV and metrics as a single JSON
//! document or CSV — all hand-rolled (the workspace has no external
//! dependencies) and byte-deterministic for a given recording.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub(crate) mod json;

pub use metrics::{ChainSeries, MetricsRecorder, NfSeries};
pub use trace::{
    trace_to_csv, trace_to_jsonl, trace_to_jsonl_into, DropCause, SleepReason, TraceEvent,
    TraceKind, TraceSink, NO_ID,
};
