//! Structured event tracing.
//!
//! Events are recorded at the existing decision points of the engine,
//! platform, scheduler and backpressure subsystems; each carries the
//! simulated timestamp and raw entity ids (`u32` NF/chain/flow/core/task
//! indices, so this crate depends on nothing but `nfv-des`). The sink is a
//! handle: clones share one buffer, and a sink built with [`TraceSink::off`]
//! carries no buffer at all, making [`TraceSink::record`] a single
//! `Option` branch on the hot path.

use crate::json;
use nfv_des::SimTime;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// Sentinel for an id that does not apply to an event (e.g. the flow of a
/// pre-classification NIC drop). Exporters omit fields holding it.
pub const NO_ID: u32 = u32::MAX;

/// Why an NF process went to sleep on its semaphore (mirror of the
/// platform's block reasons, kept here to avoid a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepReason {
    /// RX ring empty: nothing to do.
    EmptyRx,
    /// Manager-directed backpressure yield.
    Backpressure,
    /// The NF's own TX ring is full.
    TxFull,
    /// Waiting on a storage flush.
    Io,
}

impl SleepReason {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SleepReason::EmptyRx => "empty_rx",
            SleepReason::Backpressure => "backpressure",
            SleepReason::TxFull => "tx_full",
            SleepReason::Io => "io",
        }
    }
}

/// Where/why a packet (or frame) was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// NIC hardware RX queue overflowed (pre-classification).
    NicOverflow,
    /// No flow-table match (pre-admission).
    Unclassified,
    /// Shed at chain entry by backpressure's selective early discard.
    EntryThrottle,
    /// Shared mempool exhausted.
    MempoolExhausted,
    /// An NF's RX ring was full.
    RingFull,
    /// The NF's packet handler dropped it (policy, not congestion).
    Handler,
    /// The NF (or a downstream NF on the packet's chain) is dead: freed by
    /// the crash drain or shed at entry/forwarding while the NF is down.
    NfDown,
}

impl DropCause {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::NicOverflow => "nic_overflow",
            DropCause::Unclassified => "unclassified",
            DropCause::EntryThrottle => "entry_throttle",
            DropCause::MempoolExhausted => "mempool_exhausted",
            DropCause::RingFull => "ring_full",
            DropCause::Handler => "handler",
            DropCause::NfDown => "nf_down",
        }
    }
}

/// What happened. All ids are raw indices (`NfId.0`, `ChainId.0`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An NF crossed the high watermark with an aged queue head and
    /// entered the `Throttle` state.
    ThrottleEnter {
        /// The bottleneck NF.
        nf: u32,
    },
    /// An NF fell below the low watermark and left `Throttle`.
    ThrottleExit {
        /// The recovering NF.
        nf: u32,
    },
    /// `nf` (a throttling bottleneck) marked `chain` for entry discard.
    ChainMark {
        /// The bottleneck NF.
        nf: u32,
        /// The chain now subject to selective early discard.
        chain: u32,
    },
    /// `nf` cleared its mark on `chain`.
    ChainClear {
        /// The recovering NF.
        nf: u32,
        /// The chain released from this bottleneck.
        chain: u32,
    },
    /// The monitor wrote `cpu.shares` for an NF's cgroup (non-redundant
    /// writes only — redundant writes are skipped and cost nothing).
    ShareWrite {
        /// The NF whose weight changed.
        nf: u32,
        /// The new shares value (post-clamping).
        shares: u64,
    },
    /// An NF blocked on its semaphore.
    NfSleep {
        /// The NF going to sleep.
        nf: u32,
        /// Why it blocked.
        reason: SleepReason,
    },
    /// A blocked NF was woken.
    NfWake {
        /// The woken NF.
        nf: u32,
    },
    /// The wakeup thread set an NF's yield flag (its whole backlog is
    /// doomed by a downstream bottleneck).
    NfYield {
        /// The NF directed to relinquish the CPU.
        nf: u32,
    },
    /// A packet or frame was dropped. `flow`/`chain`/`nf` are [`NO_ID`]
    /// when unknown at the drop point (e.g. NIC overflow).
    PacketDrop {
        /// Why it was dropped.
        cause: DropCause,
        /// Flow id, or [`NO_ID`].
        flow: u32,
        /// Chain id, or [`NO_ID`].
        chain: u32,
        /// NF at which the drop occurred, or [`NO_ID`].
        nf: u32,
    },
    /// A CE mark was applied to an ECT(0) packet entering `nf`'s queue.
    EcnMark {
        /// The congested NF whose queue triggered the mark.
        nf: u32,
    },
    /// A dispatch that changed the running task on a core (the point where
    /// the direct context-switch cost is charged).
    CtxSwitch {
        /// The core.
        core: u32,
        /// The incoming task.
        task: u32,
    },
    /// A fault-plan crash killed an NF (its queues were drained and its
    /// scheduler task parked).
    NfCrash {
        /// The NF that died.
        nf: u32,
    },
    /// The liveness watchdog declared a wedged-but-runnable NF dead.
    NfStallDetect {
        /// The stalled NF.
        nf: u32,
    },
    /// The manager respawned a dead NF (task re-registered, monitor state
    /// reset, backpressure marks long since cleared).
    NfRestart {
        /// The restarted NF.
        nf: u32,
    },
    /// The elastic controller spawned a scale-out replica of a persistent
    /// bottleneck NF on another core.
    NfScaleOut {
        /// The replicated (base) NF.
        nf: u32,
        /// The new replica instance.
        replica: u32,
        /// The core the replica was placed on.
        core: u32,
    },
    /// The elastic controller migrated an NF from a saturated core to a
    /// quieter one.
    NfMigrate {
        /// The migrated NF.
        nf: u32,
        /// Source core.
        from: u32,
        /// Destination core.
        to: u32,
    },
    /// The elastic controller retired a drained replica (scale-in).
    NfScaleIn {
        /// The base NF whose group shrank.
        nf: u32,
        /// The retired replica instance.
        replica: u32,
    },
}

impl TraceKind {
    /// Stable lowercase event name used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::ThrottleEnter { .. } => "throttle_enter",
            TraceKind::ThrottleExit { .. } => "throttle_exit",
            TraceKind::ChainMark { .. } => "chain_mark",
            TraceKind::ChainClear { .. } => "chain_clear",
            TraceKind::ShareWrite { .. } => "share_write",
            TraceKind::NfSleep { .. } => "nf_sleep",
            TraceKind::NfWake { .. } => "nf_wake",
            TraceKind::NfYield { .. } => "nf_yield",
            TraceKind::PacketDrop { .. } => "drop",
            TraceKind::EcnMark { .. } => "ecn_mark",
            TraceKind::CtxSwitch { .. } => "ctx_switch",
            TraceKind::NfCrash { .. } => "nf_crash",
            TraceKind::NfStallDetect { .. } => "nf_stall_detect",
            TraceKind::NfRestart { .. } => "nf_restart",
            TraceKind::NfScaleOut { .. } => "nf_scale_out",
            TraceKind::NfMigrate { .. } => "nf_migrate",
            TraceKind::NfScaleIn { .. } => "nf_scale_in",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (simulated time).
    pub t: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Render as a single JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        fn field(s: &mut String, name: &str, v: u32) {
            if v != NO_ID {
                let _ = write!(s, ",\"{name}\":{v}");
            }
        }
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"t_ns\":{},\"ev\":", self.t.as_nanos());
        json::push_str_lit(&mut s, self.kind.label());
        match self.kind {
            TraceKind::ThrottleEnter { nf }
            | TraceKind::ThrottleExit { nf }
            | TraceKind::EcnMark { nf }
            | TraceKind::NfWake { nf }
            | TraceKind::NfYield { nf }
            | TraceKind::NfCrash { nf }
            | TraceKind::NfStallDetect { nf }
            | TraceKind::NfRestart { nf } => field(&mut s, "nf", nf),
            TraceKind::ChainMark { nf, chain } | TraceKind::ChainClear { nf, chain } => {
                field(&mut s, "nf", nf);
                field(&mut s, "chain", chain);
            }
            TraceKind::ShareWrite { nf, shares } => {
                field(&mut s, "nf", nf);
                let _ = write!(s, ",\"shares\":{shares}");
            }
            TraceKind::NfSleep { nf, reason } => {
                field(&mut s, "nf", nf);
                s.push_str(",\"reason\":");
                json::push_str_lit(&mut s, reason.label());
            }
            TraceKind::PacketDrop {
                cause,
                flow,
                chain,
                nf,
            } => {
                s.push_str(",\"cause\":");
                json::push_str_lit(&mut s, cause.label());
                field(&mut s, "flow", flow);
                field(&mut s, "chain", chain);
                field(&mut s, "nf", nf);
            }
            TraceKind::CtxSwitch { core, task } => {
                field(&mut s, "core", core);
                field(&mut s, "task", task);
            }
            TraceKind::NfScaleOut { nf, replica, core } => {
                field(&mut s, "nf", nf);
                field(&mut s, "replica", replica);
                field(&mut s, "core", core);
            }
            TraceKind::NfMigrate { nf, from, to } => {
                field(&mut s, "nf", nf);
                field(&mut s, "from", from);
                field(&mut s, "to", to);
            }
            TraceKind::NfScaleIn { nf, replica } => {
                field(&mut s, "nf", nf);
                field(&mut s, "replica", replica);
            }
        }
        s.push('}');
        s
    }
}

/// Render events as JSONL (one JSON object per line, trailing newline).
pub fn trace_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    trace_to_jsonl_into(events, &mut out);
    out
}

/// Append events as JSONL to an existing buffer (same bytes as
/// [`trace_to_jsonl`]); lets callers assemble a multi-cell document
/// without intermediate allocations.
pub fn trace_to_jsonl_into(events: &[TraceEvent], out: &mut String) {
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
}

/// Render events as CSV with a fixed header; inapplicable cells are empty.
pub fn trace_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("t_ns,ev,nf,chain,flow,detail\n");
    let opt = |v: u32| {
        if v == NO_ID {
            String::new()
        } else {
            v.to_string()
        }
    };
    for e in events {
        let (nf, chain, flow, detail) = match e.kind {
            TraceKind::ThrottleEnter { nf }
            | TraceKind::ThrottleExit { nf }
            | TraceKind::EcnMark { nf }
            | TraceKind::NfWake { nf }
            | TraceKind::NfYield { nf }
            | TraceKind::NfCrash { nf }
            | TraceKind::NfStallDetect { nf }
            | TraceKind::NfRestart { nf } => (opt(nf), String::new(), String::new(), String::new()),
            TraceKind::ChainMark { nf, chain } | TraceKind::ChainClear { nf, chain } => {
                (opt(nf), opt(chain), String::new(), String::new())
            }
            TraceKind::ShareWrite { nf, shares } => {
                (opt(nf), String::new(), String::new(), shares.to_string())
            }
            TraceKind::NfSleep { nf, reason } => {
                (opt(nf), String::new(), String::new(), reason.label().into())
            }
            TraceKind::PacketDrop {
                cause,
                flow,
                chain,
                nf,
            } => (opt(nf), opt(chain), opt(flow), cause.label().into()),
            TraceKind::CtxSwitch { core, task } => (
                String::new(),
                String::new(),
                String::new(),
                format!("core{core}->task{task}"),
            ),
            TraceKind::NfScaleOut { nf, replica, core } => (
                opt(nf),
                String::new(),
                String::new(),
                format!("replica{replica}@core{core}"),
            ),
            TraceKind::NfMigrate { nf, from, to } => (
                opt(nf),
                String::new(),
                String::new(),
                format!("core{from}->core{to}"),
            ),
            TraceKind::NfScaleIn { nf, replica } => (
                opt(nf),
                String::new(),
                String::new(),
                format!("replica{replica}"),
            ),
        };
        let _ = writeln!(
            out,
            "{},{},{nf},{chain},{flow},{detail}",
            e.t.as_nanos(),
            e.kind.label()
        );
    }
    out
}

/// A recording handle. Clones share one buffer; a sink built with
/// [`TraceSink::off`] records nothing at (almost) zero cost.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    buf: Option<Rc<RefCell<Vec<TraceEvent>>>>,
}

impl TraceSink {
    /// A disabled sink: `record` is a no-op branch.
    pub fn off() -> Self {
        TraceSink { buf: None }
    }

    /// An enabled sink with a fresh shared buffer.
    pub fn recording() -> Self {
        TraceSink {
            buf: Some(Rc::new(RefCell::new(Vec::new()))),
        }
    }

    /// Is this sink recording?
    pub fn is_on(&self) -> bool {
        self.buf.is_some()
    }

    /// Record an event (no-op when off).
    #[inline]
    pub fn record(&self, t: SimTime, kind: TraceKind) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().push(TraceEvent { t, kind });
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.borrow().len())
    }

    /// True when nothing has been recorded (or the sink is off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all recorded events (subsequent recording starts fresh).
    pub fn take(&self) -> Vec<TraceEvent> {
        self.buf
            .as_ref()
            // nfv-lint: allow(hot-alloc) -- flush-time drain; name-collision with mem::take marks it hot
            .map_or_else(Vec::new, |b| std::mem::take(&mut b.borrow_mut()))
    }

    /// Count events matching a predicate without draining.
    pub fn count(&self, pred: impl Fn(&TraceKind) -> bool) -> usize {
        self.buf
            .as_ref()
            .map_or(0, |b| b.borrow().iter().filter(|e| pred(&e.kind)).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing() {
        let s = TraceSink::off();
        s.record(SimTime::ZERO, TraceKind::NfWake { nf: 0 });
        assert!(!s.is_on());
        assert!(s.is_empty());
        assert!(s.take().is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let s = TraceSink::recording();
        let c = s.clone();
        c.record(SimTime::from_micros(1), TraceKind::ThrottleEnter { nf: 2 });
        s.record(SimTime::from_micros(2), TraceKind::ThrottleExit { nf: 2 });
        assert_eq!(s.len(), 2);
        let events = s.take();
        assert_eq!(events[0].kind, TraceKind::ThrottleEnter { nf: 2 });
        assert!(c.is_empty(), "take drains the shared buffer");
    }

    #[test]
    fn count_filters() {
        let s = TraceSink::recording();
        s.record(SimTime::ZERO, TraceKind::EcnMark { nf: 1 });
        s.record(SimTime::ZERO, TraceKind::NfYield { nf: 1 });
        assert_eq!(s.count(|k| matches!(k, TraceKind::EcnMark { .. })), 1);
    }

    #[test]
    fn jsonl_renders_each_variant() {
        let t = SimTime::from_nanos(42);
        let cases = [
            (
                TraceKind::ThrottleEnter { nf: 1 },
                r#"{"t_ns":42,"ev":"throttle_enter","nf":1}"#,
            ),
            (
                TraceKind::ChainMark { nf: 1, chain: 3 },
                r#"{"t_ns":42,"ev":"chain_mark","nf":1,"chain":3}"#,
            ),
            (
                TraceKind::ShareWrite {
                    nf: 0,
                    shares: 2048,
                },
                r#"{"t_ns":42,"ev":"share_write","nf":0,"shares":2048}"#,
            ),
            (
                TraceKind::NfSleep {
                    nf: 2,
                    reason: SleepReason::TxFull,
                },
                r#"{"t_ns":42,"ev":"nf_sleep","nf":2,"reason":"tx_full"}"#,
            ),
            (
                TraceKind::PacketDrop {
                    cause: DropCause::NicOverflow,
                    flow: NO_ID,
                    chain: NO_ID,
                    nf: NO_ID,
                },
                r#"{"t_ns":42,"ev":"drop","cause":"nic_overflow"}"#,
            ),
            (
                TraceKind::PacketDrop {
                    cause: DropCause::RingFull,
                    flow: 7,
                    chain: 1,
                    nf: 4,
                },
                r#"{"t_ns":42,"ev":"drop","cause":"ring_full","flow":7,"chain":1,"nf":4}"#,
            ),
            (
                TraceKind::CtxSwitch { core: 0, task: 5 },
                r#"{"t_ns":42,"ev":"ctx_switch","core":0,"task":5}"#,
            ),
            (
                TraceKind::NfCrash { nf: 2 },
                r#"{"t_ns":42,"ev":"nf_crash","nf":2}"#,
            ),
            (
                TraceKind::NfStallDetect { nf: 2 },
                r#"{"t_ns":42,"ev":"nf_stall_detect","nf":2}"#,
            ),
            (
                TraceKind::NfRestart { nf: 2 },
                r#"{"t_ns":42,"ev":"nf_restart","nf":2}"#,
            ),
            (
                TraceKind::PacketDrop {
                    cause: DropCause::NfDown,
                    flow: 1,
                    chain: 0,
                    nf: 2,
                },
                r#"{"t_ns":42,"ev":"drop","cause":"nf_down","flow":1,"chain":0,"nf":2}"#,
            ),
            (
                TraceKind::NfScaleOut {
                    nf: 1,
                    replica: 4,
                    core: 1,
                },
                r#"{"t_ns":42,"ev":"nf_scale_out","nf":1,"replica":4,"core":1}"#,
            ),
            (
                TraceKind::NfMigrate {
                    nf: 2,
                    from: 0,
                    to: 1,
                },
                r#"{"t_ns":42,"ev":"nf_migrate","nf":2,"from":0,"to":1}"#,
            ),
            (
                TraceKind::NfScaleIn { nf: 1, replica: 4 },
                r#"{"t_ns":42,"ev":"nf_scale_in","nf":1,"replica":4}"#,
            ),
        ];
        for (kind, want) in cases {
            assert_eq!(TraceEvent { t, kind }.to_json(), want);
        }
    }

    #[test]
    fn csv_renders_header_and_rows() {
        let events = [
            TraceEvent {
                t: SimTime::from_nanos(1),
                kind: TraceKind::ThrottleEnter { nf: 3 },
            },
            TraceEvent {
                t: SimTime::from_nanos(2),
                kind: TraceKind::PacketDrop {
                    cause: DropCause::EntryThrottle,
                    flow: 0,
                    chain: 1,
                    nf: NO_ID,
                },
            },
        ];
        let csv = trace_to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_ns,ev,nf,chain,flow,detail");
        assert_eq!(lines[1], "1,throttle_enter,3,,,");
        assert_eq!(lines[2], "2,drop,,1,0,entry_throttle");
    }
}
