//! Minimal deterministic JSON rendering helpers.
//!
//! The workspace forbids external dependencies, so the exporters assemble
//! JSON by hand. Everything funnels through these helpers so escaping and
//! number formatting are uniform: floats use Rust's shortest-roundtrip
//! `Display`, which is a pure function of the bits, so two identical
//! recordings render byte-identically.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite float as a JSON number (`null` for NaN/∞, which JSON
/// cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `[a, b, c]` for a u64 slice.
pub fn push_u64_array(out: &mut String, xs: &[u64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

/// Append `[a, b, c]` for an f64 slice (`null` for non-finite entries).
pub fn push_f64_array(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *x);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn floats_render_shortest() {
        let mut s = String::new();
        push_f64(&mut s, 0.1);
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "0.1null");
    }

    #[test]
    fn arrays_render() {
        let mut s = String::new();
        push_u64_array(&mut s, &[1, 2, 3]);
        push_f64_array(&mut s, &[1.5]);
        assert_eq!(s, "[1,2,3][1.5]");
    }
}
