//! Per-NF / per-chain time series sampled on the monitor tick.
//!
//! The engine calls [`MetricsRecorder::begin_tick`] once per monitor tick
//! (1 ms by default), then [`MetricsRecorder::record_nf`] /
//! [`MetricsRecorder::record_chain`] for every NF and chain. All series
//! are column vectors aligned on [`MetricsRecorder::t_ns`], so sample `i`
//! of every series belongs to the same tick. A recorder built with
//! [`MetricsRecorder::off`] ignores every call.

use crate::json;
use nfv_des::SimTime;
use std::fmt::Write as _;

/// Time series for one NF.
#[derive(Debug, Clone, Default)]
pub struct NfSeries {
    /// NF name (from its spec).
    pub name: String,
    /// Instantaneous RX queue depth.
    pub qlen: Vec<u64>,
    /// Backpressure state: 1 = `Throttle`, 0 = `Watch`.
    pub throttled: Vec<u64>,
    /// Current cgroup `cpu.shares`.
    pub shares: Vec<u64>,
    /// Arrival-rate estimate λ (packets/s) over the estimator window.
    pub lambda_pps: Vec<f64>,
    /// Median per-packet service time estimate (ns; 0 before any sample).
    pub svc_median_ns: Vec<u64>,
}

/// Time series for one chain.
#[derive(Debug, Clone, Default)]
pub struct ChainSeries {
    /// 1 when the chain is subject to entry discard, else 0.
    pub throttled: Vec<u64>,
    /// Number of NFs currently throttling this chain.
    pub bottlenecks: Vec<u64>,
    /// Running 99th-percentile end-to-end latency (ns) of delivered
    /// packets; 0 before any delivery.
    pub lat_p99_ns: Vec<u64>,
    /// Running 99.9th-percentile end-to-end latency (ns).
    pub lat_p999_ns: Vec<u64>,
}

/// The monitor-tick sampler for all NFs and chains.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    on: bool,
    /// Sample timestamps (ns of simulated time), one per tick.
    pub t_ns: Vec<u64>,
    /// Per-NF series, indexed by NF id.
    pub nfs: Vec<NfSeries>,
    /// Per-chain series, indexed by chain id.
    pub chains: Vec<ChainSeries>,
    /// Mempool packets in flight at each tick.
    pub in_flight: Vec<u64>,
    /// Flows installed in the flow table at each tick.
    pub flows_active: Vec<u64>,
    /// Cumulative flows evicted by aging up to each tick.
    pub flows_evicted: Vec<u64>,
}

impl MetricsRecorder {
    /// A disabled recorder: every call is a no-op.
    pub fn off() -> Self {
        MetricsRecorder::default()
    }

    /// An enabled recorder (call [`MetricsRecorder::init`] before use).
    pub fn recording() -> Self {
        MetricsRecorder {
            on: true,
            ..MetricsRecorder::default()
        }
    }

    /// Is this recorder collecting samples?
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Size the series for the deployed NFs and chains. Called by the
    /// engine when the simulation starts.
    pub fn init<'a>(&mut self, nf_names: impl Iterator<Item = &'a str>, num_chains: usize) {
        if !self.on {
            return;
        }
        self.nfs = nf_names
            .map(|n| NfSeries {
                name: n.to_string(),
                ..NfSeries::default()
            })
            .collect();
        self.chains = vec![ChainSeries::default(); num_chains];
    }

    /// Append a series for an NF deployed mid-run (elastic scale-out
    /// replica). Ticks before its birth are zero-backfilled so every
    /// column stays aligned on `t_ns` — the CSV exporter indexes each
    /// series by tick for all NFs.
    pub fn add_nf_series(&mut self, name: &str) {
        if !self.on {
            return;
        }
        let n = self.samples();
        self.nfs.push(NfSeries {
            name: name.to_string(),
            qlen: vec![0; n], // nfv-lint: allow(hot-alloc) -- one-time backfill per scale-out action, not per packet
            throttled: vec![0; n], // nfv-lint: allow(hot-alloc) -- one-time backfill per scale-out action, not per packet
            shares: vec![0; n], // nfv-lint: allow(hot-alloc) -- one-time backfill per scale-out action, not per packet
            lambda_pps: vec![0.0; n], // nfv-lint: allow(hot-alloc) -- one-time backfill per scale-out action, not per packet
            svc_median_ns: vec![0; n], // nfv-lint: allow(hot-alloc) -- one-time backfill per scale-out action, not per packet
        });
    }

    /// Open a new sample column at time `t`.
    pub fn begin_tick(&mut self, t: SimTime, in_flight: u64) {
        if !self.on {
            return;
        }
        self.t_ns.push(t.as_nanos());
        self.in_flight.push(in_flight);
    }

    /// Record the flow-table column for the current tick: currently
    /// installed flows and the cumulative aged-out eviction count. Both
    /// are deterministic sim state, identical across flow-table index
    /// backends — the backend-dependent probe/rehash counters never
    /// appear in the metrics document.
    pub fn record_flows(&mut self, active: u64, evicted: u64) {
        if !self.on {
            return;
        }
        self.flows_active.push(active);
        self.flows_evicted.push(evicted);
    }

    /// Record NF `idx`'s column for the current tick.
    pub fn record_nf(
        &mut self,
        idx: usize,
        qlen: u64,
        throttled: bool,
        shares: u64,
        lambda_pps: f64,
        svc_median_ns: u64,
    ) {
        if !self.on {
            return;
        }
        let nf = &mut self.nfs[idx];
        nf.qlen.push(qlen);
        nf.throttled.push(u64::from(throttled));
        nf.shares.push(shares);
        nf.lambda_pps.push(lambda_pps);
        nf.svc_median_ns.push(svc_median_ns);
    }

    /// Record chain `idx`'s column for the current tick.
    pub fn record_chain(
        &mut self,
        idx: usize,
        throttled: bool,
        bottlenecks: u64,
        lat_p99_ns: u64,
        lat_p999_ns: u64,
    ) {
        if !self.on {
            return;
        }
        let c = &mut self.chains[idx];
        c.throttled.push(u64::from(throttled));
        c.bottlenecks.push(bottlenecks);
        c.lat_p99_ns.push(lat_p99_ns);
        c.lat_p999_ns.push(lat_p999_ns);
    }

    /// Number of completed sample ticks.
    pub fn samples(&self) -> usize {
        self.t_ns.len()
    }

    /// Render the whole recording as one JSON object. Byte-deterministic
    /// for a given recording.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"samples\":");
        let _ = write!(s, "{}", self.samples());
        s.push_str(",\"t_ns\":");
        json::push_u64_array(&mut s, &self.t_ns);
        s.push_str(",\"in_flight\":");
        json::push_u64_array(&mut s, &self.in_flight);
        s.push_str(",\"flows_active\":");
        json::push_u64_array(&mut s, &self.flows_active);
        s.push_str(",\"flows_evicted\":");
        json::push_u64_array(&mut s, &self.flows_evicted);
        s.push_str(",\"nfs\":[");
        for (i, nf) in self.nfs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json::push_str_lit(&mut s, &nf.name);
            s.push_str(",\"qlen\":");
            json::push_u64_array(&mut s, &nf.qlen);
            s.push_str(",\"throttled\":");
            json::push_u64_array(&mut s, &nf.throttled);
            s.push_str(",\"shares\":");
            json::push_u64_array(&mut s, &nf.shares);
            s.push_str(",\"lambda_pps\":");
            json::push_f64_array(&mut s, &nf.lambda_pps);
            s.push_str(",\"svc_median_ns\":");
            json::push_u64_array(&mut s, &nf.svc_median_ns);
            s.push('}');
        }
        s.push_str("],\"chains\":[");
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"throttled\":");
            json::push_u64_array(&mut s, &c.throttled);
            s.push_str(",\"bottlenecks\":");
            json::push_u64_array(&mut s, &c.bottlenecks);
            s.push_str(",\"lat_p99_ns\":");
            json::push_u64_array(&mut s, &c.lat_p99_ns);
            s.push_str(",\"lat_p999_ns\":");
            json::push_u64_array(&mut s, &c.lat_p999_ns);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Render as CSV: one row per (tick, NF) pair plus chain columns in a
    /// second section (long format, easy to load into pandas/gnuplot).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns,nf,name,qlen,throttled,shares,lambda_pps,svc_median_ns\n");
        for (i, &t) in self.t_ns.iter().enumerate() {
            for (nf_idx, nf) in self.nfs.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{t},{nf_idx},{},{},{},{},{},{}",
                    nf.name,
                    nf.qlen[i],
                    nf.throttled[i],
                    nf.shares[i],
                    nf.lambda_pps[i],
                    nf.svc_median_ns[i]
                );
            }
        }
        out.push_str(
            "\nt_ns,chain,throttled,bottlenecks,lat_p99_ns,lat_p999_ns,in_flight,flows_active,flows_evicted\n",
        );
        for (i, &t) in self.t_ns.iter().enumerate() {
            for (c_idx, c) in self.chains.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{t},{c_idx},{},{},{},{},{},{},{}",
                    c.throttled[i],
                    c.bottlenecks[i],
                    c.lat_p99_ns[i],
                    c.lat_p999_ns[i],
                    self.in_flight[i],
                    self.flows_active.get(i).copied().unwrap_or(0),
                    self.flows_evicted.get(i).copied().unwrap_or(0),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> MetricsRecorder {
        let mut m = MetricsRecorder::recording();
        m.init(["a", "b"].into_iter(), 1);
        m.begin_tick(SimTime::from_millis(1), 5);
        m.record_flows(7, 2);
        m.record_nf(0, 10, false, 1024, 1e6, 100);
        m.record_nf(1, 90, true, 512, 2e6, 550);
        m.record_chain(0, true, 1, 250_000, 900_000);
        m
    }

    #[test]
    fn add_nf_backfills_to_current_tick() {
        let mut m = sample_recorder(); // one completed tick
        m.add_nf_series("a~1");
        assert_eq!(m.nfs[2].name, "a~1");
        assert_eq!(m.nfs[2].qlen, vec![0], "birth tick backfilled");
        m.begin_tick(SimTime::from_millis(2), 0);
        m.record_flows(7, 2);
        m.record_nf(0, 11, false, 1024, 1e6, 100);
        m.record_nf(1, 80, true, 512, 2e6, 550);
        m.record_nf(2, 3, false, 1024, 5e5, 90);
        m.record_chain(0, true, 1, 250_000, 900_000);
        assert_eq!(m.nfs[2].qlen, vec![0, 3]);
        assert_eq!(m.nfs[2].qlen.len(), m.samples());
        // exporters index every series by tick: must not panic
        let csv = m.to_csv();
        assert!(csv.contains("a~1"));
    }

    #[test]
    fn off_recorder_ignores_add_nf_series() {
        let mut m = MetricsRecorder::off();
        m.add_nf_series("x");
        assert!(m.nfs.is_empty());
    }

    #[test]
    fn off_recorder_ignores_everything() {
        let mut m = MetricsRecorder::off();
        m.init(["a"].into_iter(), 1);
        m.begin_tick(SimTime::ZERO, 0);
        m.record_nf(0, 1, false, 1, 0.0, 0);
        assert_eq!(m.samples(), 0);
        assert!(m.nfs.is_empty());
    }

    #[test]
    fn columns_align() {
        let m = sample_recorder();
        assert_eq!(m.samples(), 1);
        assert_eq!(m.nfs[0].qlen, vec![10]);
        assert_eq!(m.nfs[1].throttled, vec![1]);
        assert_eq!(m.chains[0].bottlenecks, vec![1]);
        assert_eq!(m.in_flight, vec![5]);
    }

    #[test]
    fn json_is_stable() {
        let a = sample_recorder().to_json();
        let b = sample_recorder().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"samples\":1,"));
        assert!(a.contains("\"name\":\"b\""));
        assert!(a.contains("\"lambda_pps\":[1000000]"));
        assert!(a.contains("\"lat_p99_ns\":[250000],\"lat_p999_ns\":[900000]"));
        assert!(a.contains("\"flows_active\":[7],\"flows_evicted\":[2]"));
    }

    #[test]
    fn csv_has_both_sections() {
        let csv = sample_recorder().to_csv();
        assert!(csv.starts_with("t_ns,nf,name,"));
        assert!(csv.contains("1000000,1,b,90,1,512,2000000,550"));
        assert!(csv.contains("t_ns,chain,"));
        assert!(csv.contains("1000000,0,1,1,250000,900000,5,7,2"));
    }
}
