//! Deterministic event queue.
//!
//! The queue is a min-priority queue ordered by `(time, sequence)`. The
//! sequence number is assigned on insertion, so two events scheduled for
//! the same instant are delivered in insertion order. This makes
//! whole-simulation runs bit-for-bit reproducible for a given seed — a
//! property the experiment harness relies on.
//!
//! Two backing structures implement that contract (see [`QueueKind`]):
//!
//! - **Timer wheel** (the default): a hierarchical timer wheel specialized
//!   for the simulator's event mix — dense near-future periodic ticks
//!   (manager polls, `CoreRun`/`BatchDone` batch boundaries, NIC
//!   arrivals) plus a thin tail of far-future timers. 11 levels of 64
//!   slots cover the full `u64` nanosecond range; each level-0 slot holds
//!   exactly one timestamp, so same-instant events coalesce into one slot
//!   and drain FIFO with a single bitmap probe instead of one
//!   `O(log n)` heap operation each. Slot storage is recycled across
//!   pops (no per-event allocation once warm). See DESIGN.md §10 for the
//!   bucket-granularity, overflow and determinism arguments.
//! - **Binary heap**: the original `BinaryHeap<Entry>` implementation,
//!   kept as a differential oracle. The `heap-queue` cargo feature flips
//!   the build-wide default back to it, which is how CI byte-diffs the
//!   full quick suite across the two backends.
//!
//! Both backends pop identical `(time, seq, event)` streams — the
//! property tests in `tests/props.rs` and the unit tests below drive them
//! in lockstep over adversarial schedules.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Bits of time per wheel level: 64 slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels: `ceil(64 / SLOT_BITS)` covers the whole `u64` range.
const LEVELS: usize = 11;

/// Which backing structure an [`EventQueue`] uses. Both deliver the exact
/// same `(time, seq)` stream; the wheel is faster on the simulator's
/// event mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timer wheel (the default).
    Wheel,
    /// Binary heap — the reference implementation, kept for differential
    /// testing (`heap-queue` feature makes it the build default).
    Heap,
}

impl QueueKind {
    /// The build's default backend: the timer wheel, unless the
    /// `heap-queue` cargo feature flips the workspace back to the binary
    /// heap (used by CI to byte-diff the two implementations over the
    /// full quick suite).
    pub fn default_kind() -> QueueKind {
        if cfg!(feature = "heap-queue") {
            QueueKind::Heap
        } else {
            QueueKind::Wheel
        }
    }
}

impl Default for QueueKind {
    fn default() -> Self {
        QueueKind::default_kind()
    }
}

/// Self-profiling counters of one [`EventQueue`]. Deterministic for a
/// given event stream and backend; surfaced per cell in
/// `BENCH_timings.json` (never in the metrics document).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled.
    pub pushes: u64,
    /// Events delivered.
    pub pops: u64,
    /// Wheel slot cascades performed (0 on the heap backend).
    pub cascades: u64,
    /// Entries re-homed by cascades (0 on the heap backend).
    pub cascaded_entries: u64,
    /// Backing-store (re)allocations: wheel slot growth or heap growth.
    /// Flat after warm-up — the recycling guarantee.
    pub allocs: u64,
    /// Peak number of pending events.
    pub max_len: usize,
}

/// A scheduled entry: fires `event` at `at`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The hierarchical timer wheel.
///
/// Placement: an entry with timestamp `at` lives at the level of the
/// highest bit in which `at` differs from the cursor `cur` (the timestamp
/// of the last pop), at slot `(at >> 6·level) & 63`. Because `at ≥ cur`,
/// the occupied slot index at its level is strictly greater than the
/// cursor's (equal only at level 0 when `at == cur`), so every occupied
/// slot at the lowest occupied level is "ahead" of the cursor and the
/// first set bit of that level's occupancy bitmap is the global minimum's
/// slot. Level-0 slots hold exactly one timestamp each (`(cur & !63) |
/// slot`), kept in seq order; higher-level slots hold a time range and
/// are re-sorted by `(at, seq)` when cascaded, which restores the
/// insertion-order tie-break exactly.
struct Wheel<E> {
    /// `levels[level][slot]` — FIFO of entries; capacity is retained
    /// across drains, so steady-state operation performs no allocation.
    levels: Vec<Vec<VecDeque<WheelEntry<E>>>>,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Cursor: timestamp of the last pop (or a cascaded slot's start,
    /// transiently inside `pop_before`).
    cur: u64,
    len: usize,
    cascades: u64,
    cascaded_entries: u64,
    allocs: u64,
    /// Reused cascade buffer (drain target), avoiding a per-cascade Vec.
    scratch: Vec<WheelEntry<E>>,
}

struct WheelEntry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Wheel level housing a timestamp `at` relative to cursor `cur`:
/// the level of the highest differing bit (0 when equal).
fn level_of(cur: u64, at: u64) -> usize {
    debug_assert!(at >= cur);
    let x = cur ^ at;
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / SLOT_BITS) as usize
    }
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            cur: 0,
            len: 0,
            cascades: 0,
            cascaded_entries: 0,
            allocs: 0,
            scratch: Vec::new(),
        }
    }

    fn insert(&mut self, e: WheelEntry<E>) {
        let lvl = level_of(self.cur, e.at);
        let slot = ((e.at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        let q = &mut self.levels[lvl][slot];
        if q.len() == q.capacity() {
            self.allocs += 1;
        }
        q.push_back(e);
        self.occupied[lvl] |= 1 << slot;
        self.len += 1;
    }

    /// Lowest occupied level and its first occupied slot — the slot
    /// holding the global minimum (see the placement invariant above).
    fn first(&self) -> Option<(usize, usize)> {
        (0..LEVELS)
            .find(|&k| self.occupied[k] != 0)
            .map(|k| (k, self.occupied[k].trailing_zeros() as usize))
    }

    /// Start of `slot` at `lvl`, relative to the cursor's position.
    fn slot_start(&self, lvl: usize, slot: usize) -> u64 {
        let shift = SLOT_BITS * lvl as u32;
        let above = shift + SLOT_BITS;
        // Bits of `cur` above this level's span (shift-safe at the top
        // level, where the span runs off the end of the u64).
        let base = if above >= 64 {
            0
        } else {
            (self.cur >> above) << above
        };
        base | ((slot as u64) << shift)
    }

    fn peek_time(&self) -> Option<u64> {
        let (lvl, slot) = self.first()?;
        if lvl == 0 {
            // A level-0 slot holds exactly one timestamp.
            Some(self.slot_start(0, slot))
        } else {
            self.levels[lvl][slot].iter().map(|e| e.at).min()
        }
    }

    /// Pop the earliest entry if its timestamp is `<= limit`.
    ///
    /// Returns `None` **without mutating the wheel** when the earliest
    /// entry (if any) is past `limit`: a cascade is only performed once
    /// the slot is known to contain an entry `<= limit`, which guarantees
    /// the call then pops. The cursor therefore never outruns the last
    /// delivered timestamp across calls, keeping later `push`es at any
    /// `at >= now` valid.
    fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, E)> {
        loop {
            let (lvl, slot) = self.first()?;
            if lvl == 0 {
                let t = self.slot_start(0, slot);
                if t > limit {
                    return None;
                }
                let q = &mut self.levels[0][slot];
                let e = q.pop_front().expect("occupied slot is empty");
                if q.is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                self.len -= 1;
                debug_assert_eq!(e.at, t);
                self.cur = t;
                return Some((e.at, e.seq, e.event));
            }
            let min_at = self.levels[lvl][slot]
                .iter()
                .map(|e| e.at)
                .min()
                .expect("occupied slot is empty");
            if min_at > limit {
                return None;
            }
            // Fast path: a lone entry in a high-level slot is the global
            // minimum; deliver it directly. Advancing the cursor to its
            // timestamp is exactly the state a full cascade plus level-0
            // pop would have produced, minus the re-insertion round trip.
            // This is the common shape for sparse timelines (timers far
            // apart), where cascades would otherwise dominate.
            if self.levels[lvl][slot].len() == 1 {
                let e = self.levels[lvl][slot].pop_front().expect("len checked");
                self.occupied[lvl] &= !(1u64 << slot);
                self.len -= 1;
                self.cur = e.at;
                return Some((e.at, e.seq, e.event));
            }
            // Cascade: advance the cursor to the slot's start (so re-homed
            // entries land at strictly lower levels) and re-insert in
            // (time, seq) order, which keeps every level-0 slot sorted by
            // insertion sequence.
            let start = self.slot_start(lvl, slot);
            debug_assert!(start >= self.cur && start <= min_at);
            self.occupied[lvl] &= !(1u64 << slot);
            let mut batch = std::mem::take(&mut self.scratch);
            batch.extend(self.levels[lvl][slot].drain(..));
            self.len -= batch.len();
            self.cur = start;
            self.cascades += 1;
            self.cascaded_entries += batch.len() as u64;
            batch.sort_unstable_by_key(|e| (e.at, e.seq));
            for e in batch.drain(..) {
                self.insert(e);
            }
            self.scratch = batch;
        }
    }
}

enum Backend<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic min-priority queue of simulation events.
///
/// `E` is the simulation's event enum. The queue does not support removal;
/// consumers that need to cancel an event use *lazy invalidation*: keep a
/// generation counter next to the state the event touches, stamp the event
/// with the generation at scheduling time, and ignore stale events on
/// delivery. (This mirrors how timer wheels in network stacks handle
/// cancellation without a searchable structure. The engine counts such
/// discarded deliveries explicitly — `Report::stale_pops` — so both
/// backends agree on them by construction.)
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    now: SimTime,
    pushes: u64,
    pops: u64,
    heap_allocs: u64,
    max_len: usize,
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero, using the build's default
    /// backend ([`QueueKind::default_kind`]).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default_kind())
    }

    /// An empty queue using an explicit backend — differential tests run
    /// the same simulation on both kinds and compare digests.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            backend: match kind {
                QueueKind::Wheel => Backend::Wheel(Wheel::new()),
                QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            },
            seq: 0,
            now: SimTime::ZERO,
            pushes: 0,
            pops: 0,
            heap_allocs: 0,
            max_len: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.backend {
            Backend::Wheel(_) => QueueKind::Wheel,
            Backend::Heap(_) => QueueKind::Heap,
        }
    }

    /// Current simulated time: the timestamp of the last event popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: delivering an event before the
    /// current clock would silently corrupt causality, so it is a bug in
    /// the caller.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pushes += 1;
        match &mut self.backend {
            Backend::Wheel(w) => w.insert(WheelEntry {
                at: at.as_nanos(),
                seq,
                event,
            }),
            Backend::Heap(h) => {
                if h.len() == h.capacity() {
                    self.heap_allocs += 1;
                }
                h.push(Entry { at, seq, event });
            }
        }
        let len = self.len();
        if len > self.max_len {
            self.max_len = len;
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::MAX)
    }

    /// Pop the earliest event if its timestamp is `<= limit`, advancing
    /// the clock to it; `None` (and no state change) otherwise.
    ///
    /// This is the event loop's primitive: `pop_before(end)` replaces the
    /// `peek_time` + `pop` pair, so the wheel searches its bitmaps once
    /// per event instead of twice.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Wheel(w) => w
                .pop_before(limit.as_nanos())
                .map(|(at, _seq, event)| (SimTime::from_nanos(at), event)),
            Backend::Heap(h) => {
                if h.peek().is_none_or(|e| e.at > limit) {
                    None
                } else {
                    h.pop().map(|e| (e.at, e.event))
                }
            }
        };
        if let Some((t, _)) = &popped {
            debug_assert!(*t >= self.now);
            self.now = *t;
            self.pops += 1;
        }
        popped
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek_time().map(SimTime::from_nanos),
            Backend::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.len,
            Backend::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters (see [`QueueStats`]).
    pub fn stats(&self) -> QueueStats {
        let (cascades, cascaded_entries, allocs) = match &self.backend {
            Backend::Wheel(w) => (w.cascades, w.cascaded_entries, w.allocs),
            Backend::Heap(_) => (0, 0, self.heap_allocs),
        };
        QueueStats {
            pushes: self.pushes,
            pops: self.pops,
            cascades,
            cascaded_entries,
            allocs,
            max_len: self.max_len,
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    const KINDS: [QueueKind; 2] = [QueueKind::Wheel, QueueKind::Heap];

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_nanos(30), "c");
            q.push(SimTime::from_nanos(10), "a");
            q.push(SimTime::from_nanos(20), "b");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(5);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_micros(7), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_micros(7));
        }
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        q.pop();
        q.push(SimTime::from_micros(3), ());
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn heap_rejects_events_in_the_past() {
        let mut q = EventQueue::with_kind(QueueKind::Heap);
        q.push(SimTime::from_micros(7), ());
        q.pop();
        q.push(SimTime::from_micros(3), ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_nanos(10), 1u32);
            q.push(SimTime::from_nanos(50), 5);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t.as_nanos(), e), (10, 1));
            // scheduling relative to 'now' is the common pattern
            q.push(q.now() + Duration::from_nanos(5), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 5);
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
        }
    }

    #[test]
    fn default_kind_tracks_feature() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::default_kind());
    }

    #[test]
    fn pop_before_respects_limit_and_is_non_destructive() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_nanos(100), "a");
            q.push(SimTime::from_nanos(5_000_000), "far");
            assert_eq!(q.pop_before(SimTime::from_nanos(50)), None);
            assert_eq!(q.len(), 2);
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(
                q.pop_before(SimTime::from_nanos(100)),
                Some((SimTime::from_nanos(100), "a"))
            );
            // A refused probe must not corrupt later, earlier pushes.
            assert_eq!(q.pop_before(SimTime::from_nanos(200)), None);
            q.push(SimTime::from_nanos(150), "b");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "far");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn far_future_timers_cascade_correctly() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            // One event per wheel level, far apart, pushed out of order.
            let times = [
                1u64 << 40,
                1 << 20,
                3,
                (1 << 30) + 7,
                u64::MAX / 2,
                (1 << 12) + 1,
            ];
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut sorted: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            sorted.sort_unstable();
            for (t, i) in sorted {
                assert_eq!(q.pop(), Some((SimTime::from_nanos(t), i)));
            }
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn same_instant_burst_survives_cascade() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            // A burst far in the future: the wheel parks it at a high
            // level and must restore insertion order when cascading.
            let t = SimTime::from_nanos((1 << 25) + 12_345);
            for i in 0..64 {
                q.push(t, i);
            }
            // Interleave an earlier event so the burst is not popped
            // straight from the insertion slot.
            q.push(SimTime::from_nanos(9), 1000);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(9), 1000)));
            for i in 0..64 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        }
    }

    #[test]
    fn wheel_and_heap_agree_on_lcg_stream() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // driven in lockstep over both backends.
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut n = 0u64;
        for _ in 0..5_000 {
            let r = lcg();
            if r % 3 != 0 || wheel.is_empty() {
                // Mix of near-future, same-tick and far-future offsets.
                let off = match r % 7 {
                    0 => 0,
                    1..=4 => r % 1_000,
                    5 => r % 1_000_000,
                    _ => (r % 1_000) << 24,
                };
                let at = wheel.now() + Duration::from_nanos(off);
                wheel.push(at, n);
                heap.push(at, n);
                n += 1;
            } else if r % 5 == 0 {
                let limit = wheel.now() + Duration::from_nanos(lcg() % 10_000);
                assert_eq!(wheel.pop_before(limit), heap.pop_before(limit));
            } else {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        let (ws, hs) = (wheel.stats(), heap.stats());
        assert_eq!(ws.pushes, hs.pushes);
        assert_eq!(ws.pops, hs.pops);
        assert_eq!(ws.pops, ws.pushes);
    }

    #[test]
    fn stats_count_ops_and_recycling() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        for round in 0..3 {
            for i in 0..100u64 {
                q.push(q.now() + Duration::from_nanos(i + 1), i);
            }
            while q.pop().is_some() {}
            if round == 0 {
                // Slot storage allocated during the first round...
                assert!(q.stats().allocs > 0);
            }
        }
        let s = q.stats();
        assert_eq!(s.pushes, 300);
        assert_eq!(s.pops, 300);
        assert_eq!(s.max_len, 100);
        // ...is recycled afterwards: warm rounds allocate nothing, so the
        // count stays well below one per event.
        assert!(
            s.allocs < 150,
            "slot storage not recycled: {} allocs for {} pushes",
            s.allocs,
            s.pushes
        );
    }
}
