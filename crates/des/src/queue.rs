//! Deterministic event queue.
//!
//! The queue is a min-priority queue ordered by `(time, sequence)`. The
//! sequence number is assigned on insertion, so two events scheduled for
//! the same instant are delivered in insertion order. This makes
//! whole-simulation runs bit-for-bit reproducible for a given seed — a
//! property the experiment harness relies on.
//!
//! Three backing structures implement that contract (see [`QueueKind`]):
//!
//! - **Arena timer wheel** (the default): a hierarchical timer wheel whose
//!   entries live in one slab (`Vec` of nodes linked by `u32` indices)
//!   instead of one `VecDeque` per slot. Slots are `(head, tail)` index
//!   pairs, so the 704-slot wheel costs ~5.6 KB of slot state plus a
//!   single recycled node arena — event payloads are bump-allocated into
//!   the slab once and recycled through a freelist, never freed
//!   individually (freed wholesale when the `Simulation` drops). Draining
//!   a level-0 slot — which holds exactly one timestamp, in insertion
//!   order by construction — is one bitmap probe plus a list walk, which
//!   is what makes [`EventQueue::pop_batch_before`] (timer coalescing)
//!   cheap. See DESIGN.md §15.
//! - **Classic timer wheel**: the previous `VecDeque`-per-slot wheel,
//!   kept as a differential oracle. The `classic-wheel` cargo feature
//!   flips the build-wide default back to it.
//! - **Binary heap**: the original `BinaryHeap<Entry>` implementation,
//!   kept as a second oracle. The `heap-queue` cargo feature flips the
//!   build-wide default to it (and wins over `classic-wheel`).
//!
//! All backends pop identical `(time, seq, event)` streams — the
//! property tests in `tests/props.rs` and the unit tests below drive them
//! in lockstep over adversarial schedules. Wheel placement, cascade and
//! determinism arguments are in DESIGN.md §10.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Bits of time per wheel level: 64 slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels: `ceil(64 / SLOT_BITS)` covers the whole `u64` range.
const LEVELS: usize = 11;
/// Null link in the arena wheel's intrusive lists.
const NIL: u32 = u32::MAX;

/// Which backing structure an [`EventQueue`] uses. All deliver the exact
/// same `(time, seq)` stream; the arena wheel is fastest on the
/// simulator's event mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Arena-backed hierarchical timer wheel (the default).
    Wheel,
    /// `VecDeque`-per-slot timer wheel — the previous implementation,
    /// kept for differential testing (`classic-wheel` feature makes it
    /// the build default).
    WheelClassic,
    /// Binary heap — the reference implementation, kept for differential
    /// testing (`heap-queue` feature makes it the build default).
    Heap,
}

impl QueueKind {
    /// The build's default backend: the arena timer wheel, unless the
    /// `classic-wheel` cargo feature flips the workspace to the
    /// `VecDeque` wheel or `heap-queue` (which wins) flips it to the
    /// binary heap — how CI byte-diffs the implementations over the full
    /// quick suite.
    pub fn default_kind() -> QueueKind {
        if cfg!(feature = "heap-queue") {
            QueueKind::Heap
        } else if cfg!(feature = "classic-wheel") {
            QueueKind::WheelClassic
        } else {
            QueueKind::Wheel
        }
    }
}

impl Default for QueueKind {
    fn default() -> Self {
        QueueKind::default_kind()
    }
}

/// Self-profiling counters of one [`EventQueue`]. Deterministic for a
/// given event stream and backend; surfaced per cell in
/// `BENCH_timings.json` (never in the metrics document).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled.
    pub pushes: u64,
    /// Events delivered.
    pub pops: u64,
    /// Wheel slot cascades performed (0 on the heap backend).
    pub cascades: u64,
    /// Entries re-homed by cascades (0 on the heap backend).
    pub cascaded_entries: u64,
    /// Backing-store (re)allocations: wheel slot/arena growth or heap
    /// growth. Flat after warm-up — the recycling guarantee.
    pub allocs: u64,
    /// Peak number of pending events.
    pub max_len: usize,
    /// Events delivered as the non-first member of a
    /// [`EventQueue::pop_batch_before`] batch — same-instant deliveries
    /// that cost no extra wheel probe. 0 when the engine's coalescing
    /// knob is off.
    pub coalesced_pops: u64,
    /// Periodic ticks whose handler body was skipped by the engine's
    /// idle skip-ahead (always 0 from the queue itself; the engine
    /// injects its counter into the report's copy).
    pub skipped_ticks: u64,
}

/// A scheduled entry: fires `event` at `at`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Wheel level housing a timestamp `at` relative to cursor `cur`:
/// the level of the highest differing bit (0 when equal).
fn level_of(cur: u64, at: u64) -> usize {
    debug_assert!(at >= cur);
    let x = cur ^ at;
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// The classic hierarchical timer wheel (differential oracle).
///
/// Placement: an entry with timestamp `at` lives at the level of the
/// highest bit in which `at` differs from the cursor `cur` (the timestamp
/// of the last pop), at slot `(at >> 6·level) & 63`. Because `at ≥ cur`,
/// the occupied slot index at its level is strictly greater than the
/// cursor's (equal only at level 0 when `at == cur`), so every occupied
/// slot at the lowest occupied level is "ahead" of the cursor and the
/// first set bit of that level's occupancy bitmap is the global minimum's
/// slot. Level-0 slots hold exactly one timestamp each (`(cur & !63) |
/// slot`), kept in seq order; higher-level slots hold a time range and
/// are re-sorted by `(at, seq)` when cascaded, which restores the
/// insertion-order tie-break exactly.
struct ClassicWheel<E> {
    /// `levels[level][slot]` — FIFO of entries; capacity is retained
    /// across drains, so steady-state operation performs no allocation.
    levels: Vec<Vec<VecDeque<WheelEntry<E>>>>,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Cursor: timestamp of the last pop (or a cascaded slot's start,
    /// transiently inside `pop_before`).
    cur: u64,
    len: usize,
    cascades: u64,
    cascaded_entries: u64,
    allocs: u64,
    /// Reused cascade buffer (drain target), avoiding a per-cascade Vec.
    scratch: Vec<WheelEntry<E>>,
}

struct WheelEntry<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> ClassicWheel<E> {
    fn new() -> Self {
        ClassicWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            cur: 0,
            len: 0,
            cascades: 0,
            cascaded_entries: 0,
            allocs: 0,
            scratch: Vec::new(),
        }
    }

    fn insert(&mut self, e: WheelEntry<E>) {
        let lvl = level_of(self.cur, e.at);
        let slot = ((e.at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        let q = &mut self.levels[lvl][slot];
        if q.len() == q.capacity() {
            self.allocs += 1;
        }
        q.push_back(e);
        self.occupied[lvl] |= 1 << slot;
        self.len += 1;
    }

    /// Lowest occupied level and its first occupied slot — the slot
    /// holding the global minimum (see the placement invariant above).
    fn first(&self) -> Option<(usize, usize)> {
        (0..LEVELS)
            .find(|&k| self.occupied[k] != 0)
            .map(|k| (k, self.occupied[k].trailing_zeros() as usize))
    }

    /// Start of `slot` at `lvl`, relative to the cursor's position.
    fn slot_start(&self, lvl: usize, slot: usize) -> u64 {
        let shift = SLOT_BITS * lvl as u32;
        let above = shift + SLOT_BITS;
        // Bits of `cur` above this level's span (shift-safe at the top
        // level, where the span runs off the end of the u64).
        let base = if above >= 64 {
            0
        } else {
            (self.cur >> above) << above
        };
        base | ((slot as u64) << shift)
    }

    fn peek_time(&self) -> Option<u64> {
        let (lvl, slot) = self.first()?;
        if lvl == 0 {
            // A level-0 slot holds exactly one timestamp.
            Some(self.slot_start(0, slot))
        } else {
            self.levels[lvl][slot].iter().map(|e| e.at).min()
        }
    }

    /// Pop the earliest entry if its timestamp is `<= limit`.
    ///
    /// Returns `None` **without mutating the wheel** when the earliest
    /// entry (if any) is past `limit`: a cascade is only performed once
    /// the slot is known to contain an entry `<= limit`, which guarantees
    /// the call then pops. The cursor therefore never outruns the last
    /// delivered timestamp across calls, keeping later `push`es at any
    /// `at >= now` valid.
    fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, E)> {
        loop {
            let (lvl, slot) = self.first()?;
            if lvl == 0 {
                let t = self.slot_start(0, slot);
                if t > limit {
                    return None;
                }
                let q = &mut self.levels[0][slot];
                let e = q.pop_front().expect("occupied slot is empty");
                if q.is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                self.len -= 1;
                debug_assert_eq!(e.at, t);
                self.cur = t;
                return Some((e.at, e.seq, e.event));
            }
            let min_at = self.levels[lvl][slot]
                .iter()
                .map(|e| e.at)
                .min()
                .expect("occupied slot is empty");
            if min_at > limit {
                return None;
            }
            // Fast path: a lone entry in a high-level slot is the global
            // minimum; deliver it directly. Advancing the cursor to its
            // timestamp is exactly the state a full cascade plus level-0
            // pop would have produced, minus the re-insertion round trip.
            // This is the common shape for sparse timelines (timers far
            // apart), where cascades would otherwise dominate.
            if self.levels[lvl][slot].len() == 1 {
                let e = self.levels[lvl][slot].pop_front().expect("len checked");
                self.occupied[lvl] &= !(1u64 << slot);
                self.len -= 1;
                self.cur = e.at;
                return Some((e.at, e.seq, e.event));
            }
            // Cascade: advance the cursor to the slot's start (so re-homed
            // entries land at strictly lower levels) and re-insert in
            // (time, seq) order, which keeps every level-0 slot sorted by
            // insertion sequence.
            let start = self.slot_start(lvl, slot);
            debug_assert!(start >= self.cur && start <= min_at);
            self.occupied[lvl] &= !(1u64 << slot);
            let mut batch = std::mem::take(&mut self.scratch);
            batch.extend(self.levels[lvl][slot].drain(..));
            self.len -= batch.len();
            self.cur = start;
            self.cascades += 1;
            self.cascaded_entries += batch.len() as u64;
            batch.sort_unstable_by_key(|e| (e.at, e.seq));
            for e in batch.drain(..) {
                self.insert(e);
            }
            self.scratch = batch;
        }
    }
}

/// One slab node of the arena wheel: the entry plus its intrusive link.
/// `event` is `Some` while linked into a slot, `None` on the freelist
/// (`next` then links the freelist instead).
struct ArenaNode<E> {
    at: u64,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// The arena-backed hierarchical timer wheel (the default backend).
///
/// Same placement/cascade scheme as [`ClassicWheel`] — the determinism
/// argument (DESIGN.md §10) is unchanged — but entries live in one slab
/// and slots are `(head, tail)` `u32` pairs linking them intrusively.
/// Nodes are recycled through a freelist: the arena grows to the
/// simulation's peak pending-event count once, then steady-state pushes
/// and pops touch only the slab (event payloads are dropped wholesale
/// with the arena at teardown). A level-0 slot drain
/// ([`ArenaWheel::pop_batch_before`]) hands back every same-instant
/// entry from a single bitmap probe, which is what makes engine-level
/// timer coalescing cheap (DESIGN.md §15).
struct ArenaWheel<E> {
    /// The node slab; grows monotonically to peak occupancy, recycled
    /// through `free_head`.
    nodes: Vec<ArenaNode<E>>,
    /// Head of the freelist threaded through `ArenaNode::next`.
    free_head: u32,
    /// `(head, tail)` per slot, row-major `[level][slot]`; `NIL` when
    /// empty.
    slots: Vec<(u32, u32)>,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Cursor: timestamp of the last pop (or a cascaded slot's start,
    /// transiently inside `pop_before`).
    cur: u64,
    len: usize,
    cascades: u64,
    cascaded_entries: u64,
    allocs: u64,
    /// Reused cascade buffer of `(at, seq, node)` triples.
    scratch: Vec<(u64, u64, u32)>,
}

impl<E> ArenaWheel<E> {
    fn new() -> Self {
        ArenaWheel {
            nodes: Vec::new(),
            free_head: NIL,
            slots: vec![(NIL, NIL); LEVELS * SLOTS],
            occupied: [0; LEVELS],
            cur: 0,
            len: 0,
            cascades: 0,
            cascaded_entries: 0,
            allocs: 0,
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn slot_index(lvl: usize, slot: usize) -> usize {
        lvl * SLOTS + slot
    }

    /// Start of `slot` at `lvl`, relative to the cursor's position
    /// (identical to [`ClassicWheel::slot_start`]).
    fn slot_start(&self, lvl: usize, slot: usize) -> u64 {
        let shift = SLOT_BITS * lvl as u32;
        let above = shift + SLOT_BITS;
        let base = if above >= 64 {
            0
        } else {
            (self.cur >> above) << above
        };
        base | ((slot as u64) << shift)
    }

    fn first(&self) -> Option<(usize, usize)> {
        (0..LEVELS)
            .find(|&k| self.occupied[k] != 0)
            .map(|k| (k, self.occupied[k].trailing_zeros() as usize))
    }

    /// Take a node off the freelist or grow the slab.
    fn alloc_node(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let id = self.free_head;
            let n = &mut self.nodes[id as usize];
            debug_assert!(n.event.is_none());
            self.free_head = n.next;
            n.at = at;
            n.seq = seq;
            n.next = NIL;
            n.event = Some(event);
            id
        } else {
            if self.nodes.len() == self.nodes.capacity() {
                self.allocs += 1;
            }
            let id = self.nodes.len() as u32;
            self.nodes.push(ArenaNode {
                at,
                seq,
                next: NIL,
                event: Some(event),
            });
            id
        }
    }

    #[inline]
    fn free_node(&mut self, id: u32) {
        let head = self.free_head;
        let n = &mut self.nodes[id as usize];
        debug_assert!(n.event.is_none());
        n.next = head;
        self.free_head = id;
    }

    /// Append node `id` to the tail of its slot's list (insertion order
    /// within a slot is therefore `seq` order, same as the classic
    /// wheel's `push_back`).
    fn link(&mut self, id: u32) {
        let at = self.nodes[id as usize].at;
        let lvl = level_of(self.cur, at);
        let slot = ((at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        let si = Self::slot_index(lvl, slot);
        let (head, tail) = self.slots[si];
        if head == NIL {
            self.slots[si] = (id, id);
        } else {
            self.nodes[tail as usize].next = id;
            self.slots[si] = (head, id);
        }
        self.occupied[lvl] |= 1 << slot;
        self.len += 1;
    }

    fn insert(&mut self, at: u64, seq: u64, event: E) {
        let id = self.alloc_node(at, seq, event);
        self.link(id);
    }

    /// Minimum timestamp in a slot's list.
    fn slot_min_at(&self, head: u32) -> u64 {
        let mut min = u64::MAX;
        let mut id = head;
        while id != NIL {
            let n = &self.nodes[id as usize];
            min = min.min(n.at);
            id = n.next;
        }
        min
    }

    fn peek_time(&self) -> Option<u64> {
        let (lvl, slot) = self.first()?;
        if lvl == 0 {
            Some(self.slot_start(0, slot))
        } else {
            Some(self.slot_min_at(self.slots[Self::slot_index(lvl, slot)].0))
        }
    }

    /// Detach a lone node (slot's head == tail) and return its payload.
    fn take_lone(&mut self, lvl: usize, slot: usize, id: u32) -> (u64, u64, E) {
        let n = &mut self.nodes[id as usize];
        let at = n.at;
        let seq = n.seq;
        let event = n.event.take().expect("linked node has no event");
        self.slots[Self::slot_index(lvl, slot)] = (NIL, NIL);
        self.occupied[lvl] &= !(1u64 << slot);
        self.free_node(id);
        self.len -= 1;
        (at, seq, event)
    }

    /// Cascade a multi-entry high-level slot toward level 0 (same scheme
    /// and determinism argument as [`ClassicWheel::pop_before`]).
    fn cascade(&mut self, lvl: usize, slot: usize, start: u64) {
        let si = Self::slot_index(lvl, slot);
        let (head, _) = self.slots[si];
        self.slots[si] = (NIL, NIL);
        self.occupied[lvl] &= !(1u64 << slot);
        let mut batch = std::mem::take(&mut self.scratch);
        debug_assert!(batch.is_empty());
        let mut id = head;
        while id != NIL {
            let n = &self.nodes[id as usize];
            batch.push((n.at, n.seq, id));
            id = n.next;
        }
        self.len -= batch.len();
        self.cur = start;
        self.cascades += 1;
        self.cascaded_entries += batch.len() as u64;
        batch.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        for &(_, _, id) in &batch {
            self.nodes[id as usize].next = NIL;
            self.link(id);
        }
        batch.clear();
        self.scratch = batch;
    }

    /// Pop the earliest entry if its timestamp is `<= limit`; same
    /// no-mutation-on-refusal contract as [`ClassicWheel::pop_before`].
    fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, E)> {
        loop {
            let (lvl, slot) = self.first()?;
            let si = Self::slot_index(lvl, slot);
            if lvl == 0 {
                let t = self.slot_start(0, slot);
                if t > limit {
                    return None;
                }
                let (head, tail) = self.slots[si];
                let n = &mut self.nodes[head as usize];
                let at = n.at;
                let seq = n.seq;
                let event = n.event.take().expect("linked node has no event");
                let next = n.next;
                if head == tail {
                    self.slots[si] = (NIL, NIL);
                    self.occupied[0] &= !(1u64 << slot);
                } else {
                    self.slots[si] = (next, tail);
                }
                self.free_node(head);
                self.len -= 1;
                debug_assert_eq!(at, t);
                self.cur = t;
                return Some((at, seq, event));
            }
            let (head, tail) = self.slots[si];
            let min_at = self.slot_min_at(head);
            if min_at > limit {
                return None;
            }
            // Lone-entry fast path, as in the classic wheel.
            if head == tail {
                let (at, seq, event) = self.take_lone(lvl, slot, head);
                self.cur = at;
                return Some((at, seq, event));
            }
            let start = self.slot_start(lvl, slot);
            debug_assert!(start >= self.cur && start <= min_at);
            self.cascade(lvl, slot, start);
        }
    }

    /// Pop the earliest entry (if due by `limit`) and spill every *other*
    /// entry at the same timestamp into `out`, in `(time, seq)` order.
    /// One bitmap probe per batch: a level-0 slot holds exactly one
    /// timestamp and its list is already in seq order, so the whole slot
    /// is the batch — and a single-entry batch (the common case) never
    /// touches `out` at all.
    fn pop_batch_before(&mut self, limit: u64, out: &mut Vec<(SimTime, E)>) -> Option<(u64, E)> {
        loop {
            let (lvl, slot) = self.first()?;
            let si = Self::slot_index(lvl, slot);
            if lvl == 0 {
                let t = self.slot_start(0, slot);
                if t > limit {
                    return None;
                }
                let (head, _) = self.slots[si];
                self.slots[si] = (NIL, NIL);
                self.occupied[0] &= !(1u64 << slot);
                let n = &mut self.nodes[head as usize];
                debug_assert_eq!(n.at, t);
                let first_ev = n.event.take().expect("linked node has no event");
                let mut id = n.next;
                self.free_node(head);
                self.len -= 1;
                let st = SimTime::from_nanos(t);
                while id != NIL {
                    let n = &mut self.nodes[id as usize];
                    debug_assert_eq!(n.at, t);
                    let event = n.event.take().expect("linked node has no event");
                    let next = n.next;
                    out.push((st, event));
                    self.len -= 1;
                    self.free_node(id);
                    id = next;
                }
                self.cur = t;
                return Some((t, first_ev));
            }
            let (head, tail) = self.slots[si];
            let min_at = self.slot_min_at(head);
            if min_at > limit {
                return None;
            }
            if head == tail {
                // A lone high-level entry is the only entry in its slot's
                // whole time range, hence the only one at its instant:
                // a batch of one.
                let (at, _seq, event) = self.take_lone(lvl, slot, head);
                self.cur = at;
                return Some((at, event));
            }
            let start = self.slot_start(lvl, slot);
            debug_assert!(start >= self.cur && start <= min_at);
            self.cascade(lvl, slot, start);
        }
    }
}

enum Backend<E> {
    Arena(ArenaWheel<E>),
    Classic(ClassicWheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic min-priority queue of simulation events.
///
/// `E` is the simulation's event enum. The queue does not support removal;
/// consumers that need to cancel an event use *lazy invalidation*: keep a
/// generation counter next to the state the event touches, stamp the event
/// with the generation at scheduling time, and ignore stale events on
/// delivery. (This mirrors how timer wheels in network stacks handle
/// cancellation without a searchable structure. The engine counts such
/// discarded deliveries explicitly — `Report::stale_pops` — so both
/// backends agree on them by construction.)
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    now: SimTime,
    pushes: u64,
    pops: u64,
    heap_allocs: u64,
    coalesced_pops: u64,
    max_len: usize,
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero, using the build's default
    /// backend ([`QueueKind::default_kind`]).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default_kind())
    }

    /// An empty queue using an explicit backend — differential tests run
    /// the same simulation on both kinds and compare digests.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            backend: match kind {
                QueueKind::Wheel => Backend::Arena(ArenaWheel::new()),
                QueueKind::WheelClassic => Backend::Classic(ClassicWheel::new()),
                QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            },
            seq: 0,
            now: SimTime::ZERO,
            pushes: 0,
            pops: 0,
            heap_allocs: 0,
            coalesced_pops: 0,
            max_len: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.backend {
            Backend::Arena(_) => QueueKind::Wheel,
            Backend::Classic(_) => QueueKind::WheelClassic,
            Backend::Heap(_) => QueueKind::Heap,
        }
    }

    /// Current simulated time: the timestamp of the last event popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: delivering an event before the
    /// current clock would silently corrupt causality, so it is a bug in
    /// the caller.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pushes += 1;
        match &mut self.backend {
            Backend::Arena(w) => w.insert(at.as_nanos(), seq, event),
            Backend::Classic(w) => w.insert(WheelEntry {
                at: at.as_nanos(),
                seq,
                event,
            }),
            Backend::Heap(h) => {
                if h.len() == h.capacity() {
                    self.heap_allocs += 1;
                }
                h.push(Entry { at, seq, event });
            }
        }
        let len = self.len();
        if len > self.max_len {
            self.max_len = len;
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::MAX)
    }

    /// Pop the earliest event if its timestamp is `<= limit`, advancing
    /// the clock to it; `None` (and no state change) otherwise.
    ///
    /// This is the event loop's primitive: `pop_before(end)` replaces the
    /// `peek_time` + `pop` pair, so the wheel searches its bitmaps once
    /// per event instead of twice.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Arena(w) => w
                .pop_before(limit.as_nanos())
                .map(|(at, _seq, event)| (SimTime::from_nanos(at), event)),
            Backend::Classic(w) => w
                .pop_before(limit.as_nanos())
                .map(|(at, _seq, event)| (SimTime::from_nanos(at), event)),
            Backend::Heap(h) => {
                if h.peek().is_none_or(|e| e.at > limit) {
                    None
                } else {
                    h.pop().map(|e| (e.at, e.event))
                }
            }
        };
        if let Some((t, _)) = &popped {
            debug_assert!(*t >= self.now);
            self.now = *t;
            self.pops += 1;
        }
        popped
    }

    /// Pop the earliest event if its timestamp `t` is `<= limit` — and
    /// with it, **every other** event at `t`, appended to `out` in
    /// `(time, seq)` order (`out` is cleared first). The clock advances
    /// to `t`. `None` means no event was due, with no state change —
    /// same refusal contract as [`EventQueue::pop_before`].
    ///
    /// This is the timer-coalescing primitive: a run loop handling the
    /// returned event and then draining `out` observes the exact same
    /// `(time, seq)` stream as one calling `pop_before` per event —
    /// events pushed while a batch is being processed carry higher
    /// sequence numbers than every batch member, so they sort after the
    /// batch at the same instant and are picked up by the next call. On
    /// the arena wheel a batch costs one bitmap probe, and a
    /// single-event batch (the common case) never touches `out`; the
    /// oracle backends fall back to a peek/pop loop.
    pub fn pop_batch_before(
        &mut self,
        limit: SimTime,
        out: &mut Vec<(SimTime, E)>,
    ) -> Option<(SimTime, E)> {
        out.clear();
        let first = if let Backend::Arena(w) = &mut self.backend {
            let first = w
                .pop_batch_before(limit.as_nanos(), out)
                .map(|(at, event)| (SimTime::from_nanos(at), event));
            if let Some((t, _)) = &first {
                debug_assert!(*t >= self.now);
                self.now = *t;
                self.pops += 1 + out.len() as u64;
            }
            first
        } else {
            // Oracle backends: peek/pop loop (correct, not optimized).
            let first = self.pop_before(limit);
            if let Some((t, _)) = &first {
                let t = *t;
                while self.peek_time() == Some(t) {
                    let e = self.pop_before(limit).expect("peeked event vanished");
                    out.push(e);
                }
            }
            first
        };
        self.coalesced_pops += out.len() as u64;
        first
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Arena(w) => w.peek_time().map(SimTime::from_nanos),
            Backend::Classic(w) => w.peek_time().map(SimTime::from_nanos),
            Backend::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Arena(w) => w.len,
            Backend::Classic(w) => w.len,
            Backend::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters (see [`QueueStats`]).
    pub fn stats(&self) -> QueueStats {
        let (cascades, cascaded_entries, allocs) = match &self.backend {
            Backend::Arena(w) => (w.cascades, w.cascaded_entries, w.allocs),
            Backend::Classic(w) => (w.cascades, w.cascaded_entries, w.allocs),
            Backend::Heap(_) => (0, 0, self.heap_allocs),
        };
        QueueStats {
            pushes: self.pushes,
            pops: self.pops,
            cascades,
            cascaded_entries,
            allocs,
            max_len: self.max_len,
            coalesced_pops: self.coalesced_pops,
            skipped_ticks: 0,
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    const KINDS: [QueueKind; 3] = [QueueKind::Wheel, QueueKind::WheelClassic, QueueKind::Heap];

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_nanos(30), "c");
            q.push(SimTime::from_nanos(10), "a");
            q.push(SimTime::from_nanos(20), "b");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(5);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_micros(7), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_micros(7));
        }
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        q.pop();
        q.push(SimTime::from_micros(3), ());
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn heap_rejects_events_in_the_past() {
        let mut q = EventQueue::with_kind(QueueKind::Heap);
        q.push(SimTime::from_micros(7), ());
        q.pop();
        q.push(SimTime::from_micros(3), ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_nanos(10), 1u32);
            q.push(SimTime::from_nanos(50), 5);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t.as_nanos(), e), (10, 1));
            // scheduling relative to 'now' is the common pattern
            q.push(q.now() + Duration::from_nanos(5), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 5);
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
        }
    }

    #[test]
    fn default_kind_tracks_feature() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::default_kind());
    }

    #[test]
    fn pop_before_respects_limit_and_is_non_destructive() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_nanos(100), "a");
            q.push(SimTime::from_nanos(5_000_000), "far");
            assert_eq!(q.pop_before(SimTime::from_nanos(50)), None);
            assert_eq!(q.len(), 2);
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(
                q.pop_before(SimTime::from_nanos(100)),
                Some((SimTime::from_nanos(100), "a"))
            );
            // A refused probe must not corrupt later, earlier pushes.
            assert_eq!(q.pop_before(SimTime::from_nanos(200)), None);
            q.push(SimTime::from_nanos(150), "b");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "far");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn far_future_timers_cascade_correctly() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            // One event per wheel level, far apart, pushed out of order.
            let times = [
                1u64 << 40,
                1 << 20,
                3,
                (1 << 30) + 7,
                u64::MAX / 2,
                (1 << 12) + 1,
            ];
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut sorted: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            sorted.sort_unstable();
            for (t, i) in sorted {
                assert_eq!(q.pop(), Some((SimTime::from_nanos(t), i)));
            }
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn same_instant_burst_survives_cascade() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            // A burst far in the future: the wheel parks it at a high
            // level and must restore insertion order when cascading.
            let t = SimTime::from_nanos((1 << 25) + 12_345);
            for i in 0..64 {
                q.push(t, i);
            }
            // Interleave an earlier event so the burst is not popped
            // straight from the insertion slot.
            q.push(SimTime::from_nanos(9), 1000);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(9), 1000)));
            for i in 0..64 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        }
    }

    #[test]
    fn batch_pop_drains_whole_instant_in_seq_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(100);
            for i in 0..10 {
                q.push(t, i);
            }
            q.push(SimTime::from_nanos(200), 99);
            let mut out = Vec::new();
            assert_eq!(
                q.pop_batch_before(SimTime::from_nanos(500), &mut out),
                Some((t, 0))
            );
            assert_eq!(out, (1..10).map(|i| (t, i)).collect::<Vec<_>>());
            assert_eq!(q.now(), t);
            assert_eq!(q.len(), 1);
            // Next batch picks up the later instant — a singleton batch
            // never touches `out`.
            assert_eq!(
                q.pop_batch_before(SimTime::from_nanos(500), &mut out),
                Some((SimTime::from_nanos(200), 99))
            );
            assert!(out.is_empty());
            // Refusal: nothing due within the limit, no state change.
            q.push(SimTime::from_nanos(900), 7);
            assert_eq!(q.pop_batch_before(SimTime::from_nanos(500), &mut out), None);
            assert!(out.is_empty());
            assert_eq!(q.len(), 1);
            assert_eq!(q.now(), SimTime::from_nanos(200));
            let s = q.stats();
            assert_eq!(s.coalesced_pops, 9);
            assert_eq!(s.pops, 11);
        }
    }

    #[test]
    fn batch_pop_same_instant_pushes_land_in_next_batch() {
        // Events pushed at the batch's own instant (as a handler would
        // during processing) carry higher seqs and arrive in the *next*
        // batch at the same time — exactly the per-pop delivery order.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(50);
            q.push(t, 0);
            q.push(t, 1);
            let mut out = Vec::new();
            assert_eq!(q.pop_batch_before(SimTime::MAX, &mut out), Some((t, 0)));
            assert_eq!(out, vec![(t, 1)]);
            // "handler" pushes more work at the same instant:
            q.push(t, 2);
            q.push(t, 3);
            assert_eq!(q.pop_batch_before(SimTime::MAX, &mut out), Some((t, 2)));
            assert_eq!(out, vec![(t, 3)]);
            assert_eq!(q.pop_batch_before(SimTime::MAX, &mut out), None);
        }
    }

    #[test]
    fn batch_pop_far_future_burst_cascades_first() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos((1 << 25) + 4_321);
            for i in 0..32 {
                q.push(t, i);
            }
            q.push(SimTime::from_nanos(3), 500);
            let mut out = Vec::new();
            assert_eq!(
                q.pop_batch_before(SimTime::MAX, &mut out),
                Some((SimTime::from_nanos(3), 500))
            );
            assert!(out.is_empty());
            assert_eq!(q.pop_batch_before(SimTime::MAX, &mut out), Some((t, 0)));
            assert_eq!(out, (1..32).map(|i| (t, i)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn backends_agree_on_lcg_stream() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // driven in lockstep over all three backends (batched pops
        // included, so the coalescing primitive is differentially
        // checked too).
        let mut arena = EventQueue::with_kind(QueueKind::Wheel);
        let mut classic = EventQueue::with_kind(QueueKind::WheelClassic);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut n = 0u64;
        let (mut oa, mut oc, mut oh) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..5_000 {
            let r = lcg();
            if r % 3 != 0 || arena.is_empty() {
                // Mix of near-future, same-tick and far-future offsets.
                let off = match r % 7 {
                    0 => 0,
                    1..=4 => r % 1_000,
                    5 => r % 1_000_000,
                    _ => (r % 1_000) << 24,
                };
                let at = arena.now() + Duration::from_nanos(off);
                arena.push(at, n);
                classic.push(at, n);
                heap.push(at, n);
                n += 1;
            } else if r % 5 == 0 {
                let limit = arena.now() + Duration::from_nanos(lcg() % 10_000);
                let got = arena.pop_before(limit);
                assert_eq!(got, classic.pop_before(limit));
                assert_eq!(got, heap.pop_before(limit));
            } else if r % 2 == 0 {
                let ka = arena.pop_batch_before(SimTime::MAX, &mut oa);
                let kc = classic.pop_batch_before(SimTime::MAX, &mut oc);
                let kh = heap.pop_batch_before(SimTime::MAX, &mut oh);
                assert_eq!(ka, kc);
                assert_eq!(ka, kh);
                assert_eq!(oa, oc);
                assert_eq!(oa, oh);
            } else {
                let got = arena.pop();
                assert_eq!(got, classic.pop());
                assert_eq!(got, heap.pop());
            }
        }
        loop {
            let a = arena.pop();
            assert_eq!(a, classic.pop());
            assert_eq!(a, heap.pop());
            if a.is_none() {
                break;
            }
        }
        let (sa, sc, sh) = (arena.stats(), classic.stats(), heap.stats());
        assert_eq!(sa.pushes, sc.pushes);
        assert_eq!(sa.pushes, sh.pushes);
        assert_eq!(sa.pops, sc.pops);
        assert_eq!(sa.pops, sh.pops);
        assert_eq!(sa.pops, sa.pushes);
        // Batch membership is a property of the (time, seq) stream, not
        // the backend.
        assert_eq!(sa.coalesced_pops, sc.coalesced_pops);
        assert_eq!(sa.coalesced_pops, sh.coalesced_pops);
    }

    #[test]
    fn stats_count_ops_and_recycling() {
        for kind in [QueueKind::Wheel, QueueKind::WheelClassic] {
            let mut q = EventQueue::with_kind(kind);
            for round in 0..3 {
                for i in 0..100u64 {
                    q.push(q.now() + Duration::from_nanos(i + 1), i);
                }
                while q.pop().is_some() {}
                if round == 0 {
                    // Slot/arena storage allocated during the first round...
                    assert!(q.stats().allocs > 0);
                }
            }
            let s = q.stats();
            assert_eq!(s.pushes, 300);
            assert_eq!(s.pops, 300);
            assert_eq!(s.max_len, 100);
            // ...is recycled afterwards: warm rounds allocate nothing, so
            // the count stays well below one per event.
            assert!(
                s.allocs < 150,
                "storage not recycled: {} allocs for {} pushes",
                s.allocs,
                s.pushes
            );
        }
    }

    #[test]
    fn arena_recycles_nodes_through_freelist() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        // Fill to peak once, drain, then churn at the same depth: the
        // slab must not grow past the peak.
        for i in 0..64u64 {
            q.push(SimTime::from_nanos(i + 1), i);
        }
        while q.pop().is_some() {}
        let warm = q.stats().allocs;
        for round in 0..50u64 {
            for i in 0..64u64 {
                q.push(q.now() + Duration::from_nanos(i + 1), round * 64 + i);
            }
            while q.pop().is_some() {}
        }
        assert_eq!(q.stats().allocs, warm, "arena grew after warm-up");
    }
}
