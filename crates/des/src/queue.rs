//! Deterministic event queue.
//!
//! The queue is a binary heap ordered by `(time, sequence)`. The sequence
//! number is assigned on insertion, so two events scheduled for the same
//! instant are delivered in insertion order. This makes whole-simulation
//! runs bit-for-bit reproducible for a given seed — a property the
//! experiment harness relies on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fires `event` at `at`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of simulation events.
///
/// `E` is the simulation's event enum. The queue does not support removal;
/// consumers that need to cancel an event use *lazy invalidation*: keep a
/// generation counter next to the state the event touches, stamp the event
/// with the generation at scheduling time, and ignore stale events on
/// delivery. (This mirrors how timer wheels in network stacks handle
/// cancellation without a searchable structure.)
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last event popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: delivering an event before the
    /// current clock would silently corrupt causality, so it is a bug in
    /// the caller.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        q.pop();
        q.push(SimTime::from_micros(3), ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        q.push(SimTime::from_nanos(50), 5);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 1));
        // scheduling relative to 'now' is the common pattern
        q.push(q.now() + Duration::from_nanos(5), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
