//! # nfv-des — deterministic discrete-event simulation kernel
//!
//! The foundation of the NFVnice reproduction: a nanosecond-resolution
//! simulated clock, a deterministic event queue (ties broken by insertion
//! order), seeded randomness, the measurement primitives the paper's
//! monitoring plane uses (service-time histograms, windowed medians, EWMA,
//! per-second rate meters, Jain's fairness index), and an opt-in runtime
//! sanitizer that audits conservation and scheduling invariants while
//! folding the event stream into a determinism-checking trace digest.
//!
//! Design follows the event-driven, allocation-light style of embedded
//! network stacks: the queue owns plain event values (no boxed closures),
//! cancellation is by lazy invalidation with generation counters, and every
//! run is bit-for-bit reproducible for a given seed.

#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod sanitizer;
pub mod stats;
pub mod time;

pub use queue::{EventQueue, QueueKind, QueueStats};
pub use rng::SimRng;
pub use sanitizer::{Sanitizer, SanitizerConfig, Severity, Violation};
pub use stats::{jain_index, DurationHistogram, Ewma, RateMeter, WindowedMedian};
pub use time::{CpuFreq, Duration, SimTime};
