//! Runtime sim-sanitizer: an opt-in audit layer that checks simulation
//! invariants at every event and folds the event stream into a trace
//! digest.
//!
//! The sanitizer is the dynamic half of `nfv-check` (the static half is
//! the `nfv-lint` determinism lint). It watches four properties:
//!
//! * **Clock monotonicity** — the event loop must never hand the
//!   sanitizer a timestamp earlier than the previous one (the queue
//!   breaks ties by insertion order, so equal timestamps are legal).
//! * **Packet conservation** — every classified packet is delivered,
//!   dropped, or still held in the mempool; the engine feeds the ledger
//!   via [`Sanitizer::check_conservation`].
//! * **Watermark hysteresis** — a backpressure watermark state machine
//!   that flips HIGH→LOW→HIGH inside the queuing-time threshold is
//!   oscillating instead of hysteresing; flagged as a warning.
//! * **Suppression safety** — backpressure must never suppress the
//!   bottleneck NF itself (that deadlocks the throttle, see
//!   `Simulation::nf_suppressed`); flagged as an error.
//!
//! The trace digest (FNV-1a over `(time, tag)` pairs) is always
//! maintained — it is cheap — so two runs with the same seed can be
//! compared for bit-identical behaviour even when the invariant checks
//! are off. The checks themselves only run when
//! [`SanitizerConfig::enabled`] is set, because conservation walks
//! per-NF state on every event.

use crate::time::{Duration, SimTime};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one `u64` into an FNV-1a 64 state, byte by byte.
#[inline]
fn fnv1a_fold(mut state: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// What to audit. `Default` is fully disabled (zero overhead beyond the
/// trace digest); [`SanitizerConfig::audit`] turns everything on.
#[derive(Debug, Clone, Copy)]
pub struct SanitizerConfig {
    /// Master switch for all runtime checks.
    pub enabled: bool,
    /// Check the packet-conservation ledger at every event.
    pub conservation: bool,
    /// Flag watermark HIGH/LOW oscillation within the dwell threshold.
    pub hysteresis: bool,
    /// Flag suppression of a bottleneck NF.
    pub suppression: bool,
    /// Panic at the violating event instead of collecting a report
    /// (warnings never panic).
    pub panic_on_violation: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            enabled: false,
            conservation: true,
            hysteresis: true,
            suppression: true,
            panic_on_violation: false,
        }
    }
}

impl SanitizerConfig {
    /// All checks on, collecting violations into a report.
    pub fn audit() -> Self {
        SanitizerConfig {
            enabled: true,
            ..SanitizerConfig::default()
        }
    }

    /// All checks on, panicking at the first error-severity violation.
    pub fn strict() -> Self {
        SanitizerConfig {
            enabled: true,
            panic_on_violation: true,
            ..SanitizerConfig::default()
        }
    }
}

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong (e.g. watermark oscillation).
    Warning,
    /// A broken invariant: the run's results cannot be trusted.
    Error,
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Severity class.
    pub severity: Severity,
    /// Stable rule identifier (`clock-monotonic`, `conservation`,
    /// `watermark-hysteresis`, `suppression-safety`).
    pub rule: &'static str,
    /// Simulated time at which the violation was observed.
    pub at: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

/// Per-NF watermark bookkeeping for the hysteresis check.
#[derive(Debug, Clone, Copy, Default)]
struct WatermarkState {
    /// Last observed throttle state, if any transition has been seen.
    throttled: Option<bool>,
    /// When the state last changed.
    changed_at: SimTime,
}

/// The runtime sanitizer. One per [`Simulation`](../../nfvnice/struct.Simulation.html)
/// run; reset by constructing a fresh one.
#[derive(Debug)]
pub struct Sanitizer {
    cfg: SanitizerConfig,
    last_time: SimTime,
    events: u64,
    digest: u64,
    watermarks: Vec<WatermarkState>,
    violations: Vec<Violation>,
}

impl Sanitizer {
    /// A sanitizer with the given configuration.
    pub fn new(cfg: SanitizerConfig) -> Self {
        Sanitizer {
            cfg,
            last_time: SimTime::ZERO,
            events: 0,
            digest: FNV_OFFSET,
            watermarks: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Whether invariant checks are active (the digest always is).
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Whether the conservation ledger should be computed this event.
    pub fn wants_conservation(&self) -> bool {
        self.cfg.enabled && self.cfg.conservation
    }

    /// Whether suppression decisions should be cross-checked.
    pub fn wants_suppression(&self) -> bool {
        self.cfg.enabled && self.cfg.suppression
    }

    /// Whether watermark flips are being dwell-checked. The engine's idle
    /// skip-ahead must not elide watermark scans while this audit is
    /// live: a skipped scan would shift a state's first-observation time
    /// and change the measured dwell.
    pub fn wants_hysteresis(&self) -> bool {
        self.cfg.enabled && self.cfg.hysteresis
    }

    /// Observe one event: enforces clock monotonicity and folds
    /// `(time, tag)` into the trace digest. `tag` encodes the event
    /// variant and its payload; any stable encoding works as long as it
    /// is a pure function of the event.
    pub fn on_event(&mut self, now: SimTime, tag: u64) {
        if now < self.last_time {
            // nfv-lint: allow(hot-alloc) -- invariant-violation path only
            let detail = format!(
                "event at {now} after event at {} (clock moved backwards)",
                self.last_time
            );
            self.record(Severity::Error, "clock-monotonic", now, detail);
        }
        self.last_time = self.last_time.max(now);
        self.events += 1;
        self.digest = fnv1a_fold(self.digest, now.as_nanos());
        self.digest = fnv1a_fold(self.digest, tag);
    }

    /// Check the packet-conservation ledger: every classified packet must
    /// be delivered, dropped, or still in flight (held by the mempool).
    pub fn check_conservation(
        &mut self,
        now: SimTime,
        classified: u64,
        delivered: u64,
        dropped: u64,
        in_flight: u64,
    ) {
        if !self.wants_conservation() {
            return;
        }
        let accounted = delivered + dropped + in_flight;
        if classified != accounted {
            // nfv-lint: allow(hot-alloc) -- invariant-violation path only
            let detail = format!(
                "classified {classified} != delivered {delivered} + dropped {dropped} \
                 + in-flight {in_flight} (= {accounted})"
            );
            self.record(Severity::Error, "conservation", now, detail);
        }
    }

    /// Observe NF `nf`'s watermark state after an `evaluate` pass. A
    /// HIGH↔LOW flip within `min_dwell` of the previous flip means the
    /// high/low split is not providing hysteresis.
    pub fn note_watermark(
        &mut self,
        nf: usize,
        now: SimTime,
        throttled: bool,
        min_dwell: Duration,
    ) {
        if !(self.cfg.enabled && self.cfg.hysteresis) {
            return;
        }
        if self.watermarks.len() <= nf {
            self.watermarks.resize(nf + 1, WatermarkState::default());
        }
        let w = self.watermarks[nf];
        match w.throttled {
            Some(prev) if prev != throttled => {
                let dwell = now.since(w.changed_at);
                // The very first transition out of the initial state is
                // exempt: changed_at defaults to t=0.
                if dwell < min_dwell && w.changed_at > SimTime::ZERO {
                    // nfv-lint: allow(hot-alloc) -- invariant-violation path only
                    let detail = format!(
                        "NF {nf} watermark flipped to {} after only {dwell} \
                         (threshold {min_dwell})",
                        if throttled { "HIGH" } else { "LOW" },
                    );
                    self.record(Severity::Warning, "watermark-hysteresis", now, detail);
                }
                self.watermarks[nf] = WatermarkState {
                    throttled: Some(throttled),
                    changed_at: now,
                };
            }
            Some(_) => {}
            None => {
                self.watermarks[nf] = WatermarkState {
                    throttled: Some(throttled),
                    changed_at: now,
                };
            }
        }
    }

    /// Report that the engine suppressed NF `nf` while it was itself an
    /// active bottleneck (throttler) for a chain pending at it. That NF
    /// is the only one that can drain the congestion; suppressing it
    /// deadlocks the throttle.
    pub fn note_bottleneck_suppressed(&mut self, now: SimTime, nf: usize, chain: usize) {
        if !self.wants_suppression() {
            return;
        }
        self.record(
            Severity::Error,
            "suppression-safety",
            now,
            // nfv-lint: allow(hot-alloc) -- invariant-violation path only
            format!("NF {nf} suppressed while it is the active bottleneck of chain {chain}"),
        );
    }

    /// Record a violation under an arbitrary rule id (escape hatch for
    /// engine-side checks that do not fit a dedicated hook).
    pub fn record(&mut self, severity: Severity, rule: &'static str, at: SimTime, detail: String) {
        if self.cfg.panic_on_violation && severity >= Severity::Error {
            panic!("sim-sanitizer [{rule}] at {at}: {detail}");
        }
        self.violations.push(Violation {
            severity,
            rule,
            at,
            detail,
        });
    }

    /// The FNV-1a digest of every `(time, tag)` pair seen so far. Two
    /// runs of the same scenario with the same seed must agree.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of events observed.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// All recorded violations, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations of `Error` severity only.
    pub fn errors(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity >= Severity::Error)
    }

    /// Panic with a full listing if any error-severity violation was
    /// recorded (warnings are tolerated). Call at end of run in tests.
    pub fn assert_clean(&self) {
        let errors: Vec<&Violation> = self.errors().collect();
        if !errors.is_empty() {
            let mut msg = format!("sim-sanitizer recorded {} error(s):\n", errors.len());
            for v in errors {
                msg.push_str(&format!("  [{}] at {}: {}\n", v.rule, v.at, v.detail));
            }
            panic!("{msg}");
        }
    }

    /// One-line-per-violation human summary (empty string when clean).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let sev = match v.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            out.push_str(&format!("{sev} [{}] at {}: {}\n", v.rule, v.at, v.detail));
        }
        out
    }
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer::new(SanitizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn digest_is_order_sensitive_and_reproducible() {
        let mut a = Sanitizer::default();
        let mut b = Sanitizer::default();
        for (time, tag) in [(t(1), 7u64), (t(2), 9), (t(2), 9), (t(5), 1)] {
            a.on_event(time, tag);
            b.on_event(time, tag);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.event_count(), 4);

        let mut c = Sanitizer::default();
        c.on_event(t(2), 9);
        c.on_event(t(1), 7); // swapped order
        c.on_event(t(2), 9);
        c.on_event(t(5), 1);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn equal_timestamps_are_legal() {
        let mut s = Sanitizer::new(SanitizerConfig::audit());
        s.on_event(t(3), 0);
        s.on_event(t(3), 1);
        assert!(s.violations().is_empty());
        s.assert_clean();
    }

    #[test]
    fn backwards_clock_is_an_error() {
        let mut s = Sanitizer::new(SanitizerConfig::audit());
        s.on_event(t(5), 0);
        s.on_event(t(4), 1);
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].rule, "clock-monotonic");
        assert_eq!(s.violations()[0].severity, Severity::Error);
    }

    #[test]
    fn conservation_mismatch_is_an_error() {
        let mut s = Sanitizer::new(SanitizerConfig::audit());
        s.check_conservation(t(1), 100, 60, 30, 10); // balances
        assert!(s.violations().is_empty());
        s.check_conservation(t(2), 100, 60, 30, 9); // one packet lost
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].rule, "conservation");
    }

    #[test]
    fn conservation_skipped_when_disabled() {
        let mut s = Sanitizer::default(); // disabled
        assert!(!s.wants_conservation());
        s.check_conservation(t(1), 100, 0, 0, 0);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn watermark_oscillation_warns_but_dwell_is_fine() {
        let dwell = Duration::from_micros(100);
        let mut s = Sanitizer::new(SanitizerConfig::audit());
        s.note_watermark(0, t(10), false, dwell);
        s.note_watermark(0, t(20), true, dwell); // first flip: exempt? changed_at=10 > 0
        s.note_watermark(0, t(300), false, dwell); // 280us dwell: fine
        s.note_watermark(0, t(350), true, dwell); // 50us dwell: oscillation
        let warnings: Vec<_> = s
            .violations()
            .iter()
            .filter(|v| v.rule == "watermark-hysteresis")
            .collect();
        // t=20 flip happened 10us after the t=10 initial observation —
        // also within dwell, so two warnings total.
        assert_eq!(warnings.len(), 2);
        assert!(warnings.iter().all(|v| v.severity == Severity::Warning));
        s.assert_clean(); // warnings don't fail assert_clean
    }

    #[test]
    fn bottleneck_suppression_is_an_error() {
        let mut s = Sanitizer::new(SanitizerConfig::audit());
        s.note_bottleneck_suppressed(t(7), 2, 0);
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].rule, "suppression-safety");
        assert!(s.summary().contains("suppression-safety"));
    }

    #[test]
    #[should_panic(expected = "sim-sanitizer")]
    fn strict_mode_panics_at_the_event() {
        let mut s = Sanitizer::new(SanitizerConfig::strict());
        s.check_conservation(t(1), 2, 1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn assert_clean_panics_on_errors() {
        let mut s = Sanitizer::new(SanitizerConfig::audit());
        s.check_conservation(t(1), 2, 1, 0, 0);
        s.assert_clean();
    }
}
