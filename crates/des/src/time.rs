//! Simulation time and CPU-frequency conversions.
//!
//! The whole simulator runs on a single monotonically increasing nanosecond
//! clock. NF processing costs are specified in CPU cycles (as in the paper,
//! e.g. "NF1 = 550 cycles") and converted to wall time through a [`CpuFreq`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent newtype over `u64`; arithmetic that would
/// underflow saturates to zero (time never runs backwards), while overflow
/// panics in debug builds like ordinary integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the instant the simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer count (e.g. per-packet cost × batch size).
    pub fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// CPU core frequency, used to convert per-packet costs in cycles to time.
///
/// The paper's testbed runs Xeon E5-2697 v3 cores at 2.6 GHz; that is the
/// default here too so cycle figures from the paper carry over directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFreq {
    /// Frequency in kHz (kept integral for exact arithmetic).
    khz: u64,
}

impl CpuFreq {
    /// The paper's 2.6 GHz testbed frequency.
    pub const PAPER_DEFAULT: CpuFreq = CpuFreq { khz: 2_600_000 };

    /// Construct from MHz.
    pub const fn from_mhz(mhz: u64) -> Self {
        CpuFreq { khz: mhz * 1_000 }
    }

    /// Frequency in Hz.
    pub const fn hz(self) -> u64 {
        self.khz * 1_000
    }

    /// Convert a cycle count to a duration, rounding up so that non-zero
    /// work never takes zero time.
    pub fn cycles_to_duration(self, cycles: u64) -> Duration {
        // ns = cycles * 1e9 / hz = cycles * 1e6 / khz, computed in u128 to
        // avoid overflow for large batch costs.
        let ns = ((cycles as u128) * 1_000_000).div_ceil(self.khz as u128);
        Duration(ns as u64)
    }

    /// Convert a duration back to cycles (truncating).
    pub fn duration_to_cycles(self, d: Duration) -> u64 {
        ((d.0 as u128) * self.khz as u128 / 1_000_000) as u64
    }
}

impl Default for CpuFreq {
    fn default() -> Self {
        CpuFreq::PAPER_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn duration_arithmetic() {
        let t = SimTime::from_micros(5) + Duration::from_micros(3);
        assert_eq!(t, SimTime::from_micros(8));
        assert_eq!(t.since(SimTime::from_micros(6)), Duration::from_micros(2));
        // saturating: "since" a later time is zero
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
    }

    #[test]
    fn cycles_round_trip_at_paper_freq() {
        let f = CpuFreq::PAPER_DEFAULT;
        // 2600 cycles at 2.6GHz is exactly 1us.
        assert_eq!(f.cycles_to_duration(2600), Duration::from_micros(1));
        // 250-cycle NF from Fig 1a: ~96ns, rounded up from 96.15.
        assert_eq!(f.cycles_to_duration(250), Duration::from_nanos(97));
        // tiny costs never collapse to zero time
        assert_eq!(f.cycles_to_duration(1), Duration::from_nanos(1));
        assert_eq!(f.cycles_to_duration(0), Duration::ZERO);
    }

    #[test]
    fn duration_to_cycles_inverse() {
        let f = CpuFreq::from_mhz(1000); // 1 cycle == 1ns
        assert_eq!(f.duration_to_cycles(Duration::from_nanos(1234)), 1234);
        assert_eq!(f.cycles_to_duration(1234), Duration::from_nanos(1234));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Duration(3).min(Duration(4)), Duration(3));
        assert_eq!(Duration(3).max(Duration(4)), Duration(4));
    }
}
