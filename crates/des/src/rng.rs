//! Seeded randomness helpers.
//!
//! All stochastic behaviour in the simulator (Poisson arrivals, random chain
//! orders, variable per-packet costs) flows through a [`SimRng`] seeded from
//! the experiment configuration, so every run is reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulator's random number generator: a small, fast, seedable PRNG.
///
/// Wraps `SmallRng` with the handful of distributions the workloads need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child RNG (for per-flow or per-NF streams) so
    /// adding one consumer does not perturb another's sequence.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times). Returns at least 1 to keep event times strictly
    /// advancing.
    pub fn exponential(&mut self, mean: f64) -> u64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let v = -mean * u.ln();
        (v.max(1.0)) as u64
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut child1 = parent.fork();
        // Re-seed the parent identically and fork again: same child stream.
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child2 = parent2.fork();
        for _ in 0..50 {
            assert_eq!(child1.below(99), child2.below(99));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 1_000.0;
        let sum: u64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    fn exponential_never_zero() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.exponential(0.5) >= 1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut r = SimRng::seed_from_u64(13);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }
}
