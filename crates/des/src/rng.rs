//! Seeded randomness helpers.
//!
//! All stochastic behaviour in the simulator (Poisson arrivals, random chain
//! orders, variable per-packet costs) flows through a [`SimRng`] seeded from
//! the experiment configuration, so every run is reproducible.
//!
//! The generator is a self-contained **xoshiro256++** (Blackman & Vigna)
//! seeded through SplitMix64 — the same construction `rand`'s `SmallRng`
//! uses on 64-bit targets — implemented in-tree so the simulator has zero
//! external dependencies and the whole random stream is auditable. This is
//! the *only* sanctioned randomness source in the workspace: `nfv-lint`'s
//! `raw-rand` rule flags any other `rand` usage.

/// The simulator's random number generator: a small, fast, seedable PRNG.
///
/// xoshiro256++ with the handful of distributions the workloads need.
/// Identical seeds produce identical streams on every platform.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// One step of SplitMix64: used to expand a 64-bit seed into generator
/// state. Guarantees no all-zero state for any seed.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derive an independent child RNG (for per-flow or per-NF streams) so
    /// adding one consumer does not perturb another's sequence.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.next_u64();
        SimRng::seed_from_u64(seed)
    }

    /// Uniform in `[0, n)`, unbiased (Lemire's widening-multiply rejection).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive({lo}, {hi})");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times). Returns at least 1 to keep event times strictly
    /// advancing.
    pub fn exponential(&mut self, mean: f64) -> u64 {
        let u = self.unit().max(f64::MIN_POSITIVE);
        let v = -mean * u.ln();
        (v.max(1.0)) as u64
    }

    /// Bounded-Pareto sample in `[lo, hi]` with shape `alpha`, by inverse
    /// CDF over one [`SimRng::unit`] draw. Heavy-tailed traffic mixes use
    /// small shapes (α ≈ 1.2): most draws land near `lo` (mice) while a
    /// deterministic minority stretch toward `hi` (elephants).
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi >= lo, "bad pareto shape");
        let u = self.unit();
        let ratio = (lo / hi).powf(alpha);
        lo * (1.0 - u * (1.0 - ratio)).powf(-1.0 / alpha)
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut child1 = parent.fork();
        // Re-seed the parent identically and fork again: same child stream.
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child2 = parent2.fork();
        for _ in 0..50 {
            assert_eq!(child1.below(99), child2.below(99));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 1_000.0;
        let sum: u64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    fn exponential_never_zero() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.exponential(0.5) >= 1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut r = SimRng::seed_from_u64(13);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit out of range: {u}");
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(19);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the canonical state
        // [1, 2, 3, 4] (Vigna's reference implementation).
        let mut r = SimRng {
            state: [1, 2, 3, 4],
        };
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }
}
