//! Statistics primitives shared across the simulator.
//!
//! These are the measurement tools the paper's monitor plane uses:
//! a histogram of per-packet service times (queried at percentiles), a
//! sliding-window median estimator (the paper uses the median over a 100 ms
//! moving window), an exponentially weighted moving average (used for ECN
//! queue-length tracking per RFC 3168 / RED-style marking), per-interval
//! rate meters, and Jain's fairness index for the evaluation.

use crate::time::{Duration, SimTime};
use std::collections::VecDeque;

/// Exponentially weighted moving average over `u64` samples.
///
/// Weight is expressed as a rational `num/den` applied to the *new* sample:
/// `avg' = avg + num/den * (sample - avg)`, computed in integer arithmetic
/// scaled by 2^16 to avoid drift from repeated truncation.
#[derive(Debug, Clone)]
pub struct Ewma {
    /// Scaled average (value << 16).
    scaled: u64,
    /// Numerator of the gain.
    num: u32,
    /// Denominator of the gain.
    den: u32,
    /// Whether any sample has been observed yet.
    primed: bool,
}

impl Ewma {
    /// Create an EWMA with gain `num/den` (e.g. 1/16 for RED-style queue
    /// averaging).
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0 && num <= den, "gain must be in (0, 1]");
        Ewma {
            scaled: 0,
            num,
            den,
            primed: false,
        }
    }

    /// Feed one sample.
    pub fn observe(&mut self, sample: u64) {
        let s = sample << 16;
        if !self.primed {
            self.scaled = s;
            self.primed = true;
            return;
        }
        // avg += gain * (sample - avg), careful with signedness.
        if s >= self.scaled {
            self.scaled += (s - self.scaled) / self.den as u64 * self.num as u64;
        } else {
            self.scaled -= (self.scaled - s) / self.den as u64 * self.num as u64;
        }
    }

    /// Current average (truncated to integer).
    pub fn value(&self) -> u64 {
        self.scaled >> 16
    }

    /// Current average in the raw 2^16 fixed-point domain (`value << 16`).
    ///
    /// Threshold comparisons should happen here: truncating through
    /// [`Ewma::value`] first discards up to one whole unit of the average,
    /// which matters when the compared quantities are small (e.g. queue
    /// lengths on a 16-slot ring).
    pub fn value_scaled(&self) -> u64 {
        self.scaled
    }

    /// True once at least one sample has been observed.
    pub fn is_primed(&self) -> bool {
        self.primed
    }
}

/// A fixed-layout log-linear histogram of durations (nanosecond samples).
///
/// Matches the role of NFVnice's shared-memory service-time histogram: cheap
/// constant-time insertion on the data path, percentile queries on the
/// control path. Buckets are log2 major buckets each split into 16 linear
/// minor buckets, covering 1 ns .. ~4.3 s with bounded (≲6 %) relative error.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    counts: Vec<u64>,
    total: u64,
}

const MINOR_BITS: u32 = 4;
const MINOR: usize = 1 << MINOR_BITS;
const MAJORS: usize = 32;

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            counts: vec![0; MAJORS * MINOR],
            total: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < MINOR as u64 {
            return ns as usize;
        }
        let major = 63 - ns.leading_zeros() as usize; // floor(log2)
        let major = major.min(MAJORS - 1);
        let shift = major as u32 - MINOR_BITS;
        let minor = ((ns >> shift) as usize) & (MINOR - 1);
        major * MINOR + minor
    }

    /// Representative (lower-bound) value of a bucket index.
    fn bucket_floor(idx: usize) -> u64 {
        let major = idx / MINOR;
        let minor = (idx % MINOR) as u64;
        if major < MINOR_BITS as usize {
            return idx as u64; // identity region
        }
        let base = 1u64 << major;
        base + (minor << (major as u32 - MINOR_BITS))
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket_of(d.as_nanos())] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Value at percentile `p` in `[0, 100]`, or `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * (self.total as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > rank {
                return Some(Duration::from_nanos(Self::bucket_floor(i)));
            }
            seen += c;
        }
        None
    }

    /// Median sample.
    pub fn median(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// Discard all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Median of timestamped samples over a sliding time window.
///
/// NFVnice estimates an NF's per-packet cost as "the median over a 100 ms
/// moving window" of ~1 ms-spaced samples, which keeps the window small
/// (~100 entries) — so an exact median over a sorted copy is cheap and
/// avoids approximation error in the control loop.
#[derive(Debug, Clone)]
pub struct WindowedMedian {
    window: Duration,
    samples: VecDeque<(SimTime, u64)>,
}

impl WindowedMedian {
    /// A window of the given width.
    pub fn new(window: Duration) -> Self {
        WindowedMedian {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Record a sample at time `now`, evicting anything older than the window.
    ///
    /// `now` must not precede the newest sample already recorded (equal
    /// timestamps are fine): the eviction scan assumes front-to-back time
    /// order. Debug builds assert; release builds clamp the sample to the
    /// newest recorded time so the deque stays ordered.
    pub fn observe(&mut self, now: SimTime, value: u64) {
        let now = match self.samples.back() {
            Some(&(newest, _)) => {
                debug_assert!(
                    now >= newest,
                    "WindowedMedian::observe time went backwards: {now} < {newest}"
                );
                now.max(newest)
            }
            None => now,
        };
        self.samples.push_back((now, value));
        self.evict(now);
    }

    fn evict(&mut self, now: SimTime) {
        let horizon = now - self.window;
        while let Some(&(t, _)) = self.samples.front() {
            if t < horizon {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Exact median of the samples currently in the window.
    pub fn median(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut vals: Vec<u64> = self.samples.iter().map(|&(_, v)| v).collect();
        vals.sort_unstable();
        Some(vals[vals.len() / 2])
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are in the window.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Counts events and reports a rate per second over closed intervals.
///
/// Used for per-second drop/throughput series (the paper reports min/avg/max
/// across per-second samples).
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    count_in_interval: u64,
    total: u64,
    per_second: Vec<f64>,
    interval_start: SimTime,
}

impl RateMeter {
    /// A meter starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` events.
    pub fn add(&mut self, n: u64) {
        self.count_in_interval += n;
        self.total += n;
    }

    /// Close the current interval at `now` and start a new one, recording
    /// the interval's rate (events per second).
    ///
    /// `now` must not precede the previous roll (a same-instant roll is a
    /// no-op interval and records nothing). Debug builds assert; release
    /// builds treat a backwards roll as zero-length, so the interval start
    /// never regresses and no negative-span rate is recorded.
    pub fn roll(&mut self, now: SimTime) {
        debug_assert!(
            now >= self.interval_start,
            "RateMeter::roll time went backwards: {now} < {}",
            self.interval_start
        );
        let span = now.since(self.interval_start);
        if span > Duration::ZERO {
            self.per_second
                .push(self.count_in_interval as f64 / span.as_secs_f64());
            self.count_in_interval = 0;
        }
        self.interval_start = self.interval_start.max(now);
    }

    /// Total events recorded over the whole run.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-interval rates (events/s) captured by [`RateMeter::roll`].
    pub fn rates(&self) -> &[f64] {
        &self.per_second
    }

    /// (min, mean, max) over the recorded intervals; zeros if none.
    pub fn summary(&self) -> (f64, f64, f64) {
        if self.per_second.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &r in &self.per_second {
            min = min.min(r);
            max = max.max(r);
            sum += r;
        }
        (min, sum / self.per_second.len() as f64, max)
    }
}

/// Jain's fairness index over a set of allocations.
///
/// `J = (Σx)² / (n·Σx²)`; 1.0 is perfectly fair, 1/n is maximally unfair.
/// Used for Fig 15b.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(1, 8);
        for _ in 0..200 {
            e.observe(1000);
        }
        assert!((e.value() as i64 - 1000).abs() <= 1, "got {}", e.value());
    }

    #[test]
    fn ewma_first_sample_primes() {
        let mut e = Ewma::new(1, 16);
        assert!(!e.is_primed());
        e.observe(500);
        assert!(e.is_primed());
        assert_eq!(e.value(), 500);
    }

    #[test]
    fn ewma_tracks_step_change_gradually() {
        let mut e = Ewma::new(1, 4);
        e.observe(0);
        e.observe(100);
        // one step with gain 1/4 moves 25% of the way
        assert_eq!(e.value(), 25);
    }

    #[test]
    #[should_panic(expected = "gain must be in (0, 1]")]
    fn ewma_rejects_bad_gain() {
        let _ = Ewma::new(3, 2);
    }

    #[test]
    fn ewma_scaled_keeps_fractional_part() {
        let mut e = Ewma::new(1, 4);
        e.observe(0);
        e.observe(2);
        // avg = 0.5: truncated value loses it, the scaled view keeps it.
        assert_eq!(e.value(), 0);
        assert_eq!(e.value_scaled(), 1 << 15);
    }

    #[test]
    fn histogram_percentiles_ordered() {
        let mut h = DurationHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 10));
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 < p99);
        // median of 10..10000 is ~5000ns; log bucketing gives ≲6% error
        let err = (p50.as_nanos() as f64 - 5000.0).abs() / 5000.0;
        assert!(err < 0.07, "median {p50} too far from 5000ns");
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = DurationHistogram::new();
        h.record(Duration::from_nanos(3));
        assert_eq!(h.median(), Some(Duration::from_nanos(3)));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_reset_clears() {
        let mut h = DurationHistogram::new();
        h.record(Duration::from_micros(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), None);
    }

    #[test]
    fn histogram_large_values_do_not_panic() {
        let mut h = DurationHistogram::new();
        h.record(Duration::from_secs(100)); // beyond top bucket, clamps
        assert!(h.median().is_some());
    }

    #[test]
    fn windowed_median_evicts_old_samples() {
        let mut m = WindowedMedian::new(Duration::from_millis(100));
        m.observe(SimTime::from_millis(0), 1_000_000);
        for i in 1..=100u64 {
            m.observe(SimTime::from_millis(100 + i), 10);
        }
        // The outlier at t=0 fell out of the window.
        assert_eq!(m.median(), Some(10));
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn windowed_median_is_exact() {
        let mut m = WindowedMedian::new(Duration::from_secs(10));
        for v in [5u64, 1, 9, 3, 7] {
            m.observe(SimTime::from_millis(1), v);
        }
        assert_eq!(m.median(), Some(5));
    }

    #[test]
    fn windowed_median_empty() {
        let m = WindowedMedian::new(Duration::from_secs(1));
        assert_eq!(m.median(), None);
        assert!(m.is_empty());
    }

    #[test]
    fn rate_meter_per_second() {
        let mut r = RateMeter::new();
        r.add(500);
        r.roll(SimTime::from_millis(500)); // 500 events in 0.5s => 1000/s
        r.add(100);
        r.roll(SimTime::from_millis(1500)); // 100 events in 1s => 100/s
        assert_eq!(r.total(), 600);
        let (min, mean, max) = r.summary();
        assert_eq!(min, 100.0);
        assert_eq!(max, 1000.0);
        assert_eq!(mean, 550.0);
        assert_eq!(r.rates().len(), 2);
    }

    #[test]
    fn rate_meter_empty_summary() {
        let r = RateMeter::new();
        assert_eq!(r.summary(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn rate_meter_same_instant_roll_records_nothing() {
        let mut r = RateMeter::new();
        r.add(7);
        r.roll(SimTime::from_secs(1));
        r.roll(SimTime::from_secs(1)); // zero-length interval: no sample
        assert_eq!(r.rates().len(), 1);
        assert_eq!(r.total(), 7);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "time went backwards"))]
    fn rate_meter_rejects_backwards_roll() {
        let mut r = RateMeter::new();
        r.roll(SimTime::from_secs(2));
        r.add(10);
        r.roll(SimTime::from_secs(1));
        // Release builds clamp: the interval start never regresses, the
        // backwards roll records no rate, and the pending count survives
        // into the next well-formed interval.
        assert_eq!(r.rates().len(), 1);
        r.roll(SimTime::from_secs(3));
        assert_eq!(r.rates().len(), 2);
        assert_eq!(r.rates()[1], 10.0);
    }

    #[test]
    fn windowed_median_same_instant_samples_ok() {
        let mut m = WindowedMedian::new(Duration::from_millis(1));
        m.observe(SimTime::from_millis(5), 1);
        m.observe(SimTime::from_millis(5), 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "time went backwards"))]
    fn windowed_median_rejects_backwards_observe() {
        let mut m = WindowedMedian::new(Duration::from_millis(100));
        m.observe(SimTime::from_millis(50), 1);
        m.observe(SimTime::from_millis(10), 2);
        // Release builds clamp the late sample to the newest recorded time,
        // keeping the deque time-ordered for eviction.
        m.observe(SimTime::from_millis(200), 3);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn jain_perfectly_fair() {
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_maximally_unfair() {
        let j = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
