//! Property-based tests for the DES kernel against naive reference models.

use nfv_des::{jain_index, DurationHistogram, EventQueue, SimTime, WindowedMedian};
use nfv_des::{Duration, Ewma};
use proptest::prelude::*;

proptest! {
    /// The event queue pops in exactly sorted (time, insertion) order.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        reference.sort(); // stable: equal times keep insertion order
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Histogram percentiles stay within the log-bucket relative error of
    /// the exact order statistics.
    #[test]
    fn histogram_percentile_bounded_error(
        samples in prop::collection::vec(1u64..1_000_000, 10..500),
        p in 0.0f64..100.0,
    ) {
        let mut h = DurationHistogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        let exact = sorted[rank] as f64;
        let est = h.percentile(p).unwrap().as_nanos() as f64;
        // one bucket below, never above by more than a bucket width (~6.25%)
        prop_assert!(est <= exact * 1.0001, "est {est} > exact {exact}");
        prop_assert!(est >= exact * 0.93 - 1.0, "est {est} << exact {exact}");
    }

    /// Windowed median equals the median of the samples inside the window.
    #[test]
    fn windowed_median_matches_naive(
        samples in prop::collection::vec((0u64..1_000, 0u64..10_000), 1..200),
    ) {
        let mut sorted_by_time = samples.clone();
        sorted_by_time.sort_by_key(|&(t, _)| t);
        let window = Duration::from_nanos(300);
        let mut m = WindowedMedian::new(window);
        let mut last_t = 0;
        for &(t, v) in &sorted_by_time {
            m.observe(SimTime::from_nanos(t), v);
            last_t = t;
        }
        let horizon = last_t.saturating_sub(300);
        let mut in_window: Vec<u64> = sorted_by_time
            .iter()
            .filter(|&&(t, _)| t >= horizon)
            .map(|&(_, v)| v)
            .collect();
        in_window.sort_unstable();
        prop_assert_eq!(m.median(), Some(in_window[in_window.len() / 2]));
    }

    /// Jain's index is always in [1/n, 1] for non-degenerate inputs.
    #[test]
    fn jain_bounds(xs in prop::collection::vec(0.001f64..1e6, 1..32)) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }

    /// EWMA stays within the min/max envelope of its inputs.
    #[test]
    fn ewma_within_envelope(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut e = Ewma::new(1, 8);
        for &s in &samples {
            e.observe(s);
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        prop_assert!(e.value() >= lo.saturating_sub(1) && e.value() <= hi + 1,
            "ewma {} outside [{lo}, {hi}]", e.value());
    }
}
